//! Tests of the coordinated-CPR baseline executor: correctness under
//! rollback and the contrast with GPRS selective restart.

use gprs_runtime::cpr::CprBuilder;
use gprs_runtime::ctx::StepCtx;
use gprs_runtime::prelude::*;
use std::time::Duration;

/// Counts under a mutex with some local work, like the GPRS tests.
struct LockCounter {
    mutex: MutexHandle<u64>,
    rounds: u32,
    done: u32,
}

impl Checkpoint for LockCounter {
    type Snapshot = u32;
    fn checkpoint(&self) -> u32 {
        self.done
    }
    fn restore(&mut self, s: &u32) {
        self.done = *s;
    }
}

impl ThreadProgram for LockCounter {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.done > 0 {
            ctx.with_lock(&self.mutex, |n| *n += 1);
        }
        if self.done == self.rounds {
            return Step::exit(self.done);
        }
        self.done += 1;
        self.mutex.lock()
    }
}

#[test]
fn cpr_lock_counter_is_exact() {
    let mut b = CprBuilder::new().workers(3).checkpoint_every(10);
    let m = b.mutex(0u64);
    let mut tids = Vec::new();
    for _ in 0..3 {
        tids.push(b.thread(LockCounter { mutex: m, rounds: 15, done: 0 }, GroupId::new(0), 1));
    }
    let report = b.build().run().unwrap();
    for t in tids {
        assert_eq!(report.output::<u32>(t), 15);
    }
    assert!(report.checkpoints > 0, "checkpoints must fire");
}

#[test]
fn cpr_rollback_preserves_output() {
    let run = |inject: bool| {
        let mut b = CprBuilder::new().workers(2).checkpoint_every(8);
        let m = b.mutex(0u64);
        let mut tids = Vec::new();
        for _ in 0..2 {
            tids.push(b.thread(
                LockCounter { mutex: m, rounds: 40, done: 0 },
                GroupId::new(0),
                1,
            ));
        }
        let rt = b.build();
        let c = rt.controller();
        let injector = inject.then(|| {
            std::thread::spawn(move || {
                let mut n = 0;
                while !c.is_finished() && n < 50 {
                    c.inject();
                    n += 1;
                    std::thread::sleep(Duration::from_micros(400));
                }
                n
            })
        });
        let report = rt.run().unwrap();
        if let Some(j) = injector {
            j.join().unwrap();
        }
        let outs: Vec<u32> = tids.iter().map(|&t| report.output::<u32>(t)).collect();
        (outs, report.rollbacks)
    };
    let (clean, _) = run(false);
    let (faulty, _rollbacks) = run(true);
    assert_eq!(clean, faulty);
}

#[test]
fn cpr_rollback_discards_post_checkpoint_spawns() {
    // A parent that spawns a child and joins it: rollbacks may land between
    // spawn and join; the final answer must be unaffected.
    struct Parent {
        stage: u8,
        child: Option<ThreadId>,
    }
    impl Checkpoint for Parent {
        type Snapshot = (u8, Option<ThreadId>);
        fn checkpoint(&self) -> Self::Snapshot {
            (self.stage, self.child)
        }
        fn restore(&mut self, s: &Self::Snapshot) {
            self.stage = s.0;
            self.child = s.1;
        }
    }
    impl ThreadProgram for Parent {
        fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
            match self.stage {
                0 => {
                    self.stage = 1;
                    Step::spawn(OneShot::new(|| 1234u64), GroupId::new(1), 1)
                }
                1 => {
                    self.child = Some(ctx.spawned());
                    self.stage = 2;
                    Step::join(self.child.unwrap())
                }
                _ => Step::exit(ctx.joined::<u64>()),
            }
        }
    }
    let mut b = CprBuilder::new().workers(2).checkpoint_every(2);
    let p = b.thread(Parent { stage: 0, child: None }, GroupId::new(0), 1);
    let rt = b.build();
    let c = rt.controller();
    let h = std::thread::spawn(move || {
        for _ in 0..5 {
            std::thread::sleep(Duration::from_micros(200));
            if c.is_finished() {
                break;
            }
            c.inject();
        }
    });
    let report = rt.run().unwrap();
    h.join().unwrap();
    assert_eq!(report.output::<u64>(p), 1234);
}

#[test]
fn cpr_pipeline_matches_gprs_results() {
    // Same producer/consumer program on both executors, same totals.
    struct Producer {
        chan: ChannelHandle<u64>,
        count: u64,
        next: u64,
    }
    impl Checkpoint for Producer {
        type Snapshot = u64;
        fn checkpoint(&self) -> u64 {
            self.next
        }
        fn restore(&mut self, s: &u64) {
            self.next = *s;
        }
    }
    impl ThreadProgram for Producer {
        fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
            if self.next == self.count {
                return Step::exit_unit();
            }
            let v = self.next;
            self.next += 1;
            self.chan.push(v)
        }
    }
    struct Summer {
        chan: ChannelHandle<u64>,
        count: u64,
        taken: u64,
        sum: u64,
        started: bool,
    }
    impl Checkpoint for Summer {
        type Snapshot = (u64, u64, bool);
        fn checkpoint(&self) -> Self::Snapshot {
            (self.taken, self.sum, self.started)
        }
        fn restore(&mut self, s: &Self::Snapshot) {
            self.taken = s.0;
            self.sum = s.1;
            self.started = s.2;
        }
    }
    impl ThreadProgram for Summer {
        fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
            if self.started {
                self.sum += ctx.popped::<u64>();
                self.taken += 1;
            } else {
                self.started = true;
            }
            if self.taken == self.count {
                return Step::exit(self.sum);
            }
            self.chan.pop()
        }
    }

    // GPRS executor.
    let mut gb = GprsBuilder::new().workers(2);
    let gchan = gb.channel::<u64>();
    gb.thread(Producer { chan: gchan, count: 30, next: 0 }, GroupId::new(0), 1);
    let gc = gb.thread(
        Summer { chan: gchan, count: 30, taken: 0, sum: 0, started: false },
        GroupId::new(1),
        1,
    );
    let greport = gb.build().run().unwrap();

    // CPR executor.
    let mut cb = CprBuilder::new().workers(2).checkpoint_every(16);
    let cchan = cb.channel::<u64>();
    cb.thread(Producer { chan: cchan, count: 30, next: 0 }, GroupId::new(0), 1);
    let cc = cb.thread(
        Summer { chan: cchan, count: 30, taken: 0, sum: 0, started: false },
        GroupId::new(1),
        1,
    );
    let creport = cb.build().run().unwrap();

    assert_eq!(greport.output::<u64>(gc), creport.output::<u64>(cc));
    assert_eq!(creport.output::<u64>(cc), (0..30u64).sum::<u64>());
}

#[test]
fn cpr_file_output_commits_at_checkpoints() {
    struct Writer {
        file: FileHandle,
        atomic: AtomicHandle,
        rounds: u8,
        done: u8,
    }
    impl Checkpoint for Writer {
        type Snapshot = u8;
        fn checkpoint(&self) -> u8 {
            self.done
        }
        fn restore(&mut self, s: &u8) {
            self.done = *s;
        }
    }
    impl ThreadProgram for Writer {
        fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
            ctx.write_file(self.file, &[self.done]);
            if self.done == self.rounds {
                return Step::exit_unit();
            }
            self.done += 1;
            self.atomic.fetch_add(1)
        }
    }
    let mut b = CprBuilder::new().workers(1).checkpoint_every(4);
    let f = b.file("cpr.out");
    let a = b.atomic(0);
    b.thread(Writer { file: f, atomic: a, rounds: 9, done: 0 }, GroupId::new(0), 1);
    let report = b.build().run().unwrap();
    assert_eq!(
        report.files.get(&0).map(|(_, b)| b.clone()).unwrap(),
        (0..=9u8).collect::<Vec<_>>()
    );
}
