//! Regenerates Table 2: program characteristics on the simulated
//! 24-context machine.

use gprs_bench::{
    analysis_report, parse_scale, paper_workload, print_table, pthreads_baseline,
    write_analysis_artifact, TelemetryArtifact, CONTEXTS,
};
use gprs_sim::cycles_to_secs;
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_workloads::traces::PROGRAMS;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!("Table 2 reproduction (scale {scale}, {CONTEXTS} contexts)");
    println!("Columns: simulated Pthreads baseline vs paper column 5;");
    println!("fine-grained sub-thread count vs paper column 7.\n");

    let mut rows = Vec::new();
    let mut artifact = TelemetryArtifact::new("table2");
    for prog in &PROGRAMS {
        write_analysis_artifact(prog.name, &analysis_report(prog.name, scale), &mut std::io::stdout());
        let coarse = paper_workload(prog.name, scale, false);
        let base = pthreads_baseline(&coarse);
        let fine = paper_workload(prog.name, scale, true);
        let g = run_gprs(&fine, &GprsSimConfig::balance_aware(CONTEXTS));
        artifact.push(format!("{}/Pthreads", prog.name), &base);
        artifact.push(format!("{}/GPRS-fine", prog.name), &g);
        rows.push(vec![
            prog.name.to_string(),
            format!("{:.2}", base.finish_secs()),
            format!("{:.2}", prog.paper_baseline_secs * scale),
            format!("{}", g.subthreads),
            format!("{}", prog.paper_subthreads),
            format!("{:.3}", cycles_to_secs(g.finish_cycles)),
        ]);
    }
    print_table(
        "Table 2: program characteristics",
        &[
            "program",
            "sim base (s)",
            "paper base (s)",
            "sim subthreads",
            "paper subthreads",
            "GPRS fine (s)",
        ],
        &rows,
    );
    artifact.write();
}
