//! `gprs-lint` — run the [`gprs_analyze`] static workload analyzer over the
//! paper's programs and print severity-ranked diagnostics.
//!
//! ```text
//! gprs-lint [--all | <program>...] [--scale <f>] [--deny warnings] [--no-artifact]
//! ```
//!
//! * `--all` lints the ten Table 2 programs ([`PROGRAMS`]).
//! * `<program>` is any name `gprs_workloads::traces::build` accepts,
//!   including the lint fixtures `histogram-racy` and `deadlock-hazard`
//!   (underscores are accepted as hyphens).
//! * `--deny warnings` makes warnings fail the run like errors (CI mode).
//! * Each linted program also writes `artifacts/analysis.<program>.json`
//!   via gprs-telemetry's JSON writer unless `--no-artifact` is given.
//!
//! Exit status: 0 when every report is clean (no errors; no warnings under
//! `--deny warnings`), 1 otherwise, 2 on usage errors.

use gprs_bench::{analysis_report, parse_scale, write_analysis_artifact};
use gprs_workloads::traces::PROGRAMS;

fn usage() -> ! {
    eprintln!(
        "usage: gprs-lint [--all | <program>...] [--scale <f>] [--deny warnings] [--no-artifact]\n\
         programs: {}, histogram-racy, deadlock-hazard",
        PROGRAMS
            .iter()
            .map(|p| p.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let mut deny_warnings = false;
    let mut artifact = true;
    let mut programs: Vec<String> = Vec::new();

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => programs.extend(PROGRAMS.iter().map(|p| p.name.to_string())),
            "--scale" => i += 1, // value consumed by parse_scale
            "--deny" => {
                i += 1;
                if args.get(i).map(String::as_str) != Some("warnings") {
                    usage();
                }
                deny_warnings = true;
            }
            "--no-artifact" => artifact = false,
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => usage(),
            name => programs.push(name.replace('_', "-")),
        }
        i += 1;
    }
    if programs.is_empty() {
        usage();
    }

    let mut failed = false;
    for name in &programs {
        let report = analysis_report(name, scale);
        println!("{report}");
        if artifact {
            write_analysis_artifact(name, &report);
        }
        println!();
        if report.errors() > 0 || (deny_warnings && report.warnings() > 0) {
            failed = true;
        }
    }

    let verdict = if failed { "FAILED" } else { "ok" };
    println!(
        "gprs-lint: {} program(s) analyzed, result: {verdict}{}",
        programs.len(),
        if deny_warnings {
            " (warnings denied)"
        } else {
            ""
        }
    );
    if failed {
        std::process::exit(1);
    }
}
