//! `gprs-lint` — run the [`gprs_analyze`] static workload analyzer over the
//! paper's programs and print severity-ranked diagnostics.
//!
//! ```text
//! gprs-lint [--all | <program>...] [--scale <f>] [--deny warnings]
//!           [--format <text|json>] [--no-artifact] [--check-artifacts]
//! ```
//!
//! * `--all` lints the ten Table 2 programs ([`PROGRAMS`]).
//! * `<program>` is any name `gprs_workloads::traces::build` accepts,
//!   including the lint fixtures `histogram-racy` and `deadlock-hazard`
//!   (underscores are accepted as hyphens).
//! * `--deny warnings` makes warnings fail the run like errors (CI mode).
//! * `--format json` emits one machine-readable JSON document on stdout
//!   (gprs-telemetry's JSON writer; same escaping as the artifacts)
//!   instead of the human-readable reports.
//! * Each linted program also writes `artifacts/analysis.<program>.json`
//!   and `artifacts/shardplan.<program>.json` unless `--no-artifact` is
//!   given (in JSON mode the artifact paths go to stderr to keep stdout a
//!   single document).
//! * `--check-artifacts` verifies instead of lints: every committed
//!   `artifacts/shardplan.<program>.json` (all ten programs unless names
//!   are given) is parsed and compared against a fresh analysis of its
//!   workload — a missing, unreadable, or drifted file is a **stale
//!   shardplan artifact** failure (exit 1). The sharded runtime trusts
//!   these artifacts as its domain contract, so CI pins them here.
//!
//! Exit status: 0 when every report is clean (no errors; no warnings under
//! `--deny warnings`), 1 otherwise, 2 on usage errors. The JSON document is
//! still written in full on exit 1 — consumers should read `"failed"`.

use gprs_bench::{analysis_report, parse_scale, write_analysis_artifact, write_shardplan_artifact};
use gprs_telemetry::json::JsonWriter;
use gprs_workloads::traces::PROGRAMS;

/// Verifies each committed `artifacts/shardplan.<program>.json` against a
/// fresh analysis of its workload, returning the number of stale files.
fn check_artifacts(programs: &[String], scale: f64) -> usize {
    let mut stale = 0;
    for name in programs {
        let path = std::path::Path::new("artifacts").join(format!("shardplan.{name}.json"));
        let fresh = analysis_report(name, scale).shard_plan.to_json();
        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "stale shardplan artifact: {} is missing ({e}) — \
                     run `gprs-lint --all` to regenerate",
                    path.display()
                );
                stale += 1;
                continue;
            }
        };
        // Round-trip through the parser so the comparison is canonical,
        // not sensitive to committed whitespace.
        let canonical = match gprs_analyze::ShardPlan::from_json(&committed) {
            Ok(plan) => plan.to_json(),
            Err(e) => {
                eprintln!(
                    "stale shardplan artifact: {} is unreadable: {e}",
                    path.display()
                );
                stale += 1;
                continue;
            }
        };
        if canonical == fresh {
            println!("shardplan artifact {} is fresh", path.display());
        } else {
            eprintln!(
                "stale shardplan artifact: {} no longer matches a fresh analysis \
                 of {name:?} — run `gprs-lint --all` to regenerate",
                path.display()
            );
            stale += 1;
        }
    }
    stale
}

/// Verifies every committed recording fixture (`crates/chaos/fixtures/
/// *.plan` files with a `# recording:` header) by re-recording its run
/// and comparing the canonical recording text, returning the number of
/// stale files. The replay smoke job trusts these recordings as pinned
/// schedules, so CI pins their freshness here alongside the shardplans.
fn check_recording_fixtures() -> usize {
    let dir = std::path::Path::new("crates/chaos/fixtures");
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("recording fixtures: {} is unreadable: {e}", dir.display());
            return 1;
        }
    };
    let mut stale = 0;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "plan"))
        .collect();
    paths.sort();
    for path in paths {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // the fixture replay job owns plan readability
        };
        let Ok(fx) = gprs_chaos::Fixture::parse(&text) else {
            continue;
        };
        let Some(name) = &fx.recording else {
            continue;
        };
        let committed_path = path.with_file_name(name);
        let committed = match gprs_core::recording::Recording::load(&committed_path) {
            Ok(rec) => rec,
            Err(e) => {
                eprintln!(
                    "stale recording fixture: {} — {e} — run `gprs-chaos \
                     --record-fixture {}` to regenerate",
                    committed_path.display(),
                    path.display()
                );
                stale += 1;
                continue;
            }
        };
        let tmp = gprs_core::persist::unique_temp_dir("lint-recheck").join(name);
        let fresh = match gprs_chaos::record_fixture(&fx, &tmp)
            .map_err(|e| e.to_string())
            .and_then(|_| {
                gprs_core::recording::Recording::load(&tmp).map_err(|e| e.to_string())
            }) {
            Ok(rec) => rec,
            Err(e) => {
                eprintln!(
                    "stale recording fixture: {} cannot be re-recorded: {e}",
                    committed_path.display()
                );
                stale += 1;
                continue;
            }
        };
        let _ = std::fs::remove_file(&tmp);
        // Canonical text comparison: same events, digests, header and
        // outcome — byte-stable because recordings carry no timestamps.
        if committed.to_text() == fresh.to_text() {
            println!("recording fixture {} is fresh", committed_path.display());
        } else {
            eprintln!(
                "stale recording fixture: {} no longer matches a fresh recording \
                 of its fixture — run `gprs-chaos --record-fixture {}` to regenerate",
                committed_path.display(),
                path.display()
            );
            stale += 1;
        }
    }
    stale
}

fn usage() -> ! {
    eprintln!(
        "usage: gprs-lint [--all | <program>...] [--scale <f>] [--deny warnings] \
         [--format <text|json>] [--no-artifact] [--check-artifacts]\n\
         exit status: 0 clean, 1 findings, 2 usage error\n\
         programs: {}, histogram-racy, deadlock-hazard",
        PROGRAMS
            .iter()
            .map(|p| p.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let mut deny_warnings = false;
    let mut artifact = true;
    let mut json = false;
    let mut check = false;
    let mut programs: Vec<String> = Vec::new();

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => programs.extend(PROGRAMS.iter().map(|p| p.name.to_string())),
            "--scale" => i += 1, // value consumed by parse_scale
            "--deny" => {
                i += 1;
                if args.get(i).map(String::as_str) != Some("warnings") {
                    usage();
                }
                deny_warnings = true;
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => json = false,
                    Some("json") => json = true,
                    _ => usage(),
                }
            }
            "--no-artifact" => artifact = false,
            "--check-artifacts" => check = true,
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => usage(),
            name => programs.push(name.replace('_', "-")),
        }
        i += 1;
    }
    if check {
        if programs.is_empty() {
            programs.extend(PROGRAMS.iter().map(|p| p.name.to_string()));
        }
        let stale = check_artifacts(&programs, scale) + check_recording_fixtures();
        if stale > 0 {
            eprintln!("gprs-lint: {stale} stale artifact(s)");
            std::process::exit(1);
        }
        println!(
            "gprs-lint: all {} shardplan artifact(s) and every committed \
             recording fixture are fresh",
            programs.len()
        );
        return;
    }
    if programs.is_empty() {
        usage();
    }

    let mut failed = false;
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("tool", "gprs-lint")
        .field_u64("deny_warnings", u64::from(deny_warnings));
    w.key("programs").begin_array();
    for name in &programs {
        let report = analysis_report(name, scale);
        if json {
            report.write_json(&mut w);
        } else {
            println!("{report}");
        }
        if artifact {
            // In JSON mode stdout carries exactly one document; route the
            // artifact-path chatter to stderr instead.
            let mut out: Box<dyn std::io::Write> = if json {
                Box::new(std::io::stderr())
            } else {
                Box::new(std::io::stdout())
            };
            write_analysis_artifact(name, &report, &mut out);
            write_shardplan_artifact(name, &report, &mut out);
        }
        if !json {
            println!();
        }
        if report.errors() > 0 || (deny_warnings && report.warnings() > 0) {
            failed = true;
        }
    }
    w.end_array().field_u64("failed", u64::from(failed));
    w.end_object();

    if json {
        println!("{}", w.finish());
    } else {
        let verdict = if failed { "FAILED" } else { "ok" };
        println!(
            "gprs-lint: {} program(s) analyzed, result: {verdict}{}",
            programs.len(),
            if deny_warnings {
                " (warnings denied)"
            } else {
                ""
            }
        );
    }
    if failed {
        std::process::exit(1);
    }
}
