//! The tracked performance suite: wall-time + counter baselines for the
//! runtime's grant/checkpoint/retire/recovery paths at 1/2/4/8 workers,
//! the sharded-order-domain scaling sweep at 8/16/32 workers, and the
//! simulator's recovery hot loop, plus golden determinism hashes.
//!
//! Two artifacts live under `crates/bench/goldens/` and are committed:
//!
//! * `determinism.txt` — `schedule_hash`/`retired_hash` pairs for the ten
//!   paper workloads on the simulator (fault-free and seeded injection) and
//!   for real-runtime programs across 1/2/4/8 workers. Any drift is a
//!   determinism regression and fails the run (exit 1).
//! * `baseline_perf.txt` — recorded perf numbers; reruns report speedups
//!   against them (informational locally, tracked by `BENCH_perf.json`).
//!
//! `BENCH_perf.json` (workspace root) is the machine-readable trajectory
//! point: current numbers, the committed baseline, and derived ratios.
//!
//! Flags: `--quick` shrinks the perf sections (determinism parameters are
//! fixed so goldens match in every mode; the perf baseline switches to
//! `baseline_perf_quick.txt` since the shrunk counts differ); `--bless`
//! rewrites both golden files from the current run; `--bless-baseline`
//! rewrites only the perf baseline; `--out <path>` overrides the JSON
//! path; `--gate <pct>` fails (exit 2) when a deterministic count metric
//! regresses more than `pct`% over the committed baseline, and
//! `--gate-wall` opts wall time — plus the scaling sweep's per-worker
//! grant throughput, gated in the decrease direction — into the gate (off
//! by default: wall clocks are not comparable across machines).

use gprs_bench::{injector, print_table};
use gprs_runtime::cpr::CprBuilder;
use gprs_runtime::prelude::*;
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_telemetry::JsonWriter;
use gprs_workloads::kernels::compress::generate_corpus;
use gprs_workloads::programs::{
    beacon_model, beacon_model_rounds, build_beacon, build_beacon_rounds, build_pbzip_pipeline,
    HistogramWorker,
};
use gprs_workloads::traces::{build, TraceParams, PROGRAMS};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Micro-programs

/// One logical thread fetch-adding its own atomic `rounds` times: with one
/// atomic per thread this is the pure grant→checkpoint→step→deposit→retire
/// path, no blocking anywhere.
struct Chain {
    atomic: AtomicHandle,
    rounds: u32,
    done: u32,
}

impl Checkpoint for Chain {
    type Snapshot = u32;
    fn checkpoint(&self) -> u32 {
        self.done
    }
    fn restore(&mut self, s: &u32) {
        self.done = *s;
    }
}

impl ThreadProgram for Chain {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        if self.done == self.rounds {
            return Step::exit_unit();
        }
        self.done += 1;
        self.atomic.fetch_add(1)
    }
}

/// Like [`Chain`] but dragging a large mod set so `checkpoint()` cost —
/// the part this PR moves off the big lock — dominates.
struct HeavyChain {
    atomic: AtomicHandle,
    payload: Vec<u64>,
    rounds: u32,
    done: u32,
}

impl Checkpoint for HeavyChain {
    type Snapshot = (Vec<u64>, u32);
    fn checkpoint(&self) -> (Vec<u64>, u32) {
        (self.payload.clone(), self.done)
    }
    fn restore(&mut self, s: &(Vec<u64>, u32)) {
        self.payload = s.0.clone();
        self.done = s.1;
    }
}

impl ThreadProgram for HeavyChain {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        if self.done == self.rounds {
            return Step::exit_unit();
        }
        let ix = self.done as usize % self.payload.len();
        self.payload[ix] = self.payload[ix]
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        self.done += 1;
        self.atomic.fetch_add(1)
    }
}

fn chain_run(workers: usize, threads: u32, rounds: u32) -> RunReport {
    let mut b = GprsBuilder::new().workers(workers);
    for _ in 0..threads {
        let a = b.atomic(0);
        b.thread(Chain { atomic: a, rounds, done: 0 }, GroupId::new(0), 1);
    }
    b.build().run().unwrap()
}

fn heavy_run(workers: usize, threads: u32, rounds: u32, payload: usize) -> RunReport {
    let mut b = GprsBuilder::new().workers(workers);
    for t in 0..threads {
        let a = b.atomic(0);
        b.thread(
            HeavyChain {
                atomic: a,
                payload: vec![t as u64; payload],
                rounds,
                done: 0,
            },
            GroupId::new(0),
            1,
        );
    }
    b.build().run().unwrap()
}

fn cpr_chain_run(workers: usize, threads: u32, rounds: u32) -> Duration {
    let mut b = CprBuilder::new().workers(workers).checkpoint_every(32);
    for _ in 0..threads {
        let a = b.atomic(0);
        b.thread(Chain { atomic: a, rounds, done: 0 }, GroupId::new(0), 1);
    }
    let cpr = b.build();
    let t0 = Instant::now();
    cpr.run().unwrap();
    t0.elapsed()
}

/// Periodic `inject_on_busy` storm, as the end-to-end tests do.
fn storm(ctl: Controller, period: Duration) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut n = 0;
        while !ctl.is_finished() {
            if ctl.inject_on_busy(ExceptionKind::SoftFault) {
                n += 1;
            }
            std::thread::sleep(period);
        }
        n
    })
}

// ---------------------------------------------------------------------------
// Golden files

#[derive(Debug, Clone, PartialEq, Eq)]
struct Golden {
    key: String,
    schedule: u64,
    retired: u64,
}

fn goldens_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("goldens")
}

fn parse_goldens(text: &str) -> Vec<Golden> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut it = l.split_whitespace();
            let key = it.next().expect("golden key").to_string();
            let mut hex = |what: &str| {
                let s = it.next().unwrap_or_else(|| panic!("missing {what} in {l:?}"));
                u64::from_str_radix(s.trim_start_matches("0x"), 16)
                    .unwrap_or_else(|_| panic!("bad {what} in line {l:?}"))
            };
            let schedule = hex("schedule hash");
            let retired = hex("retired hash");
            Golden { key, schedule, retired }
        })
        .collect()
}

fn render_goldens(goldens: &[Golden]) -> String {
    let mut s = String::from(
        "# perfsuite determinism goldens: <key> <schedule_hash> <retired_hash>\n\
         # Recorded from the seed engine; `perfsuite --bless` rewrites.\n",
    );
    for g in goldens {
        s.push_str(&format!(
            "{} {:#018x} {:#018x}\n",
            g.key, g.schedule, g.retired
        ));
    }
    s
}

/// Baseline perf numbers: `<row_key>.<metric> <value>` lines.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut it = l.split_whitespace();
            let key = it.next().expect("baseline key").to_string();
            let v: f64 = it
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("bad baseline value in {l:?}"));
            (key, v)
        })
        .collect()
}

fn render_baseline(rows: &[PerfRow]) -> String {
    let mut s = String::from(
        "# perfsuite recorded baseline: <row_key>.<metric> <value>\n\
         # Recorded from the seed engine; `perfsuite --bless` rewrites.\n",
    );
    for row in rows {
        for (name, v) in &row.metrics {
            s.push_str(&format!("{}.{} {}\n", row.key, name, v));
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Perf rows

struct PerfRow {
    key: String,
    metrics: Vec<(&'static str, f64)>,
}

fn runtime_metrics(key: String, report: &RunReport, wall: Duration) -> PerfRow {
    let t = &report.telemetry;
    let secs = wall.as_secs_f64().max(1e-9);
    let grants = t.counter("grants") as f64;
    let fast = t.counter("fast_path_grants") as f64;
    let batch_mean = t.histogram("retire_batch").map_or(0.0, |h| h.mean());
    PerfRow {
        key,
        metrics: vec![
            ("wall_ns", wall.as_nanos() as f64),
            ("grants", grants),
            ("grants_per_sec", grants / secs),
            ("fast_path_grants", fast),
            ("fast_path_share", if grants > 0.0 { fast / grants } else { 0.0 }),
            ("wakeups_issued", t.counter("wakeups_issued") as f64),
            ("wakeups_spurious", t.counter("wakeups_spurious") as f64),
            ("hot_path_allocs", t.counter("hot_path_allocs") as f64),
            ("retire_batch_mean", batch_mean),
            ("checkpoints", t.counter("checkpoints") as f64),
            ("recoveries", t.counter("recovery_sessions") as f64),
        ],
    }
}

// ---------------------------------------------------------------------------
// Suite sections

/// Fixed-parameter determinism sweep. The parameters here are part of the
/// golden contract — never scale them with `--quick`.
fn determinism(goldens: &mut Vec<Golden>) {
    // Simulator: all ten paper workloads, fault-free and with the seeded
    // (fully deterministic) injector at each program's Fig. 10 high rate.
    let params = TraceParams::paper().scaled(0.04);
    for prog in &PROGRAMS {
        let w = build(prog.name, &params);
        let clean = run_gprs(&w, &GprsSimConfig::balance_aware(8));
        goldens.push(Golden {
            key: format!("sim/{}/clean", prog.name),
            schedule: clean.telemetry.schedule_hash,
            retired: clean.telemetry.retired_hash,
        });
        // Static checkpoint elision must be hash-invisible: the golden
        // recorded from the elision-off run is also the contract for the
        // elision-on run (differential oracle, inline so the committed
        // golden file needs no extra keys for it).
        let elided = run_gprs(&w, &GprsSimConfig::balance_aware(8).with_elision(true));
        assert_eq!(
            (elided.telemetry.schedule_hash, elided.telemetry.retired_hash),
            (clean.telemetry.schedule_hash, clean.telemetry.retired_hash),
            "sim/{}: checkpoint elision moved the determinism hashes",
            prog.name
        );
        // The goldens run at a tiny scale to stay cheap; the per-second
        // Fig. 10 rates would land ~zero exceptions in so short a run.
        // Derive the rate from the (deterministic) fault-free finish time
        // so every workload takes a handful of hits, and cap the injected
        // run at a fixed simulated cycle so a recovery storm still
        // terminates — both inputs are deterministic, so the hash is too.
        let rate = 8.0 * gprs_sim::costs::CYCLES_PER_SEC as f64 / clean.finish_cycles as f64;
        let cfg = GprsSimConfig::balance_aware(8)
            .with_exceptions(injector(rate, 8, 0xD37E))
            .with_time_cap(clean.finish_cycles.saturating_mul(12));
        let injected = run_gprs(&w, &cfg);
        goldens.push(Golden {
            key: format!("sim/{}/injected", prog.name),
            schedule: injected.telemetry.schedule_hash,
            retired: injected.telemetry.retired_hash,
        });
        eprintln!("  determinism sim/{} done", prog.name);
    }

    // Real runtime, fault-free: hashes must agree at every worker count,
    // so each program contributes ONE golden plus a cross-worker assert.
    let worker_counts = [1usize, 2, 4, 8];
    let mut push_rt = |key: &str, runs: Vec<(u64, u64)>| {
        let first = runs[0];
        for (w, r) in worker_counts.iter().zip(&runs) {
            assert_eq!(
                *r, first,
                "{key}: determinism hashes differ between 1 and {w} workers"
            );
        }
        goldens.push(Golden {
            key: key.to_string(),
            schedule: first.0,
            retired: first.1,
        });
        eprintln!("  determinism {key} done (identical at 1/2/4/8 workers)");
    };

    push_rt(
        "rt/fetchadd",
        worker_counts
            .iter()
            .map(|&w| {
                let t = chain_run(w, 8, 64).telemetry;
                (t.schedule_hash, t.retired_hash)
            })
            .collect(),
    );

    let input = generate_corpus(30_000, 11);
    push_rt(
        "rt/pbzip",
        worker_counts
            .iter()
            .map(|&w| {
                let mut b = GprsBuilder::new().workers(w);
                let _ = build_pbzip_pipeline(&mut b, input.clone(), 2048, 2);
                let t = b.build().run().unwrap().telemetry;
                (t.schedule_hash, t.retired_hash)
            })
            .collect(),
    );

    let data = generate_corpus(32_000, 5);
    push_rt(
        "rt/histogram",
        worker_counts
            .iter()
            .map(|&w| {
                let mut b = GprsBuilder::new().workers(w);
                let acc = b.mutex(vec![0u64; 256]);
                for chunk in data.chunks(4_000) {
                    b.thread(HistogramWorker::new(chunk.to_vec(), acc), GroupId::new(0), 1);
                }
                let t = b.build().run().unwrap().telemetry;
                (t.schedule_hash, t.retired_hash)
            })
            .collect(),
    );

    // Beacon with dead-store WAL elision ON: the golden is recorded from
    // the eliding run, and each worker count first proves the elided run
    // hash-identical to its elision-off twin (differential oracle).
    let beacon_runs: Vec<(u64, u64)> = worker_counts
        .iter()
        .map(|&w| {
            let run = |elide: bool| {
                let mut b = GprsBuilder::new().workers(w);
                let _ = build_beacon(&mut b, 4, 48);
                let t = b
                    .model(beacon_model(4, 48))
                    .elide(elide)
                    .build()
                    .run()
                    .unwrap()
                    .telemetry;
                assert_eq!(t.counter("wal_records_elided") > 0, elide, "w{w}");
                (t.schedule_hash, t.retired_hash)
            };
            let (off, on) = (run(false), run(true));
            assert_eq!(on, off, "rt/beacon w{w}: WAL elision moved the hashes");
            on
        })
        .collect();
    let beacon_retired = beacon_runs[0].1;
    push_rt("rt/beacon", beacon_runs);

    // Sharded twin of rt/beacon: the plan gives each beacon worker its own
    // order domain, and the per-domain gates joined by the wrapping-sum
    // merge must reproduce the unsharded retired order at every worker
    // count. The merged schedule hash is a sharded-mode artifact (stable,
    // but not comparable to the unsharded value), so it gets its own
    // golden line.
    push_rt(
        "rt/beacon_sharded",
        worker_counts
            .iter()
            .map(|&w| {
                let mut b = GprsBuilder::new().workers(w);
                let _ = build_beacon(&mut b, 4, 48);
                let t = b
                    .model(beacon_model(4, 48))
                    .build_sharded()
                    .run()
                    .unwrap()
                    .telemetry;
                assert_eq!(
                    t.retired_hash, beacon_retired,
                    "rt/beacon_sharded w{w}: sharded retirement diverged from the \
                     unsharded golden"
                );
                (t.schedule_hash, t.retired_hash)
            })
            .collect(),
    );
}

fn perf(quick: bool) -> Vec<PerfRow> {
    let mut rows = Vec::new();

    // Grant/retire micro-path: 8 disjoint fetch-add chains, swept across
    // worker counts. This is the path the OrderGate fast path targets.
    let rounds = if quick { 128 } else { 1024 };
    for workers in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let report = chain_run(workers, 8, rounds);
        let wall = t0.elapsed();
        rows.push(runtime_metrics(
            format!("grant_retire/w{workers}"),
            &report,
            wall,
        ));
        eprintln!("  perf grant_retire/w{workers} done ({wall:?})");
    }

    // Sharded scaling push: beacon gives the planner one provable order
    // domain per worker, so the sharded build fans out into independent
    // OrderGate/ROL/WAL stacks while the unsharded twin serializes every
    // grant through a single gate. Swept past the single-gate design point
    // (w8/w16/w32); the headline metric is `grants_per_sec_per_worker` no
    // longer collapsing as the worker count doubles. Retired-order
    // equivalence and the allocation-free hot path are asserted here — a
    // scaling row that cheats on precision or mallocs per grant must fail
    // the suite, not just drift a gauge.
    {
        let rounds = if quick { 24u32 } else { 160 };
        for workers in [8usize, 16, 32] {
            let run = |sharded: bool| {
                let mut b = GprsBuilder::new().workers(workers);
                let _ = build_beacon(&mut b, workers, rounds);
                b = b.model(beacon_model(workers, rounds));
                let t0 = Instant::now();
                let r = if sharded {
                    b.build_sharded().run().unwrap()
                } else {
                    b.build().run().unwrap()
                };
                (r, t0.elapsed())
            };
            let (plain, plain_wall) = run(false);
            let (sharded, shard_wall) = run(true);
            assert_eq!(
                sharded.telemetry.retired_hash, plain.telemetry.retired_hash,
                "scaling/w{workers}: sharded retirement diverged from the unsharded twin"
            );
            assert_eq!(
                sharded.telemetry.counter("hot_path_allocs"),
                0,
                "scaling/w{workers}: the sharded grant path must stay allocation-free"
            );
            let mut push = |key: String, report: &RunReport, wall: Duration| {
                let mut row = runtime_metrics(key, report, wall);
                let gps = row
                    .metrics
                    .iter()
                    .find(|(n, _)| *n == "grants_per_sec")
                    .map_or(0.0, |(_, v)| *v);
                row.metrics
                    .push(("grants_per_sec_per_worker", gps / workers as f64));
                row.metrics.push(("domains", report.shards.len() as f64));
                rows.push(row);
            };
            push(format!("scaling_unsharded/w{workers}"), &plain, plain_wall);
            push(format!("scaling_sharded/w{workers}"), &sharded, shard_wall);
            eprintln!(
                "  perf scaling/w{workers} done (sharded {shard_wall:?} over {} domains \
                 vs unsharded {plain_wall:?})",
                sharded.shards.len()
            );
        }
    }

    // Checkpoint capture path: large mod sets make `checkpoint()` the cost
    // the off-critical-section hand-off is meant to hide.
    let heavy_rounds = if quick { 48 } else { 256 };
    for workers in [1usize, 4] {
        let t0 = Instant::now();
        let report = heavy_run(workers, 4, heavy_rounds, 16 * 1024);
        let wall = t0.elapsed();
        rows.push(runtime_metrics(
            format!("checkpoint/w{workers}"),
            &report,
            wall,
        ));
        eprintln!("  perf checkpoint/w{workers} done ({wall:?})");
    }

    // Recovery path under an injection storm (wall-clock injection timing
    // makes this row a throughput probe, not a determinism golden).
    {
        let rounds = if quick { 256 } else { 1024 };
        let mut b = GprsBuilder::new().workers(4);
        for _ in 0..4 {
            let a = b.atomic(0);
            b.thread(Chain { atomic: a, rounds, done: 0 }, GroupId::new(0), 1);
        }
        let gprs = b.build();
        let inj = storm(gprs.controller(), Duration::from_micros(400));
        let t0 = Instant::now();
        let report = gprs.run().unwrap();
        let wall = t0.elapsed();
        inj.join().unwrap();
        rows.push(runtime_metrics("recovery/w4".to_string(), &report, wall));
        eprintln!("  perf recovery/w4 done ({wall:?})");
    }

    // CPR baseline executor on the identical chain program: keeps the
    // Fig. 8/10 comparison honest once both executors drop notify_all.
    {
        let rounds = if quick { 128 } else { 1024 };
        let wall = cpr_chain_run(4, 8, rounds);
        rows.push(PerfRow {
            key: "cpr_chain/w4".to_string(),
            metrics: vec![("wall_ns", wall.as_nanos() as f64)],
        });
        eprintln!("  perf cpr_chain/w4 done ({wall:?})");
    }

    // Multi-tenant serving throughput: a shared pool drains thousands of
    // queued small jobs (fetchadd/mutex/histogram specs, varied seeds),
    // swept across pool widths. The 16-grant quantum makes the larger
    // specs yield and re-enter the FIFO, so the park/requeue/migrate path
    // is on the measured path. `jobs` and `quanta` are deterministic
    // counts — the grant sequence per job and the quantum fix how many
    // scheduling quanta the backlog costs — so both are gated; jobs/sec is
    // the tracked wall-clock figure.
    {
        use gprs_serve::{JobSpec, PoolConfig, ServePool};
        let jobs = if quick { 200 } else { 2000 };
        for workers in [1usize, 2, 4, 8] {
            let pool = ServePool::start(PoolConfig {
                workers,
                quantum: 16,
                ..Default::default()
            });
            let handle = pool.handle();
            let t0 = Instant::now();
            let mut tickets = Vec::with_capacity(jobs);
            for i in 0..jobs {
                // Every fourth job is a histogram (hundreds of grants);
                // the rest are small fetchadd/mutex specs — the mix keeps
                // execution, not admission, the dominant cost.
                let workload = match i % 4 {
                    0 => "fetchadd",
                    1 => "mutex",
                    2 => "fetchadd",
                    _ => "histogram",
                };
                let seed = (i as u64) % 17 + 1;
                tickets.push(handle.submit(JobSpec::new(workload, seed)).unwrap());
            }
            let mut completed = 0u64;
            for ticket in tickets {
                let outcome = ticket.wait();
                assert!(
                    outcome.report.is_some(),
                    "serve_throughput job failed: {:?}",
                    outcome.error
                );
                completed += 1;
            }
            let wall = t0.elapsed();
            let stats = pool.shutdown();
            let secs = wall.as_secs_f64().max(1e-9);
            rows.push(PerfRow {
                key: format!("serve_throughput/w{workers}"),
                metrics: vec![
                    ("wall_ns", wall.as_nanos() as f64),
                    ("jobs", completed as f64),
                    ("jobs_per_sec", completed as f64 / secs),
                    ("quanta", stats.quanta as f64),
                    ("yields", stats.yields as f64),
                ],
            });
            eprintln!("  perf serve_throughput/w{workers} done ({wall:?}, {jobs} jobs)");
        }
    }

    // Durable WAL path: the same 8-chain grant/retire program with the
    // file backend armed, swept across worker counts. The delta against
    // the grant_retire/w* rows is the cost of durable mirroring
    // (checksummed appends, segment sealing, group-commit fsyncs). Every
    // durable hook is gated on `cfg.persist`, so the in-memory rows above
    // must not move when this section's code changes.
    {
        use gprs_core::persist::{unique_temp_dir, FileBackend};
        use std::sync::Arc;
        let rounds = if quick { 128 } else { 1024 };
        for workers in [1usize, 2, 4, 8] {
            let dir = unique_temp_dir("gprs-perf-durable");
            let backend =
                Arc::new(FileBackend::open(&dir).expect("perf durable dir opens"));
            let mut b = GprsBuilder::new()
                .workers(workers)
                .durable(backend)
                .durable_spec(format!("perf durable_wal w{workers}"));
            for _ in 0..8 {
                let a = b.atomic(0);
                b.thread(Chain { atomic: a, rounds, done: 0 }, GroupId::new(0), 1);
            }
            let t0 = Instant::now();
            let report = b.build().run().unwrap();
            let wall = t0.elapsed();
            let mut row =
                runtime_metrics(format!("durable_wal/w{workers}"), &report, wall);
            let t = &report.telemetry;
            row.metrics
                .push(("wal_segments_sealed", t.counter("wal_segments_sealed") as f64));
            row.metrics.push(("fsyncs", t.counter("fsyncs") as f64));
            rows.push(row);
            let _ = std::fs::remove_dir_all(&dir);
            eprintln!("  perf durable_wal/w{workers} done ({wall:?})");
        }
    }

    // Static elision consumers. Two runtime workloads run with their
    // dead-store proofs consumed (`wal_records_elided` must stay positive
    // — `wal_appends` is gated so broken elision shows up as an append
    // regression), and two simulator workloads run with checkpoint
    // elision at proven read-only boundaries. Each row first asserts the
    // differential oracle inline: elision on and off retire bit-identical
    // orders.
    {
        use gprs_core::ids::AtomicId;
        use gprs_core::workload::{Segment, SimOp, ThreadSpec};
        let rounds = if quick { 48u32 } else { 256 };

        let mut elide_row = |key: &str, report: RunReport, wall: Duration, off: &RunReport| {
            assert_eq!(
                report.telemetry.retired_hash, off.telemetry.retired_hash,
                "{key}: WAL elision changed the retired order"
            );
            assert!(
                report.telemetry.counter("wal_records_elided") > 0,
                "{key}: the elision row must actually elide"
            );
            let mut row = runtime_metrics(key.to_string(), &report, wall);
            let t = &report.telemetry;
            row.metrics
                .push(("wal_appends", t.counter("wal_appends") as f64));
            row.metrics.push((
                "wal_records_elided",
                t.counter("wal_records_elided") as f64,
            ));
            rows.push(row);
            eprintln!("  perf {key} done ({wall:?})");
        };

        // Pure beacon: every plain store is a proven dead store.
        {
            let shape = vec![rounds; 4];
            let run = |elide: bool| {
                let mut b = GprsBuilder::new().workers(4);
                let _ = build_beacon_rounds(&mut b, &shape);
                let t0 = Instant::now();
                let r = b
                    .model(beacon_model_rounds(&shape))
                    .elide(elide)
                    .build()
                    .run()
                    .unwrap();
                (r, t0.elapsed())
            };
            let (off, _) = run(false);
            let (on, wall) = run(true);
            elide_row("elide_wal/beacon", on, wall, &off);
        }

        // Mixed program: beacon workers share the machine with fetch-add
        // chains — the proofs must stay per-cell, eliding only the beacon
        // stores while the chain traffic logs normally.
        {
            let shape = vec![rounds; 2];
            let chains = 2u32;
            let mut model = beacon_model_rounds(&shape);
            for i in 0..chains {
                model.threads.push(ThreadSpec::new(
                    ThreadId::new(shape.len() as u32 + i),
                    GroupId::new(shape.len() as u32 + i),
                    1,
                    (0..rounds)
                        .map(|_| {
                            Segment::new(400, SimOp::Atomic {
                                atomic: AtomicId::new(2 * shape.len() as u64 + u64::from(i)),
                            })
                        })
                        .collect(),
                ));
            }
            model.name = "beacon-mixed".into();
            let run = |elide: bool| {
                let mut b = GprsBuilder::new().workers(4);
                let _ = build_beacon_rounds(&mut b, &shape);
                for i in 0..chains {
                    let a = b.atomic(0);
                    b.thread(
                        Chain { atomic: a, rounds, done: 0 },
                        GroupId::new(shape.len() as u32 + i),
                        1,
                    );
                }
                let t0 = Instant::now();
                let r = b.model(model.clone()).elide(elide).build().run().unwrap();
                (r, t0.elapsed())
            };
            let (off, _) = run(false);
            let (on, wall) = run(true);
            elide_row("elide_wal/beacon_mixed", on, wall, &off);
        }

        // Simulator checkpoint elision: dedup and pbzip2 have the largest
        // proven-read-only boundary share (~40% of checkpoints).
        let sim_scale = if quick { 0.02 } else { 0.08 };
        for name in ["dedup", "pbzip2"] {
            let w = build(name, &TraceParams::paper().scaled(sim_scale));
            let off = run_gprs(&w, &GprsSimConfig::balance_aware(8));
            let t0 = Instant::now();
            let on = run_gprs(&w, &GprsSimConfig::balance_aware(8).with_elision(true));
            let wall = t0.elapsed();
            assert_eq!(
                on.telemetry.retired_hash, off.telemetry.retired_hash,
                "elide_ckpt/{name}: checkpoint elision changed the retired order"
            );
            assert!(on.checkpoints_elided > 0, "elide_ckpt/{name}");
            rows.push(PerfRow {
                key: format!("elide_ckpt/{name}"),
                metrics: vec![
                    ("wall_ns", wall.as_nanos() as f64),
                    ("checkpoints", on.checkpoints as f64),
                    ("checkpoints_elided", on.checkpoints_elided as f64),
                    (
                        "ckpt_cycles_saved",
                        off.ckpt_cycles.saturating_sub(on.ckpt_cycles) as f64,
                    ),
                ],
            });
            eprintln!(
                "  perf elide_ckpt/{name} done ({wall:?}, {} of {} boundaries elided)",
                on.checkpoints_elided,
                on.checkpoints + on.checkpoints_elided
            );
        }
    }

    // Simulator recovery hot loop (`affected_set`/`plan_recovery`): host
    // wall time of injected sim runs — the O(window) rescan shows up here.
    let scale = if quick { 0.05 } else { 0.15 };
    for name in ["canneal", "dedup"] {
        let w = build(name, &TraceParams::paper().scaled(scale));
        let info = gprs_workloads::traces::info(name);
        let cfg = GprsSimConfig::balance_aware(24)
            .with_exceptions(injector(info.fig10_high_rate, 24, 0x5EED));
        let t0 = Instant::now();
        let r = run_gprs(&w, &cfg);
        let wall = t0.elapsed();
        rows.push(PerfRow {
            key: format!("sim_recovery/{name}"),
            metrics: vec![
                ("wall_ns", wall.as_nanos() as f64),
                ("recoveries", r.telemetry.counter("recovery_sessions") as f64),
                ("squashed", r.squashed as f64),
                ("subthreads", r.subthreads as f64),
                (
                    "subthreads_per_sec",
                    r.subthreads as f64 / wall.as_secs_f64().max(1e-9),
                ),
            ],
        });
        eprintln!("  perf sim_recovery/{name} done ({wall:?})");
    }

    rows
}

// ---------------------------------------------------------------------------
// Perf gate

/// Count metrics that are a deterministic function of the program and
/// seed, hence comparable across machines and eligible for `--gate`.
/// Wall-clock and derived-throughput metrics join only with `--gate-wall`.
const GATED_METRICS: &[&str] = &[
    "grants",
    "checkpoints",
    "recoveries",
    "squashed",
    "subthreads",
    "jobs",
    "quanta",
    "wal_segments_sealed",
    "fsyncs",
    // Elision rows: appends regressing means the proofs stopped biting;
    // the elided counts themselves are deterministic too.
    "wal_appends",
    "wal_records_elided",
    "checkpoints_elided",
    // Scaling rows: the domain fan-out is a pure function of the shard
    // plan, so a shrinking partition is a planner regression.
    "domains",
];

/// Throughput metrics gate in the *decrease* direction — a sharded
/// scaling row falling under its recorded per-worker grant rate is the
/// regression the sweep exists to catch. Wall-clock-derived, so they join
/// the gate only under `--gate-wall`.
const GATED_THROUGHPUT: &[&str] = &["grants_per_sec_per_worker"];

/// Rows whose counters depend on wall-clock injection timing; never gated.
const UNGATED_ROWS: &[&str] = &["recovery/w4"];

fn gate_failures(
    rows: &[PerfRow],
    baseline: &[(String, f64)],
    pct: f64,
    gate_wall: bool,
) -> Vec<String> {
    let mut failures = Vec::new();
    for row in rows {
        if UNGATED_ROWS.contains(&row.key.as_str()) {
            continue;
        }
        for (name, v) in &row.metrics {
            let throughput = gate_wall && GATED_THROUGHPUT.contains(name);
            let gated = throughput
                || GATED_METRICS.contains(name)
                || (gate_wall && *name == "wall_ns");
            if !gated {
                continue;
            }
            let bkey = format!("{}.{}", row.key, name);
            let Some((_, base)) = baseline.iter().find(|(k, _)| *k == bkey) else {
                continue;
            };
            if *base <= 0.0 {
                continue;
            }
            if throughput {
                if *v < base * (1.0 - pct / 100.0) {
                    failures.push(format!(
                        "{bkey}: {v} fell more than {pct}% under baseline {base}"
                    ));
                }
            } else if *v > base * (1.0 + pct / 100.0) {
                failures.push(format!(
                    "{bkey}: {v} regressed more than {pct}% over baseline {base}"
                ));
            }
        }
    }
    failures
}

// ---------------------------------------------------------------------------
// Output

fn write_json(
    path: &std::path::Path,
    quick: bool,
    goldens: &[Golden],
    drift: &[String],
    rows: &[PerfRow],
    baseline: &[(String, f64)],
) {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("suite", "perfsuite");
    w.key("quick").bool(quick);
    w.key("determinism").begin_object();
    w.field_u64("checked", goldens.len() as u64);
    w.field_u64("drift", drift.len() as u64);
    w.key("hashes").begin_object();
    for g in goldens {
        w.key(&g.key).begin_object();
        w.field_hex("schedule_hash", g.schedule);
        w.field_hex("retired_hash", g.retired);
        w.end_object();
    }
    w.end_object();
    w.end_object();
    w.key("perf").begin_object();
    for row in rows {
        w.key(&row.key).begin_object();
        for (name, v) in &row.metrics {
            w.key(name).f64(*v);
        }
        for (name, v) in &row.metrics {
            let bkey = format!("{}.{}", row.key, name);
            if let Some((_, base)) = baseline.iter().find(|(k, _)| *k == bkey) {
                if *base > 0.0 {
                    w.key(&format!("{name}_vs_baseline")).f64(v / base);
                }
            }
        }
        w.end_object();
    }
    w.end_object();
    w.end_object();
    std::fs::write(path, w.finish()).expect("write BENCH_perf.json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let bless = args.iter().any(|a| a == "--bless");
    let bless_baseline = bless || args.iter().any(|a| a == "--bless-baseline");
    let gate: Option<f64> = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--gate <pct>"));
    let gate_wall = args.iter().any(|a| a == "--gate-wall");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_perf.json")
        });

    println!(
        "perfsuite ({}{})",
        if quick { "quick" } else { "full" },
        if bless { ", blessing goldens" } else { "" }
    );

    println!("\n== determinism goldens (fixed parameters) ==");
    let mut goldens = Vec::new();
    determinism(&mut goldens);

    let dir = goldens_dir();
    let golden_path = dir.join("determinism.txt");
    let mut drift: Vec<String> = Vec::new();
    if bless {
        std::fs::create_dir_all(&dir).expect("create goldens dir");
        std::fs::write(&golden_path, render_goldens(&goldens)).expect("write goldens");
        println!("blessed {} hashes -> {}", goldens.len(), golden_path.display());
    } else {
        match std::fs::read_to_string(&golden_path) {
            Ok(text) => {
                let committed = parse_goldens(&text);
                for g in &goldens {
                    match committed.iter().find(|c| c.key == g.key) {
                        None => drift.push(format!("{}: no committed golden", g.key)),
                        Some(c) if c != g => drift.push(format!(
                            "{}: schedule {:#x} vs golden {:#x}, retired {:#x} vs golden {:#x}",
                            g.key, g.schedule, c.schedule, g.retired, c.retired
                        )),
                        Some(_) => {}
                    }
                }
                if drift.is_empty() {
                    println!("all {} determinism hashes match the goldens", goldens.len());
                }
            }
            Err(_) => {
                println!(
                    "no goldens at {} — run with --bless to record them",
                    golden_path.display()
                );
            }
        }
    }
    for d in &drift {
        eprintln!("DETERMINISM DRIFT: {d}");
    }

    println!("\n== perf ==");
    let rows = perf(quick);

    // Quick mode shrinks the workloads, so its counts live in their own
    // baseline file — gating quick runs against the full baseline would
    // always trip.
    let baseline_path = dir.join(if quick {
        "baseline_perf_quick.txt"
    } else {
        "baseline_perf.txt"
    });
    let baseline = if bless_baseline {
        std::fs::write(&baseline_path, render_baseline(&rows)).expect("write baseline");
        println!("blessed baseline -> {}", baseline_path.display());
        Vec::new()
    } else {
        std::fs::read_to_string(&baseline_path)
            .map(|t| parse_baseline(&t))
            .unwrap_or_default()
    };

    let mut table = Vec::new();
    for row in &rows {
        let get = |n: &str| row.metrics.iter().find(|(m, _)| *m == n).map(|(_, v)| *v);
        let gps = get("grants_per_sec");
        let speedup = gps.and_then(|v| {
            baseline
                .iter()
                .find(|(k, _)| *k == format!("{}.grants_per_sec", row.key))
                .filter(|(_, b)| *b > 0.0)
                .map(|(_, b)| v / b)
        });
        table.push(vec![
            row.key.clone(),
            format!("{:.2}", get("wall_ns").unwrap_or(0.0) / 1e6),
            gps.map_or("-".into(), |v| format!("{v:.0}")),
            get("fast_path_share").map_or("-".into(), |v| format!("{:.1}%", v * 100.0)),
            speedup.map_or("-".into(), |s| format!("{s:.2}x")),
        ]);
    }
    print_table(
        "perfsuite",
        &["path", "wall (ms)", "grants/s", "fast-path", "vs baseline"],
        &table,
    );

    write_json(&out, quick, &goldens, &drift, &rows, &baseline);
    println!("\nwrote {}", out.display());

    if !drift.is_empty() {
        eprintln!("{} determinism hash(es) drifted from the goldens", drift.len());
        std::process::exit(1);
    }

    if let Some(pct) = gate {
        if baseline.is_empty() {
            println!(
                "--gate {pct}: no baseline at {} — bless one first (--bless-baseline)",
                baseline_path.display()
            );
        } else {
            let failures = gate_failures(&rows, &baseline, pct, gate_wall);
            for f in &failures {
                eprintln!("PERF GATE: {f}");
            }
            if !failures.is_empty() {
                eprintln!("{} metric(s) regressed past the {pct}% gate", failures.len());
                std::process::exit(2);
            }
            println!("perf gate ({pct}%): all gated metrics within bounds");
        }
    }
}
