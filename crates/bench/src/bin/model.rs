//! Prints the closed-form analysis of §2.3–§2.4: checkpoint and restart
//! penalties and the exception-tolerance bounds of the three schemes, across
//! context counts — the analytic counterpart of Figure 11(c).

use gprs_bench::print_table;
use gprs_core::model::{CostParams, Scheme};

fn main() {
    let base = CostParams::paper_default();
    println!("Analytic model (§2.3–§2.4)");
    println!(
        "params: t = {:.3}s, t_c = {:.4}s, t_s = {:.4}s, t_g = {:.5}s, t_w = {:.3}s, n_c = {}",
        base.interval, base.coord_time, base.record_time, base.order_delay, base.restore_wait,
        base.communicating
    );

    let mut rows = Vec::new();
    for n in [1u32, 2, 4, 8, 12, 16, 20, 24] {
        let p = base.with_contexts(n);
        rows.push(vec![
            format!("{n}"),
            format!("{:.2}", p.checkpoint_penalty(Scheme::CprSoftware)),
            format!("{:.2}", p.checkpoint_penalty(Scheme::CprHardware)),
            format!(
                "{:.2}",
                p.checkpoint_penalty(Scheme::Gprs) + p.ordering_penalty()
            ),
            format!("{:.2}", p.max_exception_rate(Scheme::CprSoftware)),
            format!("{:.2}", p.max_exception_rate(Scheme::CprHardware)),
            format!("{:.2}", p.max_exception_rate(Scheme::Gprs)),
        ]);
    }
    print_table(
        "penalties (context-seconds lost per second) and tolerance bounds (exceptions/s)",
        &[
            "n",
            "Pc CPR",
            "Pc HW",
            "Pc+Pg GPRS",
            "e* CPR",
            "e* HW",
            "e* GPRS",
        ],
        &rows,
    );

    println!("\nPredicted slowdowns at e = 1/s (n = 24):");
    let p = base.with_contexts(24);
    for scheme in [Scheme::CprSoftware, Scheme::CprHardware, Scheme::Gprs] {
        println!(
            "  {scheme}: {:.3}x (tips at {:.2}/s)",
            p.predicted_slowdown(scheme, 1.0),
            p.max_exception_rate(scheme)
        );
    }
    println!(
        "\nGPRS tolerance advantage over software CPR: {:.0}x (= n, §2.4)",
        p.gprs_tolerance_factor()
    );
}
