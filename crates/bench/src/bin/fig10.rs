//! Regenerates Figure 10: recovery under low and high exception rates.
//! P-CPR completes at the low rates but fails (DNC) at the high rates;
//! GPRS completes at both thanks to selective restart.

use gprs_bench::{
    injector, layered_costs, paper_workload, parse_scale, print_table, pthreads_baseline,
    CostLayer, TelemetryArtifact, CONTEXTS,
};
use gprs_sim::costs::secs_to_cycles;
use gprs_sim::free::{run_free, FreeRunConfig};
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_workloads::traces::PROGRAMS;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!("Figure 10 (scale {scale}, {CONTEXTS} contexts)");
    println!("Rates (low/high, exceptions per second) follow §4.\n");

    let mut rows = Vec::new();
    let mut artifact = TelemetryArtifact::new("fig10");
    for prog in &PROGRAMS {
        // GPRS exploits the fine-grained configuration where §4 does; the
        // CPR baseline runs the coarse program (fine-grained Pthreads-style
        // execution is itself a loss, Figure 9).
        let w_gprs = paper_workload(prog.name, scale, prog.fine_in_fig10);
        let w_cpr = paper_workload(prog.name, scale, false);
        let base = pthreads_baseline(&w_cpr);
        let cap = base.finish_cycles.saturating_mul(12).max(secs_to_cycles(5.0));
        // Rates and checkpoint intervals are per wall-clock second and stay
        // unscaled; `--scale` shrinks only the input. (At very small scales
        // runs become shorter than the rates' inter-arrival times and the
        // figure degenerates; use scale ≥ 0.2.)
        let interval = prog.cpr_interval_secs;

        let mut cells = vec![prog.name.to_string()];
        for rate in [prog.fig10_low_rate, prog.fig10_high_rate] {
            // The paper averages ten runs; a DNC in any makes the pair DNC.
            let mut cpr_rels = Vec::new();
            let mut gprs_rels = Vec::new();
            let mut cpr_dnc = false;
            let mut gprs_dnc = false;
            for seed_ix in 0..3u64 {
                let seed = 0xF160 + seed_ix * 7919 + rate.to_bits() % 1000;
                let mut ccfg = FreeRunConfig::cpr(CONTEXTS, secs_to_cycles(interval))
                    .with_exceptions(injector(rate, CONTEXTS, seed))
                    .with_time_cap(cap);
                ccfg.costs.cpr_record = secs_to_cycles(prog.cpr_record_ms / 1e3);
                ccfg.costs.cpr_restore = secs_to_cycles(prog.cpr_restore_ms / 1e3);
                let cpr = run_free(&w_cpr, &ccfg);
                if seed_ix == 0 {
                    artifact.push(format!("{}/P-CPR@{rate}", prog.name), &cpr);
                }
                match cpr.relative_to(&base) {
                    Some(r) => cpr_rels.push(r),
                    None => cpr_dnc = true,
                }
                let mut gcfg = GprsSimConfig::balance_aware(CONTEXTS)
                    .with_exceptions(injector(rate, CONTEXTS, seed))
                    .with_time_cap(cap);
                gcfg.costs = layered_costs(CostLayer::Full);
                let gprs = run_gprs(&w_gprs, &gcfg);
                if seed_ix == 0 {
                    artifact.push(format!("{}/GPRS@{rate}", prog.name), &gprs);
                }
                match gprs.relative_to(&base) {
                    Some(r) => gprs_rels.push(r),
                    None => gprs_dnc = true,
                }
            }
            let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
            cells.push(if cpr_dnc { "DNC".into() } else { format!("{:.2}", mean(&cpr_rels)) });
            cells.push(if gprs_dnc { "DNC".into() } else { format!("{:.2}", mean(&gprs_rels)) });
        }
        cells.push(format!(
            "{}/{}",
            prog.fig10_low_rate, prog.fig10_high_rate
        ));
        rows.push(cells);
        eprintln!("  {} done", prog.name);
    }
    print_table(
        "Figure 10: execution time relative to Pthreads under exceptions",
        &["program", "P-CPR-L", "GPRS-L", "P-CPR-H", "GPRS-H", "rates"],
        &rows,
    );
    println!("\nPaper: all P-CPR-H cells are DNC; GPRS completes everywhere,");
    println!("≈55% cheaper than P-CPR at the low rates.");
    // First-seed runs only: the telemetry artifact records one exemplar per
    // (program, scheme, rate) cell, not the full averaging population.
    artifact.write();
}
