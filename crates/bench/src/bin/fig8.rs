//! Regenerates Figure 8: GPRS mechanism overheads relative to the Pthreads
//! baseline, decomposed into ordering (round-robin vs balance-aware), ROL
//! management and checkpointing, next to coordinated CPR's checkpointing
//! penalty.
//!
//! `fig8 a` uses the default (coarse) computation sizes; `fig8 b` the
//! fine-grained configuration of `§4`. Legend matches the paper:
//! `G-R-OR` = GPRS, round-robin, ordering only; `G-B-OR` = balance-aware
//! ordering; `G-B-ROL` = + ROL management; `P-/-CH` = Pthreads + CPR
//! checkpointing; `G-B-CH` = full GPRS.

use gprs_bench::{
    cpr_run, gprs_run, harmonic_mean, paper_workload, parse_scale, print_table,
    pthreads_baseline, CostLayer, TelemetryArtifact,
};
use gprs_core::order::ScheduleKind;
use gprs_workloads::traces::PROGRAMS;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let fine = args.iter().any(|a| a == "b");
    let label = if fine { "8(b) fine-grained" } else { "8(a) default sizes" };
    println!("Figure {label} (scale {scale})");

    let mut rows = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let mut artifact = TelemetryArtifact::new(if fine { "fig8b" } else { "fig8a" });
    for prog in &PROGRAMS {
        // Fine-grain only changes the four data-parallel programs (§4).
        let use_fine = fine && prog.fine_in_fig10;
        let w = paper_workload(prog.name, scale, use_fine);
        let base = pthreads_baseline(&paper_workload(prog.name, scale, false));
        let cap = base.finish_cycles.saturating_mul(40);

        let g_r_or = gprs_run(&w, ScheduleKind::RoundRobin, CostLayer::OrderingOnly, cap);
        let g_b_or = gprs_run(&w, ScheduleKind::BalanceBasic, CostLayer::OrderingOnly, cap);
        let g_b_rol = gprs_run(&w, ScheduleKind::BalanceBasic, CostLayer::OrderingRol, cap);
        let p_ch = cpr_run(
            &w,
            prog.cpr_interval_secs * scale.max(0.02),
            prog.cpr_record_ms,
            prog.cpr_restore_ms,
            cap,
        );
        let g_b_ch = gprs_run(&w, ScheduleKind::BalanceBasic, CostLayer::Full, cap);

        artifact.push(format!("{}/Pthreads", prog.name), &base);
        artifact.push(format!("{}/P-CPR-CH", prog.name), &p_ch);
        artifact.push(format!("{}/G-B-CH", prog.name), &g_b_ch);

        let cells: Vec<String> = [&g_r_or, &g_b_or, &g_b_rol, &p_ch, &g_b_ch]
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if let Some(rel) = r.relative_to(&base) {
                    cols[i].push(rel);
                    format!("{rel:.2}")
                } else {
                    "DNC".to_string()
                }
            })
            .collect();
        let mut row = vec![prog.name.to_string()];
        row.extend(cells);
        rows.push(row);
    }
    let mut hm_row = vec!["HM".to_string()];
    for col in &cols {
        hm_row.push(match harmonic_mean(col) {
            Some(h) => format!("{h:.2}"),
            None => "-".into(),
        });
    }
    rows.push(hm_row);
    print_table(
        &format!("Figure {label}: execution time relative to Pthreads"),
        &["program", "G-R-OR", "G-B-OR", "G-B-ROL", "P-/-CH", "G-B-CH"],
        &rows,
    );
    println!("\nPaper HM targets (8a): G-R-OR 1.14, G-B-OR 1.06, G-B-ROL 1.15, P-/-CH 1.21, G-B-CH 1.16");
    artifact.write();
}
