//! Regenerates Figure 11: exception tolerance of P-CPR vs GPRS on Pbzip2
//! from 1 to 24 contexts.
//!
//! * `fig11 a` — P-CPR execution time vs exception rate per context count.
//! * `fig11 b` — same for GPRS.
//! * `fig11 c` — the tipping-rate table: P-CPR flat (~1.5/s), GPRS scaling
//!   with the context count (paper: 1.92 → 31.25 exceptions/s).

use gprs_bench::{injector, parse_scale, print_table, TelemetryArtifact};
use gprs_sim::costs::secs_to_cycles;
use gprs_sim::free::{run_free, FreeRunConfig};
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_sim::tipping::{find_tipping_rate, TippingScheme};
use gprs_sim::workload::Workload;
use gprs_workloads::traces::{pbzip2_with, TraceParams};

const CONTEXT_COUNTS: [u32; 8] = [1, 2, 4, 8, 12, 16, 20, 24];

fn pbzip2(scale: f64, contexts: u32) -> Workload {
    let p = TraceParams::paper().scaled(scale).with_contexts(contexts);
    pbzip2_with(&p, contexts.saturating_sub(2).max(1) as usize)
}

fn run_one(w: &Workload, contexts: u32, rate: f64, cap: u64, gprs: bool) -> Option<f64> {
    let inj = injector(rate, contexts, 0xF11 + contexts as u64);
    let r = if gprs {
        run_gprs(
            w,
            &GprsSimConfig::balance_aware(contexts)
                .with_exceptions(inj)
                .with_time_cap(cap),
        )
    } else {
        run_free(
            w,
            &FreeRunConfig::cpr(contexts, secs_to_cycles(1.0))
                .with_exceptions(inj)
                .with_time_cap(cap),
        )
    };
    r.completed.then(|| r.finish_secs())
}

fn sweep(scale: f64, gprs: bool, rates: &[f64]) {
    let which = if gprs { "GPRS" } else { "P-CPR" };
    let mut rows = Vec::new();
    // The artifact records the fault-free run per context count — the
    // reference point every sweep cell is judged against.
    let mut artifact = TelemetryArtifact::new(if gprs { "fig11b" } else { "fig11a" });
    for &n in &CONTEXT_COUNTS {
        let w = pbzip2(scale, n);
        let free = if gprs {
            run_gprs(&w, &GprsSimConfig::balance_aware(n))
        } else {
            run_free(&w, &FreeRunConfig::cpr(n, secs_to_cycles(1.0)))
        };
        artifact.push(format!("{which}/ctx{n}/fault-free"), &free);
        let cap = free.finish_cycles.saturating_mul(20);
        let mut row = vec![format!("{n}")];
        for &rate in rates {
            row.push(match run_one(&w, n, rate, cap, gprs) {
                Some(secs) => format!("{secs:.1}"),
                None => "DNC".into(),
            });
        }
        rows.push(row);
        eprintln!("  contexts {n} done");
    }
    let mut header = vec!["ctx".to_string()];
    header.extend(rates.iter().map(|r| format!("{r}/s")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        &format!("Figure 11({}) — {which} on Pbzip2: exec time (s) vs exception rate",
                 if gprs { "b" } else { "a" }),
        &header_refs,
        &rows,
    );
    artifact.write();
}

fn tipping(scale: f64) {
    let mut rows = Vec::new();
    let mut artifact = TelemetryArtifact::new("fig11c");
    for &n in &CONTEXT_COUNTS {
        let w = pbzip2(scale, n);
        // "Did not complete in reasonable time" is judged against each
        // scheme's own fault-free time (the Pthreads oversubscription model
        // overestimates unbalanced small-n runs).
        let cpr_free = run_free(&w, &FreeRunConfig::cpr(n, secs_to_cycles(1.0)));
        let gprs_free = run_gprs(&w, &GprsSimConfig::balance_aware(n));
        artifact.push(format!("P-CPR/ctx{n}/fault-free"), &cpr_free);
        artifact.push(format!("GPRS/ctx{n}/fault-free"), &gprs_free);
        let cpr_cap = cpr_free.finish_cycles.saturating_mul(20);
        let gprs_cap = gprs_free.finish_cycles.saturating_mul(20);
        let cpr = find_tipping_rate(
            &w,
            &TippingScheme::Cpr(
                FreeRunConfig::cpr(n, secs_to_cycles(1.0)).with_time_cap(cpr_cap),
            ),
            0.5,
            0.1,
            0xF11C,
        );
        let gprs = find_tipping_rate(
            &w,
            &TippingScheme::Gprs(GprsSimConfig::balance_aware(n).with_time_cap(gprs_cap)),
            0.5,
            0.1,
            0xF11C,
        );
        rows.push(vec![
            format!("{n}"),
            format!("{:.2}", cpr.estimate()),
            format!("{:.2}", gprs.estimate()),
        ]);
        eprintln!("  contexts {n}: CPR {:.2}/s GPRS {:.2}/s", cpr.estimate(), gprs.estimate());
    }
    print_table(
        "Figure 11(c) — tipping rates (exceptions/s) on Pbzip2",
        &["ctx", "P-CPR", "GPRS"],
        &rows,
    );
    println!("\nPaper: P-CPR 1.17–1.76 (flat); GPRS 1.92 → 31.25 (scales with contexts)");
    artifact.write();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let which = args
        .iter()
        .find(|a| ["a", "b", "c"].contains(&a.as_str()))
        .map(|s| s.as_str())
        .unwrap_or("c");
    println!("Figure 11{which} (scale {scale})");
    match which {
        "a" => sweep(scale, false, &[0.5, 1.0, 1.2, 1.4, 1.6, 2.0, 3.0]),
        "b" => sweep(scale, true, &[1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0]),
        _ => tipping(scale),
    }
}
