//! Regenerates Figure 9: fine-grained Pthreads degrades (Barnes-Hut ≈ +20 %,
//! Blackscholes DNC from massive oversubscription) while fine-grained GPRS
//! improves on the baseline thanks to its load-balancing sub-thread
//! scheduler (paper: HM ≈ 0.73).

use gprs_bench::{
    gprs_run, harmonic_mean, paper_workload, parse_scale, print_table, pthreads_baseline,
    rel_cell, CostLayer, TelemetryArtifact, CONTEXTS,
};
use gprs_core::order::ScheduleKind;
use gprs_sim::free::{run_free, FreeRunConfig};

const PROGRAMS: [&str; 4] = ["barnes-hut", "blackscholes", "canneal", "swaptions"];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!("Figure 9 (scale {scale}, {CONTEXTS} contexts)");

    let mut rows = Vec::new();
    let mut pt_col = Vec::new();
    let mut g_col = Vec::new();
    let mut artifact = TelemetryArtifact::new("fig9");
    for name in PROGRAMS {
        let coarse = paper_workload(name, scale, false);
        let fine = paper_workload(name, scale, true);
        let base = pthreads_baseline(&coarse);
        let cap = base.finish_cycles.saturating_mul(10);
        let pt_fine = run_free(
            &fine,
            &FreeRunConfig::pthreads(CONTEXTS).with_time_cap(cap),
        );
        let g_fine = gprs_run(&fine, ScheduleKind::BalanceBasic, CostLayer::Full, cap);
        artifact.push(format!("{name}/Pthreads-fine"), &pt_fine);
        artifact.push(format!("{name}/GPRS-fine"), &g_fine);
        if let Some(r) = pt_fine.relative_to(&base) {
            pt_col.push(r);
        }
        if let Some(r) = g_fine.relative_to(&base) {
            g_col.push(r);
        }
        rows.push(vec![
            name.to_string(),
            rel_cell(&pt_fine, &base),
            rel_cell(&g_fine, &base),
        ]);
    }
    rows.push(vec![
        "HM".to_string(),
        harmonic_mean(&pt_col)
            .map(|h| format!("{h:.2} (completers)"))
            .unwrap_or_else(|| "-".into()),
        harmonic_mean(&g_col)
            .map(|h| format!("{h:.2}"))
            .unwrap_or_else(|| "-".into()),
    ]);
    print_table(
        "Figure 9: fine-grained execution relative to coarse Pthreads",
        &["program", "Pthreads-fine", "GPRS-fine"],
        &rows,
    );
    println!("\nPaper: Barnes-Hut Pthreads-fine ≈ 1.20, Blackscholes DNC; GPRS-fine HM ≈ 0.73");
    artifact.write();
}
