//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each `src/bin/` binary reproduces one artifact of `§4`:
//!
//! | binary | artifact |
//! |---|---|
//! | `table2` | Table 2 — program characteristics |
//! | `fig8 a` / `fig8 b` | Figure 8 — GPRS overheads, coarse / fine grain |
//! | `fig9` | Figure 9 — fine-grained Pthreads vs GPRS |
//! | `fig10` | Figure 10 — recovery at low/high exception rates |
//! | `fig11 a` / `b` / `c` | Figure 11 — exception tolerance & tipping rates |
//! | `model` | §2.3–§2.4 closed-form penalties and bounds |
//!
//! Binaries accept `--scale <f>` to shrink inputs (default 1.0 = the
//! paper's "large inputs") and print aligned text tables; `EXPERIMENTS.md`
//! records a full-scale run next to the paper's numbers.

use gprs_core::exception::InjectorConfig;
use gprs_sim::costs::{secs_to_cycles, MechCosts, CYCLES_PER_SEC};
use gprs_sim::free::{run_free, FreeRunConfig};
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_sim::result::SimResult;
use gprs_sim::workload::Workload;
use gprs_workloads::traces::{build, TraceParams};

/// The paper's context count.
pub const CONTEXTS: u32 = 24;

/// Parses a `--scale <f>` argument (default 1.0).
pub fn parse_scale(args: &[String]) -> f64 {
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Builds the named program at the paper's configuration.
pub fn paper_workload(name: &str, scale: f64, fine: bool) -> Workload {
    let mut p = TraceParams::paper().scaled(scale);
    if fine {
        p = p.fine();
    }
    build(name, &p)
}

/// The Pthreads baseline time for a workload (coarse grain).
pub fn pthreads_baseline(w: &Workload) -> SimResult {
    run_free(w, &FreeRunConfig::pthreads(CONTEXTS))
}

/// Mechanism-cost variants used to decompose overheads (the cumulative bars
/// of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostLayer {
    /// Ordering only: no ROL management, no checkpoint recording.
    OrderingOnly,
    /// Ordering + ROL management.
    OrderingRol,
    /// Everything (ordering + ROL + checkpoint recording).
    Full,
}

/// Mechanism costs with the chosen layers enabled.
pub fn layered_costs(layer: CostLayer) -> MechCosts {
    let mut c = MechCosts::paper_default();
    match layer {
        CostLayer::OrderingOnly => {
            c.rol_manage = 0;
            c.ckpt_base = 0;
            c.ckpt_per_byte = 0.0;
        }
        CostLayer::OrderingRol => {
            c.ckpt_base = 0;
            c.ckpt_per_byte = 0.0;
        }
        CostLayer::Full => {}
    }
    c
}

/// Runs GPRS on a workload with the given schedule and cost layer.
pub fn gprs_run(
    w: &Workload,
    schedule: gprs_core::order::ScheduleKind,
    layer: CostLayer,
    cap_cycles: u64,
) -> SimResult {
    let mut cfg = GprsSimConfig {
        schedule,
        ..GprsSimConfig::balance_aware(CONTEXTS)
    };
    cfg.costs = layered_costs(layer);
    cfg = cfg.with_time_cap(cap_cycles);
    run_gprs(w, &cfg)
}

/// Runs the coordinated-CPR baseline with the program's checkpoint
/// interval, per-checkpoint record cost and rollback restore cost.
pub fn cpr_run(
    w: &Workload,
    interval_secs: f64,
    record_ms: f64,
    restore_ms: f64,
    cap_cycles: u64,
) -> SimResult {
    let mut cfg =
        FreeRunConfig::cpr(CONTEXTS, secs_to_cycles(interval_secs)).with_time_cap(cap_cycles);
    cfg.costs.cpr_record = secs_to_cycles(record_ms / 1e3);
    cfg.costs.cpr_restore = secs_to_cycles(restore_ms / 1e3);
    run_free(w, &cfg)
}

/// Seeded exception-injection configuration at `rate` exceptions/s.
pub fn injector(rate: f64, contexts: u32, seed: u64) -> InjectorConfig {
    InjectorConfig::paper(rate, contexts, CYCLES_PER_SEC).with_seed(seed)
}

/// Formats a relative-time cell: `x.xx` or `DNC`.
pub fn rel_cell(run: &SimResult, baseline: &SimResult) -> String {
    match run.relative_to(baseline) {
        Some(r) => format!("{r:.2}"),
        None => "DNC".to_string(),
    }
}

/// Prints an aligned table: header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header.iter().map(|s| s.to_string()).collect()));
    for row in rows {
        println!("{}", fmt_row(row.clone()));
    }
}

/// Harmonic mean helper re-export.
pub use gprs_sim::result::harmonic_mean;

/// Collects labeled per-run telemetry summaries and writes them next to a
/// figure/table's text output as `artifacts/<name>.telemetry.json`.
///
/// Event traces are dropped from the export ([`TelemetrySummary::
/// without_events`]) — the determinism hashes, counters and histograms are
/// the artifact; full traces stay available programmatically on each
/// [`SimResult`].
#[derive(Debug)]
pub struct TelemetryArtifact {
    name: String,
    runs: Vec<(String, gprs_telemetry::TelemetrySummary)>,
}

impl TelemetryArtifact {
    /// A fresh collector for the artifact `name` (e.g. `"fig8a"`).
    pub fn new(name: impl Into<String>) -> Self {
        TelemetryArtifact {
            name: name.into(),
            runs: Vec::new(),
        }
    }

    /// Adds one labeled run.
    pub fn push(&mut self, label: impl Into<String>, result: &SimResult) {
        self.runs
            .push((label.into(), result.telemetry.without_events()));
    }

    /// Serializes the collected runs as one JSON document.
    pub fn to_json(&self) -> String {
        let mut w = gprs_telemetry::JsonWriter::new();
        w.begin_object()
            .field_str("artifact", &self.name)
            .key("runs")
            .begin_array();
        for (label, summary) in &self.runs {
            w.begin_object().field_str("label", label).key("telemetry");
            summary.write_json(&mut w);
            w.end_object();
        }
        w.end_array().end_object();
        w.finish()
    }

    /// Writes `artifacts/<name>.telemetry.json` (creating the directory if
    /// needed) and prints the path. Errors are reported, not fatal — the
    /// text table remains the primary output.
    pub fn write(&self) {
        let dir = std::path::Path::new("artifacts");
        let path = dir.join(format!("{}.telemetry.json", self.name));
        let res = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, self.to_json()));
        match res {
            Ok(()) => println!("telemetry: {}", path.display()),
            Err(e) => eprintln!("telemetry: failed to write {}: {e}", path.display()),
        }
    }
}

/// Runs the static analyzer over the named program at `scale`.
pub fn analysis_report(name: &str, scale: f64) -> gprs_analyze::AnalysisReport {
    gprs_analyze::analyze(&build(name, &TraceParams::paper().scaled(scale)))
}

/// Writes one `artifacts/<kind>.<program>.json` document, creating the
/// directory if needed, and returns the path written.
fn write_artifact(
    kind: &str,
    program: &str,
    body: &str,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("artifacts");
    let path = dir.join(format!("{kind}.{program}.json"));
    std::fs::create_dir_all(dir)?;
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Writes `artifacts/analysis.<program>.json` and reports the outcome on
/// the given stream — the static-analysis companion to
/// [`TelemetryArtifact::write`]. Errors are reported, not fatal.
pub fn write_analysis_artifact(
    program: &str,
    report: &gprs_analyze::AnalysisReport,
    out: &mut dyn std::io::Write,
) {
    match write_artifact("analysis", program, &report.to_json()) {
        Ok(path) => {
            let _ = writeln!(out, "analysis: {}", path.display());
        }
        Err(e) => eprintln!("analysis: failed to write analysis.{program}.json: {e}"),
    }
}

/// Writes `artifacts/shardplan.<program>.json` — just the interference
/// partition from the report, the static contract a sharded order gate
/// would consume. Errors are reported, not fatal.
pub fn write_shardplan_artifact(
    program: &str,
    report: &gprs_analyze::AnalysisReport,
    out: &mut dyn std::io::Write,
) {
    match write_artifact("shardplan", program, &report.shard_plan.to_json()) {
        Ok(path) => {
            let _ = writeln!(out, "shardplan: {}", path.display());
        }
        Err(e) => eprintln!("shardplan: failed to write shardplan.{program}.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        let args: Vec<String> = ["x", "--scale", "0.25"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_scale(&args), 0.25);
        assert_eq!(parse_scale(&[]), 1.0);
    }

    #[test]
    fn layered_costs_are_cumulative() {
        let or = layered_costs(CostLayer::OrderingOnly);
        let rol = layered_costs(CostLayer::OrderingRol);
        let full = layered_costs(CostLayer::Full);
        assert_eq!(or.rol_manage, 0);
        assert!(rol.rol_manage > 0);
        assert_eq!(rol.ckpt_base, 0);
        assert!(full.ckpt_base > 0);
    }

    #[test]
    fn rel_cell_formats() {
        let mut a = SimResult::new("x", "s");
        let mut b = SimResult::new("x", "s");
        b.completed = true;
        b.finish_cycles = 100;
        assert_eq!(rel_cell(&a, &b), "DNC");
        a.completed = true;
        a.finish_cycles = 150;
        assert_eq!(rel_cell(&a, &b), "1.50");
    }
}
