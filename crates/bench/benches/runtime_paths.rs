//! Criterion benches of the *real* threaded runtime's hot paths: grant +
//! step turnaround, checkpointing, channel pipelines, and the recovery
//! path, compared with the CPR baseline executor on identical programs.

use criterion::{criterion_group, criterion_main, Criterion};
use gprs_runtime::cpr::CprBuilder;
use gprs_runtime::ctx::StepCtx;
use gprs_runtime::prelude::*;

struct Chain {
    atomic: AtomicHandle,
    rounds: u32,
    done: u32,
}
impl Checkpoint for Chain {
    type Snapshot = u32;
    fn checkpoint(&self) -> u32 {
        self.done
    }
    fn restore(&mut self, s: &u32) {
        self.done = *s;
    }
}
impl ThreadProgram for Chain {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        if self.done == self.rounds {
            return Step::exit_unit();
        }
        self.done += 1;
        self.atomic.fetch_add(1)
    }
}

fn gprs_chain(workers: usize, threads: u32, rounds: u32) -> RunStats {
    let mut b = GprsBuilder::new().workers(workers);
    let a = b.atomic(0);
    for _ in 0..threads {
        b.thread(Chain { atomic: a, rounds, done: 0 }, GroupId::new(0), 1);
    }
    b.build().run().unwrap().stats
}

fn cpr_chain(workers: usize, threads: u32, rounds: u32) -> u64 {
    let mut b = CprBuilder::new().workers(workers).checkpoint_every(32);
    let a = b.atomic(0);
    for _ in 0..threads {
        b.thread(Chain { atomic: a, rounds, done: 0 }, GroupId::new(0), 1);
    }
    b.build().run().unwrap().stats.grants
}

fn bench_grant_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_grants");
    g.bench_function("gprs_2w_4t_64r", |b| {
        b.iter(|| gprs_chain(2, 4, 64).subthreads)
    });
    g.bench_function("cpr_2w_4t_64r", |b| b.iter(|| cpr_chain(2, 4, 64)));
    g.finish();
}

fn bench_recovery_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_recovery");
    g.bench_function("inject_and_recover", |b| {
        b.iter(|| {
            let mut builder = GprsBuilder::new().workers(2);
            let a = builder.atomic(0);
            for _ in 0..2 {
                builder.thread(Chain { atomic: a, rounds: 64, done: 0 }, GroupId::new(0), 1);
            }
            let rt = builder.build();
            let ctl = rt.controller();
            let h = std::thread::spawn(move || {
                for _ in 0..8 {
                    if ctl.is_finished() {
                        break;
                    }
                    ctl.inject_on_busy(ExceptionKind::SoftFault);
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
            });
            let report = rt.run().unwrap();
            h.join().unwrap();
            report.stats.recoveries
        })
    });
    g.finish();
}

/// The grant fast path in isolation and end to end.
///
/// `gate_poll` is the lockless go/no-go check a worker performs before
/// deciding fast vs slow path — one acquire load of the packed word, one of
/// the ticket. `gate_publish` is the enforcer's per-mutation republication
/// (always under the state lock in the runtime). The `fused_*` rows run the
/// disjoint-chain program whose steady state fuses every deposit with the
/// following grant in one lock acquisition (fast-path share is 100 %; the
/// perfsuite asserts that from the counters — these rows track its cost).
fn bench_fast_path(c: &mut Criterion) {
    use gprs_core::ids::{SubThreadId, ThreadId};
    use gprs_core::order::OrderGate;

    let mut g = c.benchmark_group("runtime_fast_path");
    let gate = OrderGate::new();
    gate.publish(Some(ThreadId::new(3)), SubThreadId::new(41));
    g.bench_function("gate_poll", |b| {
        b.iter(|| {
            let snap = gate.snapshot();
            (snap.holder == Some(ThreadId::new(3)), snap.next_ticket)
        })
    });
    g.bench_function("gate_publish", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            gate.publish(Some(ThreadId::new((seq % 8) as u32)), SubThreadId::new(seq));
            gate.epoch()
        })
    });
    // Single worker: every grant is the fused deposit+grant fast path with
    // no peer to wake; the purest end-to-end cost of one ordered step.
    g.bench_function("fused_1w_8t_64r", |b| {
        b.iter(|| gprs_chain(1, 8, 64).subthreads)
    });
    // Full worker fan-out on the same program: same fast-path share, plus
    // whatever the wake policy and hand-off drain add under contention.
    g.bench_function("fused_8w_8t_64r", |b| {
        b.iter(|| gprs_chain(8, 8, 64).subthreads)
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_grant_throughput, bench_recovery_path, bench_fast_path
);
criterion_main!(benches);
