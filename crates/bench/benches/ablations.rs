//! Ablation benches over the simulator: one per design choice called out in
//! DESIGN.md §6 — ordering schedule, sub-thread granularity, recovery
//! scope, lock subsumption, and the WAL-vs-checkpoint choice for runtime
//! state.

use criterion::{criterion_group, criterion_main, Criterion};
use gprs_core::exception::InjectorConfig;
use gprs_core::order::ScheduleKind;
use gprs_sim::costs::CYCLES_PER_SEC;
use gprs_sim::gprs::{run_gprs, GprsSimConfig, RecoveryScope};
use gprs_workloads::traces::{build, pbzip2_with, TraceParams};

fn small() -> TraceParams {
    TraceParams::paper().scaled(0.02)
}

/// Ordering schedule ablation on the Pbzip2 pipeline (Figure 7's contrast).
fn bench_ordering_schedules(c: &mut Criterion) {
    let w = pbzip2_with(&small(), 6);
    let mut g = c.benchmark_group("ablation_ordering");
    for (name, kind) in [
        ("round_robin", ScheduleKind::RoundRobin),
        ("balance_basic", ScheduleKind::BalanceBasic),
        ("balance_weighted", ScheduleKind::BalanceWeighted),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = GprsSimConfig::balance_aware(8);
                cfg.schedule = kind;
                let r = run_gprs(&w, &cfg);
                assert!(r.completed);
                r.finish_cycles
            })
        });
    }
    g.finish();
}

/// Granularity ablation: coarse vs fine Barnes-Hut under GPRS.
fn bench_granularity(c: &mut Criterion) {
    let coarse = build("barnes-hut", &small());
    let fine = build("barnes-hut", &small().fine());
    let mut g = c.benchmark_group("ablation_granularity");
    g.bench_function("coarse", |b| {
        b.iter(|| run_gprs(&coarse, &GprsSimConfig::balance_aware(24)).finish_cycles)
    });
    g.bench_function("fine", |b| {
        b.iter(|| run_gprs(&fine, &GprsSimConfig::balance_aware(24)).finish_cycles)
    });
    g.finish();
}

/// Recovery-scope ablation under a fixed exception schedule.
fn bench_recovery_scope(c: &mut Criterion) {
    let w = pbzip2_with(&small(), 6);
    let inj = InjectorConfig::paper(50.0, 8, CYCLES_PER_SEC).with_seed(77);
    let mut g = c.benchmark_group("ablation_recovery");
    for (name, scope) in [
        ("selective", RecoveryScope::Selective),
        ("basic", RecoveryScope::Basic),
    ] {
        let inj = inj.clone();
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = GprsSimConfig::balance_aware(8)
                    .with_recovery(scope)
                    .with_exceptions(inj.clone());
                let r = run_gprs(&w, &cfg);
                (r.finish_cycles, r.squashed)
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ordering_schedules, bench_granularity, bench_recovery_scope
);
criterion_main!(benches);
