//! Criterion micro-benchmarks of the core GPRS mechanisms on the host:
//! ordering grants, ROL operations, WAL append/undo, history-buffer
//! checkpointing and recovery planning — the real-machine costs behind the
//! simulator's `t_g`/`t_s` parameters.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gprs_core::prelude::*;
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_telemetry::TelemetryConfig;
use gprs_workloads::traces::{build, TraceParams};
use std::collections::BTreeSet;

fn make_rol(n: u64) -> ReorderList {
    let mut rol = ReorderList::new();
    for i in 0..n {
        rol.insert(SubThread::new(
            SubThreadId::new(i),
            ThreadId::new((i % 24) as u32),
            GroupId::new(0),
            SubThreadKind::CriticalSection,
            Some(SyncOp::LockAcquire(LockId::new(i % 8))),
        ))
        .unwrap();
    }
    rol
}

fn bench_ordering(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordering");
    for kind in [ScheduleKind::RoundRobin, ScheduleKind::BalanceBasic, ScheduleKind::BalanceWeighted] {
        g.bench_function(format!("grant_{}", kind.tag()), |b| {
            let mut e = OrderEnforcer::with_schedule(kind);
            for t in 0..24 {
                e.register_thread(ThreadId::new(t), GroupId::new(t % 3), 1 + t % 3)
                    .unwrap();
            }
            b.iter(|| {
                let h = e.holder().unwrap();
                e.try_grant(h).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_rol(c: &mut Criterion) {
    let mut g = c.benchmark_group("rol");
    g.bench_function("insert_complete_retire", |b| {
        b.iter_batched(
            ReorderList::new,
            |mut rol| {
                for i in 0..64u64 {
                    rol.insert(SubThread::new(
                        SubThreadId::new(i),
                        ThreadId::new(0),
                        GroupId::new(0),
                        SubThreadKind::Initial,
                        None,
                    ))
                    .unwrap();
                    rol.mark_completed(SubThreadId::new(i)).unwrap();
                }
                rol.retire_ready().len()
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("affected_set_64_inflight", |b| {
        let mut rol = make_rol(64);
        rol.mark_excepted(
            SubThreadId::new(8),
            Exception::global(ExceptionKind::SoftFault, ContextId::new(0), 0),
        )
        .unwrap();
        b.iter(|| affected_set(&rol, SubThreadId::new(8), DependencePolicy::Transitive).unwrap());
    });
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    g.bench_function("append", |b| {
        let mut wal: WriteAheadLog<u64> = WriteAheadLog::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            wal.append(SubThreadId::new(i % 32), i)
        });
    });
    g.bench_function("undo_walk_1k", |b| {
        b.iter_batched(
            || {
                let mut wal: WriteAheadLog<u64> = WriteAheadLog::new();
                for i in 0..1000u64 {
                    wal.append(SubThreadId::new(i % 32), i);
                }
                let squash: BTreeSet<SubThreadId> =
                    (0..8).map(SubThreadId::new).collect();
                (wal, squash)
            },
            |(mut wal, squash)| wal.take_undo_records(&squash).len(),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint");
    for size in [256usize, 4096, 65536] {
        g.bench_function(format!("history_record_{size}B"), |b| {
            let data = vec![7u8; size];
            b.iter_batched(
                HistoryBuffer::new,
                |mut hb| {
                    let snap = data.clone();
                    hb.record(SubThreadId::new(0), "modset", snap.len(), move || {
                        std::hint::black_box(&snap);
                    });
                    hb.len()
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_recovery_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    for mode in [
        RecoveryMode::Basic,
        RecoveryMode::Selective(DependencePolicy::Transitive),
        RecoveryMode::DiscardAll,
    ] {
        g.bench_function(format!("plan_{mode}"), |b| {
            let mut rol = make_rol(128);
            rol.mark_excepted(
                SubThreadId::new(16),
                Exception::global(ExceptionKind::SoftFault, ContextId::new(0), 0),
            )
            .unwrap();
            b.iter(|| plan_recovery(&rol, SubThreadId::new(16), mode, Precision::SubThread).unwrap());
        });
    }
    g.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    // End-to-end simulator runs with telemetry on vs off: the disabled
    // configuration must cost no more than the noise floor (every
    // instrumentation point reduces to one predictable branch).
    let mut g = c.benchmark_group("telemetry");
    let w = build("pbzip2", &TraceParams::paper().scaled(0.01));
    for (name, tel) in [
        ("enabled", TelemetryConfig::default()),
        ("disabled", TelemetryConfig::disabled()),
    ] {
        let cfg = GprsSimConfig::balance_aware(8).with_telemetry(tel);
        g.bench_function(format!("sim_pbzip2_{name}"), |b| {
            b.iter(|| run_gprs(&w, &cfg).finish_cycles);
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ordering, bench_rol, bench_wal, bench_checkpoint, bench_recovery_planning,
        bench_telemetry
);
criterion_main!(benches);
