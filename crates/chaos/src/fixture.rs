//! Regression fixtures: a minimized failing scenario, committed to
//! `crates/chaos/fixtures/*.plan` and replayed by tests and CI.
//!
//! A fixture is the [`ChaosPlan`] text format plus header comments binding
//! it to an engine and program:
//!
//! ```text
//! # engine: gprs-rt        (gprs-rt | cpr | sim | gprs-rt-cancel)
//! # program: nested
//! # seed: 17               (sim only: the script seed)
//! grant 24 kind=thermal scope=global victim=holder burst=3
//! mid-recovery 1 kind=soft-fault scope=global victim=oldest burst=1
//! ```
//!
//! Because the binding lives in comments, every fixture file also parses
//! as a bare [`ChaosPlan`]. Sim fixtures replay the *seed* (scripts are
//! cycle-keyed and scale-dependent, so the seed is the reproducer).
//! `gprs-rt-cancel` fixtures reuse the seed as the number of 8-grant
//! quanta to run before cancelling (the HALT point).

use crate::campaign::{
    cpr_clean, cpr_injected, gprs_clean, gprs_injected, sim_clean, sim_injected,
};
use crate::oracle::{check_cpr, check_runtime, check_sim, Violation};
use crate::programs::{CPR_PROGRAMS, RUNTIME_PROGRAMS};
use gprs_core::chaos::ChaosPlan;
use gprs_core::recording::Recording;
use std::sync::Arc;

/// A parsed fixture: engine binding + plan (and seed, for sim fixtures).
#[derive(Debug, Clone)]
pub struct Fixture {
    /// `gprs-rt`, `cpr` or `sim`.
    pub engine: String,
    /// Campaign program name.
    pub program: String,
    /// Script seed (sim fixtures).
    pub seed: u64,
    /// The injection plan (real-executor fixtures).
    pub plan: ChaosPlan,
    /// Optional sibling recording file (`# recording:` header, resolved
    /// relative to the fixture's own directory): the exact grant order the
    /// minimized reproducer ran under. When present, replaying the fixture
    /// also replays the pinned schedule — a divergence fails loudly with
    /// the recording's name (`gprs-rt` fixtures only; the other engines
    /// have no schedule recorder).
    pub recording: Option<String>,
}

impl Fixture {
    /// Parses fixture text (see the module docs).
    ///
    /// # Errors
    /// Returns a description of the malformed line or missing header.
    pub fn parse(text: &str) -> Result<Fixture, String> {
        let mut engine = None;
        let mut program = None;
        let mut seed = 0u64;
        let mut recording = None;
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix('#') else {
                continue;
            };
            if let Some((key, val)) = rest.split_once(':') {
                match key.trim() {
                    "engine" => engine = Some(val.trim().to_string()),
                    "program" => program = Some(val.trim().to_string()),
                    "seed" => {
                        seed = val
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad fixture seed {:?}", val.trim()))?
                    }
                    "recording" => recording = Some(val.trim().to_string()),
                    _ => {}
                }
            }
        }
        Ok(Fixture {
            engine: engine.ok_or("fixture missing `# engine:` header")?,
            program: program.ok_or("fixture missing `# program:` header")?,
            seed,
            plan: ChaosPlan::parse(text)?,
            recording,
        })
    }

    /// Serializes the fixture (headers + plan text).
    pub fn to_text(&self) -> String {
        let rec = match &self.recording {
            Some(name) => format!("# recording: {name}\n"),
            None => String::new(),
        };
        format!(
            "# engine: {}\n# program: {}\n# seed: {}\n{rec}{}",
            self.engine,
            self.program,
            self.seed,
            self.plan.to_text()
        )
    }
}

/// Replays a fixture against its bound engine and returns the oracle's
/// verdict (empty == the regression stays fixed).
///
/// # Errors
/// Returns a description for an unknown engine binding, or for a *stale*
/// fixture whose program no longer exists in that engine's registry —
/// loudly, instead of panicking deep inside the program builders.
pub fn replay_fixture(fx: &Fixture) -> Result<Vec<Violation>, String> {
    let leg = format!("fixture/{}/{}", fx.engine, fx.program);
    match fx.engine.as_str() {
        "gprs-rt" => {
            if !RUNTIME_PROGRAMS.contains(&fx.program.as_str()) {
                return Err(stale(&fx.engine, &fx.program));
            }
            let clean = gprs_clean(&fx.program);
            Ok(match gprs_injected(&fx.program, &fx.plan) {
                Ok(report) => check_runtime(&leg, fx.seed, &fx.plan, &clean, &report),
                Err(e) => vec![Violation {
                    leg,
                    seed: fx.seed,
                    what: format!("run failed: {e}"),
                }],
            })
        }
        "cpr" => {
            if !CPR_PROGRAMS.contains(&fx.program.as_str()) {
                return Err(stale(&fx.engine, &fx.program));
            }
            let clean = cpr_clean(&fx.program);
            Ok(match cpr_injected(&fx.program, &fx.plan) {
                Ok(report) => check_cpr(&leg, fx.seed, &fx.plan, &clean, &report),
                Err(e) => vec![Violation {
                    leg,
                    seed: fx.seed,
                    what: format!("run failed: {e}"),
                }],
            })
        }
        "sim" => {
            if !gprs_workloads::traces::PROGRAMS
                .iter()
                .any(|p| p.name == fx.program)
            {
                return Err(stale(&fx.engine, &fx.program));
            }
            let clean = sim_clean(&fx.program);
            let injected = sim_injected(&fx.program, fx.seed, clean.finish_cycles);
            Ok(check_sim(&leg, fx.seed, &clean, &injected))
        }
        "gprs-rt-cancel" => {
            if !RUNTIME_PROGRAMS.contains(&fx.program.as_str()) {
                return Err(stale(&fx.engine, &fx.program));
            }
            Ok(replay_cancel(&leg, fx))
        }
        other => Err(format!("unknown fixture engine {other:?}")),
    }
}

fn stale(engine: &str, program: &str) -> String {
    format!("stale fixture: program {program:?} is not in the {engine} registry")
}

/// Replays a fixture's **pinned schedule**: runs the bound program under
/// the fixture's plan with the recorded grant order enforced. A divergence
/// — the engine no longer produces the exact schedule the minimized
/// reproducer was captured under — is a violation naming the recording.
///
/// # Errors
/// Non-`gprs-rt` engines (nothing else records schedules) and stale
/// programs, as a description rather than a panic.
pub fn replay_fixture_recording(
    fx: &Fixture,
    rec: &Arc<Recording>,
) -> Result<Vec<Violation>, String> {
    if fx.engine != "gprs-rt" {
        return Err(format!(
            "fixture engine {:?} does not support schedule recordings (gprs-rt only)",
            fx.engine
        ));
    }
    if !RUNTIME_PROGRAMS.contains(&fx.program.as_str()) {
        return Err(stale(&fx.engine, &fx.program));
    }
    let leg = format!("fixture/{}/{}+recording", fx.engine, fx.program);
    let mut b = gprs_runtime::GprsBuilder::new().workers(4);
    crate::programs::register_gprs(&fx.program, &mut b);
    match b.chaos(&fx.plan).replay(rec.clone()).build().run() {
        Ok(_) => Ok(Vec::new()),
        Err(e) => Ok(vec![Violation {
            leg,
            seed: fx.seed,
            what: format!("pinned schedule diverged: {e}"),
        }]),
    }
}

/// Records the fixture's injected run into `path` — the generator for the
/// sibling file a `# recording:` header names. The chaos plan travels in
/// the recording header too, so the artifact is independently replayable
/// by `gprs-replay run`.
///
/// # Errors
/// Non-`gprs-rt` engines, stale programs, or a recorded run that fails.
pub fn record_fixture(fx: &Fixture, path: &std::path::Path) -> Result<(u64, u64), String> {
    if fx.engine != "gprs-rt" {
        return Err(format!(
            "fixture engine {:?} does not support schedule recordings (gprs-rt only)",
            fx.engine
        ));
    }
    if !RUNTIME_PROGRAMS.contains(&fx.program.as_str()) {
        return Err(stale(&fx.engine, &fx.program));
    }
    let mut b = gprs_runtime::GprsBuilder::new().workers(4);
    crate::programs::register_gprs(&fx.program, &mut b);
    let report = b
        .chaos(&fx.plan)
        .record(path)
        .record_meta(&fx.program, fx.seed)
        .build()
        .run()
        .map_err(|e| format!("recorded fixture run failed: {e}"))?;
    Ok((report.telemetry.schedule_hash, report.telemetry.retired_hash))
}

/// Replays a HALT-mid-recovery fixture: runs `seed` quanta of the program
/// under the injected plan, then cancels — so any `mid-recovery` events
/// the plan has not yet consumed fire *inside* the cancellation squash
/// itself (the interleaving where a halt could strike entries that are
/// mid-squash or already retired). The halted run must finish cleanly
/// (no panic, no poison) and leave the WAL ledger balanced:
/// `wal_appends == wal_undos + wal_prunes`.
fn replay_cancel(leg: &str, fx: &Fixture) -> Vec<Violation> {
    use gprs_runtime::session::QuantumOutcome;
    let mut b = gprs_runtime::GprsBuilder::new().workers(4);
    crate::programs::register_gprs(&fx.program, &mut b);
    let mut session = b.chaos(&fx.plan).build().into_session();
    let mut quanta = 0u64;
    while quanta < fx.seed && session.run_quantum(8) == QuantumOutcome::Yielded {
        quanta += 1;
    }
    session.cancel();
    let report = match session.finish() {
        Ok(report) => report,
        Err(e) => {
            return vec![Violation {
                leg: leg.into(),
                seed: fx.seed,
                what: format!("halted run failed to finish: {e}"),
            }]
        }
    };
    let t = &report.telemetry;
    let (appends, undos, prunes) = (
        t.counter("wal_appends"),
        t.counter("wal_undos"),
        t.counter("wal_prunes"),
    );
    let mut v = Vec::new();
    if appends != undos + prunes {
        v.push(Violation {
            leg: leg.into(),
            seed: fx.seed,
            what: format!(
                "WAL imbalance after halt-mid-recovery: \
                 {appends} appends != {undos} undos + {prunes} prunes"
            ),
        });
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprs_core::chaos::ChaosEvent;

    #[test]
    fn fixture_roundtrips_and_rejects_missing_headers() {
        let fx = Fixture {
            engine: "gprs-rt".into(),
            program: "nested".into(),
            seed: 0,
            plan: ChaosPlan::new().with(ChaosEvent::at_grant(24).burst(3)),
            recording: Some("nested.gprs".into()),
        };
        let parsed = Fixture::parse(&fx.to_text()).expect("roundtrip");
        assert_eq!(parsed.engine, "gprs-rt");
        assert_eq!(parsed.program, "nested");
        assert_eq!(parsed.plan, fx.plan);
        assert_eq!(parsed.recording.as_deref(), Some("nested.gprs"));
        assert!(Fixture::parse("grant 3 burst=1\n").is_err());
    }

    /// A fixture naming a program that has since been deleted (or an
    /// unknown engine) must surface an error, never panic mid-replay.
    #[test]
    fn stale_fixtures_error_instead_of_panicking() {
        let mut fx = Fixture {
            engine: "gprs-rt".into(),
            program: "no-such-program".into(),
            seed: 0,
            plan: ChaosPlan::new().with(ChaosEvent::at_grant(24).burst(1)),
            recording: None,
        };
        for engine in ["gprs-rt", "cpr", "sim", "gprs-rt-cancel"] {
            fx.engine = engine.into();
            let err = replay_fixture(&fx).unwrap_err();
            assert!(err.contains("stale fixture"), "{engine}: {err}");
            assert!(err.contains("no-such-program"), "{engine}: {err}");
        }
        fx.engine = "warp-core".into();
        let err = replay_fixture(&fx).unwrap_err();
        assert!(err.contains("unknown fixture engine"), "{err}");
    }
}
