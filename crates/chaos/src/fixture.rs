//! Regression fixtures: a minimized failing scenario, committed to
//! `crates/chaos/fixtures/*.plan` and replayed by tests and CI.
//!
//! A fixture is the [`ChaosPlan`] text format plus header comments binding
//! it to an engine and program:
//!
//! ```text
//! # engine: gprs-rt        (gprs-rt | cpr | sim)
//! # program: nested
//! # seed: 17               (sim only: the script seed)
//! grant 24 kind=thermal scope=global victim=holder burst=3
//! mid-recovery 1 kind=soft-fault scope=global victim=oldest burst=1
//! ```
//!
//! Because the binding lives in comments, every fixture file also parses
//! as a bare [`ChaosPlan`]. Sim fixtures replay the *seed* (scripts are
//! cycle-keyed and scale-dependent, so the seed is the reproducer).

use crate::campaign::{
    cpr_clean, cpr_injected, gprs_clean, gprs_injected, sim_clean, sim_injected,
};
use crate::oracle::{check_cpr, check_runtime, check_sim, Violation};
use gprs_core::chaos::ChaosPlan;

/// A parsed fixture: engine binding + plan (and seed, for sim fixtures).
#[derive(Debug, Clone)]
pub struct Fixture {
    /// `gprs-rt`, `cpr` or `sim`.
    pub engine: String,
    /// Campaign program name.
    pub program: String,
    /// Script seed (sim fixtures).
    pub seed: u64,
    /// The injection plan (real-executor fixtures).
    pub plan: ChaosPlan,
}

impl Fixture {
    /// Parses fixture text (see the module docs).
    ///
    /// # Errors
    /// Returns a description of the malformed line or missing header.
    pub fn parse(text: &str) -> Result<Fixture, String> {
        let mut engine = None;
        let mut program = None;
        let mut seed = 0u64;
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix('#') else {
                continue;
            };
            if let Some((key, val)) = rest.split_once(':') {
                match key.trim() {
                    "engine" => engine = Some(val.trim().to_string()),
                    "program" => program = Some(val.trim().to_string()),
                    "seed" => {
                        seed = val
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad fixture seed {:?}", val.trim()))?
                    }
                    _ => {}
                }
            }
        }
        Ok(Fixture {
            engine: engine.ok_or("fixture missing `# engine:` header")?,
            program: program.ok_or("fixture missing `# program:` header")?,
            seed,
            plan: ChaosPlan::parse(text)?,
        })
    }

    /// Serializes the fixture (headers + plan text).
    pub fn to_text(&self) -> String {
        format!(
            "# engine: {}\n# program: {}\n# seed: {}\n{}",
            self.engine,
            self.program,
            self.seed,
            self.plan.to_text()
        )
    }
}

/// Replays a fixture against its bound engine and returns the oracle's
/// verdict (empty == the regression stays fixed).
///
/// # Errors
/// Returns a description for an unknown engine binding.
pub fn replay_fixture(fx: &Fixture) -> Result<Vec<Violation>, String> {
    let leg = format!("fixture/{}/{}", fx.engine, fx.program);
    match fx.engine.as_str() {
        "gprs-rt" => {
            let clean = gprs_clean(&fx.program);
            Ok(match gprs_injected(&fx.program, &fx.plan) {
                Ok(report) => check_runtime(&leg, fx.seed, &fx.plan, &clean, &report),
                Err(e) => vec![Violation {
                    leg,
                    seed: fx.seed,
                    what: format!("run failed: {e}"),
                }],
            })
        }
        "cpr" => {
            let clean = cpr_clean(&fx.program);
            Ok(match cpr_injected(&fx.program, &fx.plan) {
                Ok(report) => check_cpr(&leg, fx.seed, &fx.plan, &clean, &report),
                Err(e) => vec![Violation {
                    leg,
                    seed: fx.seed,
                    what: format!("run failed: {e}"),
                }],
            })
        }
        "sim" => {
            let clean = sim_clean(&fx.program);
            let injected = sim_injected(&fx.program, fx.seed, clean.finish_cycles);
            Ok(check_sim(&leg, fx.seed, &clean, &injected))
        }
        other => Err(format!("unknown fixture engine {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprs_core::chaos::ChaosEvent;

    #[test]
    fn fixture_roundtrips_and_rejects_missing_headers() {
        let fx = Fixture {
            engine: "gprs-rt".into(),
            program: "nested".into(),
            seed: 0,
            plan: ChaosPlan::new().with(ChaosEvent::at_grant(24).burst(3)),
        };
        let parsed = Fixture::parse(&fx.to_text()).expect("roundtrip");
        assert_eq!(parsed.engine, "gprs-rt");
        assert_eq!(parsed.program, "nested");
        assert_eq!(parsed.plan, fx.plan);
        assert!(Fixture::parse("grant 3 burst=1\n").is_err());
    }
}
