//! Deterministic chaos campaigns over the GPRS recovery paths.
//!
//! The PLDI 2014 design's hardest promises are about what happens *around*
//! recovery: every sub-thread older than the excepting one retires with its
//! effects visible, nothing younger is observable, the runtime's own WAL
//! balances, and the retired order converges to the fault-free order. This
//! crate stress-tests those promises with **seeded, fully deterministic
//! fault-injection campaigns** instead of one-shot wall-clock injection:
//!
//! * [`seeded_plan`] derives a [`ChaosPlan`] from a seed — exception storms
//!   (bursts across contexts), exceptions raised **while recovery is
//!   already in flight** (`MidRecovery` triggers), exceptions inside
//!   critical sections (`Holder` victims) and mid-WAL-append (`Newest`
//!   victims at a grant), over every [`ExceptionKind`] and a global/local
//!   scope mix.
//! * [`seeded_script`] expresses the same scenarios for the virtual-time
//!   simulator as [`ScriptedArrival`]s keyed to fractions of the fault-free
//!   finish time.
//! * [`oracle`] holds the invariant checks run after every injected
//!   execution.
//! * [`campaign`] drives N seeds × every workload program over the GPRS
//!   runtime, the CPR baseline and the simulator.
//! * [`minimize`] shrinks a failing plan to a minimal reproducer, and
//!   [`fixture`] serializes it (plus its engine/program binding) into the
//!   committed regression-fixture format replayed by CI.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod fixture;
pub mod minimize;
pub mod oracle;
pub mod programs;

pub use campaign::{run_campaign, CampaignConfig, CampaignOutcome};
pub use fixture::{record_fixture, replay_fixture, replay_fixture_recording, Fixture};
pub use minimize::minimize;
pub use oracle::Violation;

use gprs_core::chaos::{ChaosEvent, ChaosPlan, ChaosTrigger, VictimSelector};
use gprs_core::exception::{ExceptionScope, InjectorConfig, ScriptedArrival};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derives a deterministic injection plan from a seed.
///
/// `grants_hint` is the fault-free grant count of the target program; all
/// grant triggers land in `[1, grants_hint]` so every event is guaranteed
/// to fire (an injected run only ever issues *more* grants than the clean
/// run, since squashed work re-executes). Victims for global grant events
/// are drawn from `Oldest`/`Newest`/`Holder` — all of which resolve to a
/// live sub-thread at a grant — so the plan's exception totals are
/// deliverable; `Context` targeting is reserved for handwritten tests.
pub fn seeded_plan(seed: u64, grants_hint: u64) -> ChaosPlan {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4405C4405);
    let kinds = InjectorConfig::all_kinds();
    let hint = grants_hint.max(4);
    let mut plan = ChaosPlan::new();
    let grant_events = rng.gen_range(1u32..4);
    for _ in 0..grant_events {
        let at = rng.gen_range(1u64..hint + 1);
        let kind = kinds[rng.gen_range(0usize..kinds.len())];
        // Mostly global storms; roughly one event in four is a local mix
        // (handled precisely, no recovery — the §2.2 scope split).
        let scope = if rng.gen_range(0u32..4) == 0 {
            ExceptionScope::Local
        } else {
            ExceptionScope::Global
        };
        let victim = match rng.gen_range(0u32..3) {
            0 => VictimSelector::Oldest,
            1 => VictimSelector::Newest,
            _ => VictimSelector::Holder,
        };
        let burst = rng.gen_range(1u32..4);
        plan.push(
            ChaosEvent::at_grant(at)
                .kind(kind)
                .scope(scope)
                .victim(victim)
                .burst(burst),
        );
    }
    // Overlapping DEX→REX: exceptions raised while recovery is in flight,
    // keyed to the first recovery sessions the grant events above produce.
    for n in 1..=rng.gen_range(0u64..3) {
        let kind = kinds[rng.gen_range(0usize..kinds.len())];
        let victim = if rng.gen::<bool>() {
            VictimSelector::Oldest
        } else {
            VictimSelector::Newest
        };
        plan.push(ChaosEvent::mid_recovery(n).kind(kind).victim(victim));
    }
    plan
}

/// Derives a deterministic simulator script from a seed: the same storm /
/// overlap / kind-mix / scope-mix scenarios as [`seeded_plan`], keyed to
/// virtual cycles. `finish_hint` is the fault-free finish time; arrivals
/// land in its first ~70% so their (latency-delayed) reports stay inside
/// the injected run.
pub fn seeded_script(seed: u64, finish_hint: u64, contexts: u32) -> Vec<ScriptedArrival> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5C819750);
    let kinds = InjectorConfig::all_kinds();
    let span = (finish_hint / 10).max(1);
    let mut script = Vec::new();
    for _ in 0..rng.gen_range(1u32..4) {
        let at = span + rng.gen_range(0u64..span * 6);
        let victim = rng.gen_range(0u32..contexts.max(1));
        let mut arr = ScriptedArrival::storm(at, victim, rng.gen_range(1u32..6));
        if rng.gen::<bool>() {
            arr = arr.with_kind(kinds[rng.gen_range(0usize..kinds.len())]);
        }
        if rng.gen_range(0u32..4) == 0 {
            arr = arr.with_scope(ExceptionScope::Local);
        }
        script.push(arr);
        // Overlap pair: a trailing arrival one cycle behind the storm, so
        // its report lands in the same recovery drain (an exception while
        // recovery handles its predecessors).
        if rng.gen::<bool>() {
            script.push(ScriptedArrival::single(at + 1, (victim + 7) % contexts.max(1)));
        }
    }
    script
}

/// Exceptions a plan is guaranteed to deliver: the grant-event bursts.
/// (`MidRecovery` events only fire if their session ordinal is reached, so
/// the oracle treats them as an upper bound, not a promise.)
pub fn guaranteed_exceptions(plan: &ChaosPlan) -> u64 {
    plan.events
        .iter()
        .filter(|e| matches!(e.trigger, ChaosTrigger::AtGrant(_)))
        .map(|e| e.burst.max(1) as u64)
        .sum()
}
