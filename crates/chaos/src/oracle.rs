//! The invariant oracle: what must hold after *every* injected run.
//!
//! The checks are deliberately timing-robust. On the real runtime the
//! grant *order* is deterministic but the in-flight set at a trigger is
//! not, so the oracle asserts end-state invariants that hold for any
//! victim the selector resolved to:
//!
//! * **Precision** — the retired-order hash and retirement count converge
//!   to the fault-free run's (all older effects visible in order, no
//!   younger effect observable), and committed file contents are
//!   bit-identical.
//! * **WAL balance** — every runtime-WAL append is eventually either
//!   undone by recovery or pruned at retirement:
//!   `wal_appends == wal_undos + wal_prunes`.
//! * **Accounting** — grant-triggered exceptions are all delivered
//!   (`MidRecovery` events are an upper bound: they fire only if their
//!   session ordinal is reached), and every non-ignored exception squashes
//!   at least its culprit.
//! * **CPR accounting** — on the baseline every global exception either
//!   rolls the machine back or is ignored for lack of a snapshot:
//!   `rollbacks + exceptions_ignored == exceptions`.

use crate::guaranteed_exceptions;
use gprs_core::chaos::ChaosPlan;
use gprs_runtime::cpr::CprReport;
use gprs_runtime::report::RunReport;
use gprs_sim::result::SimResult;

/// One oracle violation: which campaign leg, which seed, what broke.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Campaign leg, e.g. `rt/nested` or `sim/canneal`.
    pub leg: String,
    /// The plan/script seed that produced it.
    pub seed: u64,
    /// Human-readable description of the broken invariant.
    pub what: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} seed {}: {}", self.leg, self.seed, self.what)
    }
}

fn violation(out: &mut Vec<Violation>, leg: &str, seed: u64, what: String) {
    out.push(Violation {
        leg: leg.to_string(),
        seed,
        what,
    });
}

/// Checks an injected GPRS-runtime run against its fault-free twin.
pub fn check_runtime(
    leg: &str,
    seed: u64,
    plan: &ChaosPlan,
    clean: &RunReport,
    injected: &RunReport,
) -> Vec<Violation> {
    let mut v = Vec::new();
    let (t, c) = (&injected.telemetry, &clean.telemetry);
    if t.retired_hash != c.retired_hash {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "retired-order hash diverged: {:#018x} != clean {:#018x}",
                t.retired_hash, c.retired_hash
            ),
        );
    }
    if t.retired_count != c.retired_count {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "retired count diverged: {} != clean {}",
                t.retired_count, c.retired_count
            ),
        );
    }
    if injected.files != clean.files {
        violation(
            &mut v,
            leg,
            seed,
            "committed file contents differ from the fault-free run".to_string(),
        );
    }
    let (appends, undos, prunes) = (
        t.counter("wal_appends"),
        t.counter("wal_undos"),
        t.counter("wal_prunes"),
    );
    if appends != undos + prunes {
        violation(
            &mut v,
            leg,
            seed,
            format!("WAL imbalance: {appends} appends != {undos} undos + {prunes} prunes"),
        );
    }
    let stats = &injected.stats;
    let (lo, hi) = (guaranteed_exceptions(plan), plan.total_exceptions());
    if stats.exceptions < lo || stats.exceptions > hi {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "exception accounting: delivered {} outside plan bounds [{lo}, {hi}]",
                stats.exceptions
            ),
        );
    }
    if stats.squashed + stats.exceptions_ignored < stats.exceptions {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "recovery accounting: {} squashed + {} ignored < {} exceptions",
                stats.squashed, stats.exceptions_ignored, stats.exceptions
            ),
        );
    }
    v
}

/// Checks an injected *sharded* GPRS run against both of its fault-free
/// twins. The retired order must converge to the **unsharded** twin's —
/// per-domain retirement is invisible to global precision — while committed
/// file bytes are compared against the **sharded** clean twin (the merge
/// concatenates per-domain commits, so byte layout is a sharded-mode
/// property). On top of the global WAL balance, every domain's own ledger
/// must balance and the per-domain digests must sum back to the global
/// retired hash.
pub fn check_sharded(
    leg: &str,
    seed: u64,
    plan: &ChaosPlan,
    clean_unsharded: &RunReport,
    clean_sharded: &RunReport,
    injected: &RunReport,
) -> Vec<Violation> {
    let mut v = Vec::new();
    let (t, c) = (&injected.telemetry, &clean_unsharded.telemetry);
    if t.retired_hash != c.retired_hash {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "sharded retired-order hash diverged from the unsharded twin: \
                 {:#018x} != {:#018x}",
                t.retired_hash, c.retired_hash
            ),
        );
    }
    if t.retired_count != c.retired_count {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "sharded retired count diverged: {} != unsharded {}",
                t.retired_count, c.retired_count
            ),
        );
    }
    if injected.files != clean_sharded.files {
        violation(
            &mut v,
            leg,
            seed,
            "committed file contents differ from the sharded fault-free twin".to_string(),
        );
    }
    if injected.shards.len() != clean_sharded.shards.len() {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "domain count changed under faults: {} != clean {}",
                injected.shards.len(),
                clean_sharded.shards.len()
            ),
        );
    }
    let mut digest_sum = 0u64;
    for s in &injected.shards {
        digest_sum = digest_sum.wrapping_add(s.retired_hash);
        if s.wal_appends != s.wal_undos + s.wal_prunes {
            violation(
                &mut v,
                leg,
                seed,
                format!(
                    "domain {} WAL imbalance: {} appends != {} undos + {} prunes",
                    s.domain, s.wal_appends, s.wal_undos, s.wal_prunes
                ),
            );
        }
    }
    if digest_sum != t.retired_hash {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "shard digests do not sum to the merged retired hash: \
                 {digest_sum:#018x} != {:#018x}",
                t.retired_hash
            ),
        );
    }
    let stats = &injected.stats;
    let (lo, hi) = (guaranteed_exceptions(plan), plan.total_exceptions());
    if stats.exceptions < lo || stats.exceptions > hi {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "exception accounting: delivered {} outside plan bounds [{lo}, {hi}]",
                stats.exceptions
            ),
        );
    }
    if stats.squashed + stats.exceptions_ignored < stats.exceptions {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "recovery accounting: {} squashed + {} ignored < {} exceptions",
                stats.squashed, stats.exceptions_ignored, stats.exceptions
            ),
        );
    }
    v
}

/// Checks an injected CPR-baseline run.
pub fn check_cpr(
    leg: &str,
    seed: u64,
    plan: &ChaosPlan,
    clean: &CprReport,
    injected: &CprReport,
) -> Vec<Violation> {
    let mut v = Vec::new();
    let stats = &injected.stats;
    let (lo, hi) = (guaranteed_exceptions(plan), plan.total_exceptions());
    if stats.exceptions < lo || stats.exceptions > hi {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "exception accounting: delivered {} outside plan bounds [{lo}, {hi}]",
                stats.exceptions
            ),
        );
    }
    if injected.rollbacks + stats.exceptions_ignored != stats.exceptions {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "CPR accounting: {} rollbacks + {} ignored != {} exceptions",
                injected.rollbacks, stats.exceptions_ignored, stats.exceptions
            ),
        );
    }
    if injected.outputs.len() != clean.outputs.len() {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "thread outputs incomplete: {} != clean {}",
                injected.outputs.len(),
                clean.outputs.len()
            ),
        );
    }
    v
}

/// Checks an injected simulator run against its fault-free twin. The
/// simulator is a pure function of its inputs, so beyond the invariants
/// this *is* a bit-replay check on the retired order.
pub fn check_sim(leg: &str, seed: u64, clean: &SimResult, injected: &SimResult) -> Vec<Violation> {
    let mut v = Vec::new();
    if !injected.completed {
        violation(&mut v, leg, seed, "DNC: exceeded the injected time cap".to_string());
        return v;
    }
    let (t, c) = (&injected.telemetry, &clean.telemetry);
    if t.retired_hash != c.retired_hash || t.retired_count != c.retired_count {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "retired order diverged: {:#018x}/{} != clean {:#018x}/{}",
                t.retired_hash, t.retired_count, c.retired_hash, c.retired_count
            ),
        );
    }
    if injected.squashed + injected.exceptions_ignored < injected.exceptions {
        violation(
            &mut v,
            leg,
            seed,
            format!(
                "recovery accounting: {} squashed + {} ignored < {} exceptions",
                injected.squashed, injected.exceptions_ignored, injected.exceptions
            ),
        );
    }
    v
}
