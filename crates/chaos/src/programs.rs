//! The workload programs chaos campaigns run on the real executors.
//!
//! Each program registers identically on the GPRS runtime and the CPR
//! baseline (their registration APIs mirror each other), covering the
//! recovery surfaces the plans target: pure grant/retire traffic
//! (`chain`), nested locks under the per-lock condvar shards (`nested`),
//! mutex-protected critical sections (`histogram`) and a channel pipeline
//! with output-commit-delayed files (`pbzip`, GPRS only).

use gprs_core::history::Checkpoint;
use gprs_core::ids::GroupId;
use gprs_runtime::cpr::CprBuilder;
use gprs_runtime::ctx::StepCtx;
use gprs_runtime::handles::{AtomicHandle, MutexHandle};
use gprs_runtime::program::{Step, ThreadProgram};
use gprs_runtime::GprsBuilder;
use gprs_workloads::kernels::compress::generate_corpus;
use gprs_workloads::kernels::dedup::generate_dedup_corpus;
use gprs_workloads::programs::{
    beacon_model, build_beacon, build_dedup_pipeline, build_pbzip_pipeline, dedup_model,
    pbzip_model, HistogramWorker,
};

/// Programs the GPRS-runtime campaign legs run.
pub const RUNTIME_PROGRAMS: &[&str] = &["chain", "nested", "histogram", "pbzip", "beacon"];

/// Programs the sharded-runtime differential legs run: every workload with
/// a multi-domain shard plan (beacon partitions per worker; the pipelines
/// partition per stage with cross-domain channel edges).
pub const SHARD_PROGRAMS: &[&str] = &["beacon", "pbzip", "dedup"];

/// Beacon shape shared by the plain `rt/beacon` leg and the elision legs
/// (`rt-elide/beacon` must compare against the same clean twin).
pub const BEACON_SHAPE: (usize, u32) = (4, 24);

/// The trace-level model matching [`BEACON_SHAPE`], for the elision legs.
pub fn beacon_leg_model() -> gprs_core::workload::Workload {
    beacon_model(BEACON_SHAPE.0, BEACON_SHAPE.1)
}

/// Programs the CPR-baseline campaign legs run (`pbzip` wires channels
/// through a GPRS-only builder helper, so the baseline skips it).
pub const CPR_PROGRAMS: &[&str] = &["chain", "nested", "histogram"];

/// Disjoint fetch-add chain: pure grant/checkpoint/retire traffic.
pub struct Chain {
    atomic: AtomicHandle,
    rounds: u32,
    done: u32,
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Chain({}/{})", self.done, self.rounds)
    }
}

impl Checkpoint for Chain {
    type Snapshot = u32;
    fn checkpoint(&self) -> u32 {
        self.done
    }
    fn restore(&mut self, s: &u32) {
        self.done = *s;
    }
}

impl ThreadProgram for Chain {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        if self.done == self.rounds {
            return Step::exit(u64::from(self.done));
        }
        self.done += 1;
        self.atomic.fetch_add(1)
    }
}

/// Nested-lock worker: every round opens a critical section on the outer
/// mutex and takes the inner mutex *nested inside it* — the sub-thread
/// holds two locks when a `Holder`-targeted exception strikes, and any
/// peer blocked on the inner lock parks on its condvar shard.
pub struct NestedWorker {
    outer: MutexHandle<u64>,
    inner: MutexHandle<u64>,
    rounds: u32,
    done: u32,
}

impl std::fmt::Debug for NestedWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NestedWorker({}/{})", self.done, self.rounds)
    }
}

impl Checkpoint for NestedWorker {
    type Snapshot = u32;
    fn checkpoint(&self) -> u32 {
        self.done
    }
    fn restore(&mut self, s: &u32) {
        self.done = *s;
    }
}

impl ThreadProgram for NestedWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.done > 0 {
            // Inside the outer critical section: nested acquire first (the
            // shard-wait path), then the opening lock's data.
            ctx.lock_nested(&self.inner, |n| *n = n.wrapping_add(1));
            ctx.with_lock(&self.outer, |n| *n = n.wrapping_add(3));
            ctx.unlock(&self.outer);
        }
        if self.done == self.rounds {
            return Step::exit(u64::from(self.done));
        }
        self.done += 1;
        self.outer.lock()
    }
}

/// Registers `name`'s threads and resources on either builder (their
/// registration APIs are identical by construction).
macro_rules! register_common {
    ($name:expr, $b:expr) => {
        match $name {
            "chain" => {
                for _ in 0..6 {
                    let a = $b.atomic(0);
                    $b.thread(Chain { atomic: a, rounds: 24, done: 0 }, GroupId::new(0), 1);
                }
                true
            }
            "nested" => {
                let outer = $b.mutex(0u64);
                let inner = $b.mutex(0u64);
                for _ in 0..5 {
                    $b.thread(
                        NestedWorker { outer, inner, rounds: 12, done: 0 },
                        GroupId::new(0),
                        1,
                    );
                }
                true
            }
            "histogram" => {
                let acc = $b.mutex(vec![0u64; 256]);
                for chunk in generate_corpus(24_000, 5).chunks(4_000) {
                    $b.thread(HistogramWorker::new(chunk.to_vec(), acc), GroupId::new(0), 1);
                }
                true
            }
            _ => false,
        }
    };
}

/// Registers a campaign program on a GPRS builder.
///
/// # Panics
/// Panics on an unknown program name.
pub fn register_gprs(name: &str, b: &mut GprsBuilder) {
    if register_common!(name, b) {
        return;
    }
    match name {
        "pbzip" => {
            let _ = build_pbzip_pipeline(b, generate_corpus(20_000, 11), 2048, 2);
        }
        "beacon" => {
            let _ = build_beacon(b, BEACON_SHAPE.0, BEACON_SHAPE.1);
        }
        other => panic!("unknown chaos program {other:?}"),
    }
}

/// Registers a [`SHARD_PROGRAMS`] workload on a GPRS builder and returns
/// the trace-level model whose interference proof drives the shard plan.
/// The shapes are fixed per program so every seed of a leg shares the same
/// clean twins.
///
/// # Panics
/// Panics on a program without a sharded registration.
pub fn register_gprs_sharded(name: &str, b: &mut GprsBuilder) -> gprs_core::workload::Workload {
    match name {
        "beacon" => {
            let _ = build_beacon(b, BEACON_SHAPE.0, BEACON_SHAPE.1);
            beacon_leg_model()
        }
        "pbzip" => {
            let input = generate_corpus(20_000, 11);
            let blocks = (input.len() as u64).div_ceil(2048);
            let _ = build_pbzip_pipeline(b, input, 2048, 2);
            pbzip_model(blocks, 2)
        }
        "dedup" => {
            let input = generate_dedup_corpus(30_000, 30, 7);
            let blocks = (input.len() as u64).div_ceil(8_192);
            let (_, _, total, fresh) = build_dedup_pipeline(b, input, 8_192, 2, 2);
            dedup_model(blocks, total, fresh, 2, 2)
        }
        other => panic!("unknown sharded chaos program {other:?}"),
    }
}

/// Registers a campaign program on a CPR builder.
///
/// # Panics
/// Panics on an unknown program name (including `pbzip`, see
/// [`CPR_PROGRAMS`]).
pub fn register_cpr(name: &str, b: &mut CprBuilder) {
    if !register_common!(name, b) {
        panic!("unknown CPR chaos program {name:?}");
    }
}
