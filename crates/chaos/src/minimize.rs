//! Greedy plan minimization: shrink a failing plan to a minimal
//! reproducer before committing it as a regression fixture.

use gprs_core::chaos::ChaosPlan;

/// Minimizes `plan` against `still_fails` (which must return `true` for
/// the input plan). Delta-debugs in two passes: drop whole events while
/// the failure reproduces, then shrink surviving bursts to 1 where the
/// failure survives that too. The result is deterministic for a
/// deterministic predicate.
pub fn minimize(plan: &ChaosPlan, mut still_fails: impl FnMut(&ChaosPlan) -> bool) -> ChaosPlan {
    debug_assert!(still_fails(plan), "minimize needs a failing plan");
    let mut best = plan.clone();

    // Pass 1: drop events, largest-first reduction by repeated sweeps.
    let mut progress = true;
    while progress {
        progress = false;
        for i in 0..best.events.len() {
            if best.events.len() == 1 {
                break;
            }
            let mut candidate = best.clone();
            candidate.events.remove(i);
            if still_fails(&candidate) {
                best = candidate;
                progress = true;
                break;
            }
        }
    }

    // Pass 2: shrink bursts.
    for i in 0..best.events.len() {
        while best.events[i].burst > 1 {
            let mut candidate = best.clone();
            candidate.events[i].burst -= 1;
            if still_fails(&candidate) {
                best = candidate;
            } else {
                break;
            }
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprs_core::chaos::{ChaosEvent, ChaosTrigger};

    #[test]
    fn shrinks_to_the_single_guilty_event() {
        let plan = ChaosPlan::new()
            .with(ChaosEvent::at_grant(3).burst(4))
            .with(ChaosEvent::at_grant(9).burst(2))
            .with(ChaosEvent::mid_recovery(1));
        // "Fails" iff some event triggers at grant 9 with burst >= 2.
        let fails = |p: &ChaosPlan| {
            p.events
                .iter()
                .any(|e| e.trigger == ChaosTrigger::AtGrant(9) && e.burst >= 2)
        };
        let min = minimize(&plan, fails);
        assert_eq!(min.events.len(), 1);
        assert_eq!(min.events[0].trigger, ChaosTrigger::AtGrant(9));
        assert_eq!(min.events[0].burst, 2);
    }
}
