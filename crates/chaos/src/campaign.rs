//! The campaign driver: N seeds × every workload program × every engine.
//!
//! For each (program, engine) leg the fault-free twin is computed once and
//! reused across seeds — it is seed-independent — then every seed derives
//! its plan (real executors) or script (simulator), runs it, and feeds the
//! result to the [`crate::oracle`]. A campaign passes only when **zero**
//! invariants are violated across every leg.

use crate::oracle::{check_cpr, check_runtime, check_sharded, check_sim, Violation};
use crate::programs::{
    register_cpr, register_gprs, register_gprs_sharded, CPR_PROGRAMS, RUNTIME_PROGRAMS,
    SHARD_PROGRAMS,
};
use crate::{seeded_plan, seeded_script};
use gprs_core::chaos::ChaosPlan;
use gprs_core::exception::InjectorConfig;
use gprs_runtime::cpr::{CprBuilder, CprReport};
use gprs_runtime::report::RunReport;
use gprs_runtime::GprsBuilder;
use gprs_sim::costs::{MechCosts, CYCLES_PER_SEC};
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_sim::result::SimResult;
use gprs_workloads::traces::{build, TraceParams, PROGRAMS};

/// Simulator contexts for campaign legs (small enough to keep 32 seeds ×
/// 10 programs fast, large enough for real overlap).
const SIM_CONTEXTS: u32 = 8;

/// Campaign shape.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds per (program, engine) leg.
    pub seeds: u64,
    /// Quick mode: a fixed subset of simulator programs (CI smoke).
    pub quick: bool,
}

impl CampaignConfig {
    /// The acceptance-criteria campaign: 32 seeds, every program.
    pub fn full() -> Self {
        CampaignConfig {
            seeds: 32,
            quick: false,
        }
    }

    /// The CI smoke campaign: 6 seeds, three simulator programs.
    pub fn smoke() -> Self {
        CampaignConfig {
            seeds: 6,
            quick: true,
        }
    }
}

/// What a campaign did and found.
#[derive(Debug, Default)]
pub struct CampaignOutcome {
    /// Injected runs executed.
    pub runs: u64,
    /// `(leg, seed)` pairs exercised, for reporting.
    pub legs: u64,
    /// Every invariant violation found (empty == pass).
    pub violations: Vec<Violation>,
}

/// Mixes a program name into a per-leg seed stream (FNV-1a).
fn leg_seed(program: &str, seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in program.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^ seed
}

/// Fault-free GPRS-runtime run of a campaign program.
pub fn gprs_clean(program: &str) -> RunReport {
    let mut b = GprsBuilder::new().workers(4);
    register_gprs(program, &mut b);
    b.build().run().expect("fault-free campaign run completes")
}

/// Injected GPRS-runtime run of a campaign program under a plan.
pub fn gprs_injected(program: &str, plan: &ChaosPlan) -> Result<RunReport, String> {
    let mut b = GprsBuilder::new().workers(4);
    register_gprs(program, &mut b);
    b.chaos(plan).build().run().map_err(|e| e.to_string())
}

/// Fault-free CPR-baseline run of a campaign program.
pub fn cpr_clean(program: &str) -> CprReport {
    let mut b = CprBuilder::new().workers(4).checkpoint_every(24);
    register_cpr(program, &mut b);
    b.build().run().expect("fault-free CPR run completes")
}

/// Injected CPR-baseline run of a campaign program under a plan.
pub fn cpr_injected(program: &str, plan: &ChaosPlan) -> Result<CprReport, String> {
    let mut b = CprBuilder::new().workers(4).checkpoint_every(24);
    register_cpr(program, &mut b);
    b.chaos(plan).build().run().map_err(|e| e.to_string())
}

/// Fault-free simulator run of a paper workload at campaign scale.
pub fn sim_clean(program: &str) -> SimResult {
    let w = build(program, &TraceParams::paper().scaled(0.02));
    run_gprs(&w, &GprsSimConfig::balance_aware(SIM_CONTEXTS))
}

/// Injected simulator run: the seeded script plus a background Poisson
/// stream (kind-cycled, one local in four) at a fixed sub-tipping rate.
///
/// The rate is absolute (0.5/s — the paper's low-rate regime, well under
/// the 1.92/s single-context tipping point), *not* scaled to the program's
/// clean duration: scaling it would push short programs like histogram
/// (~14 ms clean) far past their tipping rate and turn every run into a
/// by-design livelock. Likewise the time cap budgets a full REX restore
/// (~450 ms, larger than some programs' entire clean run) plus a
/// re-execution for every scripted arrival on top of the 16× clean slack.
pub fn sim_injected(program: &str, seed: u64, clean_finish: u64) -> SimResult {
    sim_injected_cfg(program, seed, clean_finish, false)
}

/// [`sim_injected`] with static checkpoint elision switched on — the
/// `sim-elide` legs, checked against the *elision-off* clean twin so the
/// proofs must be invisible to the oracle.
pub fn sim_injected_elided(program: &str, seed: u64, clean_finish: u64) -> SimResult {
    sim_injected_cfg(program, seed, clean_finish, true)
}

fn sim_injected_cfg(program: &str, seed: u64, clean_finish: u64, elide: bool) -> SimResult {
    let w = build(program, &TraceParams::paper().scaled(0.02));
    let script = seeded_script(seed, clean_finish, SIM_CONTEXTS);
    let arrivals: u64 = script.iter().map(|a| a.burst.max(1) as u64).sum();
    let costs = MechCosts::paper_default();
    let recovery_budget =
        (arrivals + 4) * (costs.gprs_restore + costs.restore_wait + clean_finish);
    let injector = InjectorConfig::paper(0.5, SIM_CONTEXTS, CYCLES_PER_SEC)
        .with_seed(seed ^ 0xD37E)
        .with_script(script)
        .with_kind_mix(InjectorConfig::all_kinds())
        .with_local_every(4);
    let cfg = GprsSimConfig::balance_aware(SIM_CONTEXTS)
        .with_elision(elide)
        .with_exceptions(injector)
        .with_time_cap(clean_finish.saturating_mul(16).saturating_add(recovery_budget));
    run_gprs(&w, &cfg)
}

/// Injected GPRS-runtime run of the beacon program with WAL elision on:
/// the builder consumes the model's dead-store proofs, so every beacon
/// write (including re-executed ones) skips its undo record while the
/// oracle holds the run to the elision-off twin's retired order.
pub fn gprs_elide_injected(plan: &ChaosPlan) -> Result<RunReport, String> {
    let mut b = GprsBuilder::new().workers(4);
    register_gprs("beacon", &mut b);
    b.model(crate::programs::beacon_leg_model())
        .elide(true)
        .chaos(plan)
        .build()
        .run()
        .map_err(|e| e.to_string())
}

/// Fault-free sharded run of a [`SHARD_PROGRAMS`] workload.
pub fn gprs_sharded_clean(program: &str) -> RunReport {
    let mut b = GprsBuilder::new().workers(4);
    let model = register_gprs_sharded(program, &mut b);
    b.model(model)
        .build_sharded()
        .run()
        .expect("fault-free sharded campaign run completes")
}

/// Injected sharded run. Chaos triggers attach to execution domain 0 (the
/// deterministic injection point: domain-local grant indices), so faults
/// squash inside one shard while the cross-domain edges stay live.
pub fn gprs_sharded_injected(program: &str, plan: &ChaosPlan) -> Result<RunReport, String> {
    let mut b = GprsBuilder::new().workers(4);
    let model = register_gprs_sharded(program, &mut b);
    b.model(model)
        .chaos(plan)
        .build_sharded()
        .run()
        .map_err(|e| e.to_string())
}

/// The sharded differential legs (`shard/*`): faults land inside domain 0
/// of a multi-domain run; the oracle holds the merged report to the
/// *unsharded* clean twin's retired order, the *sharded* clean twin's file
/// bytes, and per-domain WAL balance — global precision must survive
/// per-domain ordering, retirement, logging and recovery.
fn shard_legs(cfg: &CampaignConfig, out: &mut CampaignOutcome) {
    for program in SHARD_PROGRAMS {
        let leg = format!("shard/{program}");
        let clean_unsharded = {
            let mut b = GprsBuilder::new().workers(4);
            let model = register_gprs_sharded(program, &mut b);
            b.model(model)
                .build()
                .run()
                .expect("fault-free unsharded twin completes")
        };
        let clean_sharded = gprs_sharded_clean(program);
        out.legs += 1;
        // Plans key on domain 0's local grant stream, so bound triggers by
        // its clean grant count rather than the merged total.
        let domain0_grants = clean_sharded
            .shards
            .first()
            .map_or(clean_sharded.stats.grants, |s| s.grants);
        for seed in 0..cfg.seeds {
            let plan = seeded_plan(leg_seed(&leg, seed), domain0_grants);
            out.runs += 1;
            match gprs_sharded_injected(program, &plan) {
                Ok(report) => out.violations.extend(check_sharded(
                    &leg,
                    seed,
                    &plan,
                    &clean_unsharded,
                    &clean_sharded,
                    &report,
                )),
                Err(e) => out.violations.push(Violation {
                    leg: leg.clone(),
                    seed,
                    what: format!("run failed: {e}"),
                }),
            }
        }
    }
}

/// Spec seed for the serve legs: clean twins stay seed-independent (one
/// solo golden per workload), only the injected fault plans vary.
const SERVE_SPEC_SEED: u64 = 11;

/// The multi-tenant legs: every serve-registry workload × every campaign
/// seed, all submitted to ONE shared 2-worker pool at once — maximal
/// co-residency, with exception recoveries from many tenants interleaving
/// on the same OS threads. Each job's report must satisfy the same
/// invariants as a solo injected run against the workload's solo
/// fault-free twin: tenancy must be invisible to precision.
fn serve_legs(cfg: &CampaignConfig, out: &mut CampaignOutcome) {
    use gprs_serve::{build_solo, fault_plan, JobSpec, JobStatus, PoolConfig, ServePool};

    let pool = ServePool::start(PoolConfig {
        workers: 2,
        quantum: 48,
        ..Default::default()
    });
    let handle = pool.handle();
    let mut tickets = Vec::new();
    for program in gprs_serve::WORKLOADS {
        for seed in 0..cfg.seeds {
            let fault = leg_seed(program, seed).max(1);
            let spec = JobSpec::new(*program, SERVE_SPEC_SEED).faults(fault);
            let ticket = handle.submit(spec).expect("pool is admitting");
            tickets.push((*program, seed, fault, ticket));
        }
    }
    // Solo twins run on this thread while the pool churns through the
    // injected backlog.
    let mut clean = std::collections::BTreeMap::new();
    for program in gprs_serve::WORKLOADS {
        let report = build_solo(&JobSpec::new(*program, SERVE_SPEC_SEED))
            .expect("registry workload")
            .run()
            .expect("fault-free solo twin completes");
        clean.insert(*program, report);
        out.legs += 1;
    }
    for (program, seed, fault, ticket) in tickets {
        let leg = format!("serve/{program}");
        out.runs += 1;
        let outcome = ticket.wait();
        if outcome.status != JobStatus::Completed {
            out.violations.push(Violation {
                leg,
                seed,
                what: format!(
                    "served job ended {:?}: {}",
                    outcome.status,
                    outcome.error.unwrap_or_default()
                ),
            });
            continue;
        }
        let report = outcome.report.expect("completed jobs carry a report");
        let plan = fault_plan(fault);
        out.violations
            .extend(check_runtime(&leg, seed, &plan, &clean[program], &report));
    }
    pool.shutdown();
}

/// The ProcessCrash legs: every serve workload, durable file backend,
/// "killed" mid-flight at a seeded quantum boundary (the session is
/// dropped with its WAL ledger imbalanced and its epoch unfinished —
/// exactly what SIGKILL leaves on disk, minus the torn tail, which the
/// loader tests cover separately). The restart loads the image, replays
/// under prefix verification, and must converge to the fault-free twin's
/// retired hash — restart *is* recovery, and it must also satisfy every
/// ordinary chaos-oracle invariant for the injected plan.
fn durable_crash_legs(cfg: &CampaignConfig, out: &mut CampaignOutcome) {
    use gprs_core::persist::{unique_temp_dir, FileBackend, PersistBackend};
    use gprs_runtime::session::QuantumOutcome;
    use gprs_serve::{build_job_durable, build_solo, fault_plan, JobSpec};
    use std::sync::Arc;

    // Crash/restart cycles are I/O-bound; a handful of seeds per workload
    // keeps the full campaign tractable.
    let seeds = cfg.seeds.min(if cfg.quick { 3 } else { 8 });
    for program in gprs_serve::WORKLOADS {
        let leg = format!("crash/{program}");
        let clean = build_solo(&JobSpec::new(*program, SERVE_SPEC_SEED))
            .expect("registry workload")
            .run()
            .expect("fault-free solo twin completes");
        out.legs += 1;
        for seed in 0..seeds {
            out.runs += 1;
            let fault = leg_seed(program, seed).max(1);
            let spec = JobSpec::new(*program, SERVE_SPEC_SEED).faults(fault);
            let plan = fault_plan(fault);
            let dir = unique_temp_dir("gprs-chaos-crash");
            let crashed = (|| -> Result<bool, String> {
                let backend =
                    Arc::new(FileBackend::open(&dir).map_err(|e| e.to_string())?);
                let mut session = build_job_durable(&spec, 0, 0, backend, None)?
                    .into_session();
                // Seeded crash point: 1..=6 quanta of 16 grants.
                let quanta = 1 + leg_seed(program, seed ^ 0xC4A5) % 6;
                for _ in 0..quanta {
                    if session.run_quantum(16) == QuantumOutcome::Finished {
                        // Finished before the crash point: the restart
                        // below still must load and verify the full log.
                        let _ = session.finish().map_err(|e| e.to_string())?;
                        return Ok(false);
                    }
                }
                drop(session); // the "kill": no cancel, no finish, no seal
                Ok(true)
            })();
            match crashed {
                Ok(_) => {
                    let restart = (|| -> Result<RunReport, String> {
                        let backend =
                            Arc::new(FileBackend::open(&dir).map_err(|e| e.to_string())?);
                        let image = backend.load().map_err(|e| e.to_string())?;
                        // Replay in the SAME drive mode as the crashed
                        // run (cooperative session): the position-wise
                        // retirement sequence that prefix verification
                        // checks is deterministic per drive mode, not
                        // across modes — exactly how the serve pool and
                        // `--durable-resume` replay their own logs.
                        let mut session =
                            build_job_durable(&spec, 0, 0, backend, Some(&image))?
                                .into_session();
                        while session.run_quantum(16) == QuantumOutcome::Yielded {}
                        session.finish().map_err(|e| e.to_string())
                    })();
                    match restart {
                        Ok(report) => out.violations.extend(check_runtime(
                            &leg, seed, &plan, &clean, &report,
                        )),
                        Err(e) => out.violations.push(Violation {
                            leg: leg.clone(),
                            seed,
                            what: format!("restart failed: {e}"),
                        }),
                    }
                }
                Err(e) => out.violations.push(Violation {
                    leg: leg.clone(),
                    seed,
                    what: format!("crash run failed: {e}"),
                }),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Runs the full campaign and collects every violation.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignOutcome {
    let mut out = CampaignOutcome::default();

    for program in RUNTIME_PROGRAMS {
        let leg = format!("rt/{program}");
        let clean = gprs_clean(program);
        out.legs += 1;
        for seed in 0..cfg.seeds {
            let plan = seeded_plan(leg_seed(program, seed), clean.stats.grants);
            out.runs += 1;
            match gprs_injected(program, &plan) {
                Ok(report) => out
                    .violations
                    .extend(check_runtime(&leg, seed, &plan, &clean, &report)),
                Err(e) => out.violations.push(Violation {
                    leg: leg.clone(),
                    seed,
                    what: format!("run failed: {e}"),
                }),
            }
        }
    }

    // Elision legs: the same programs with the static restartability
    // proofs consumed, held to the *elision-off* clean twins — the proofs
    // may remove recovery cost, never recovery outcome. Runtime leg:
    // beacon with dead-store WAL elision. Sim legs: checkpoint elision at
    // proven read-only boundaries.
    {
        let leg = "rt-elide/beacon";
        let clean = gprs_clean("beacon");
        out.legs += 1;
        for seed in 0..cfg.seeds {
            let plan = seeded_plan(leg_seed(leg, seed), clean.stats.grants);
            out.runs += 1;
            match gprs_elide_injected(&plan) {
                Ok(report) => {
                    out.violations
                        .extend(check_runtime(leg, seed, &plan, &clean, &report));
                    if report.telemetry.counter("wal_records_elided") == 0 {
                        out.violations.push(Violation {
                            leg: leg.to_string(),
                            seed,
                            what: "elision leg elided nothing: the proof pipeline is dead"
                                .to_string(),
                        });
                    }
                }
                Err(e) => out.violations.push(Violation {
                    leg: leg.to_string(),
                    seed,
                    what: format!("run failed: {e}"),
                }),
            }
        }
    }
    let sim_elide_programs: &[&str] = if cfg.quick {
        &["histogram"]
    } else {
        &["pbzip2", "barnes-hut", "histogram"]
    };
    for program in sim_elide_programs {
        let leg = format!("sim-elide/{program}");
        let clean = sim_clean(program);
        out.legs += 1;
        for seed in 0..cfg.seeds {
            out.runs += 1;
            let injected = sim_injected_elided(program, seed, clean.finish_cycles);
            out.violations
                .extend(check_sim(&leg, seed, &clean, &injected));
        }
    }

    shard_legs(cfg, &mut out);
    serve_legs(cfg, &mut out);
    durable_crash_legs(cfg, &mut out);

    for program in CPR_PROGRAMS {
        let leg = format!("cpr/{program}");
        let clean = cpr_clean(program);
        out.legs += 1;
        for seed in 0..cfg.seeds {
            let plan = seeded_plan(leg_seed(program, seed), clean.stats.grants);
            out.runs += 1;
            match cpr_injected(program, &plan) {
                Ok(report) => out
                    .violations
                    .extend(check_cpr(&leg, seed, &plan, &clean, &report)),
                Err(e) => out.violations.push(Violation {
                    leg: leg.clone(),
                    seed,
                    what: format!("run failed: {e}"),
                }),
            }
        }
    }

    let sim_programs: Vec<&str> = if cfg.quick {
        vec!["canneal", "dedup", "histogram"]
    } else {
        PROGRAMS.iter().map(|p| p.name).collect()
    };
    for program in sim_programs {
        let leg = format!("sim/{program}");
        let clean = sim_clean(program);
        out.legs += 1;
        for seed in 0..cfg.seeds {
            out.runs += 1;
            let injected = sim_injected(program, seed, clean.finish_cycles);
            out.violations
                .extend(check_sim(&leg, seed, &clean, &injected));
        }
    }

    out
}
