//! Campaign CLI.
//!
//! ```text
//! gprs-chaos                      # full campaign: 32 seeds × all programs
//! gprs-chaos --seeds 64           # more seeds
//! gprs-chaos --quick              # CI smoke: 6 seeds, sim subset
//! gprs-chaos --fixtures <dir>     # replay every committed *.plan fixture
//! gprs-chaos --record-fixture <plan>  # (re)generate a fixture's pinned
//!                                 # schedule recording (the sibling file
//!                                 # its `# recording:` header names)
//! ```
//!
//! Exit codes: 0 = zero oracle violations, 1 = violations found (each one
//! printed; for runtime legs the failing plan is minimized and its fixture
//! text printed, ready to commit under `crates/chaos/fixtures/`).

use gprs_chaos::campaign::{gprs_injected, gprs_clean, run_campaign};
use gprs_chaos::oracle::check_runtime;
use gprs_chaos::{
    minimize, record_fixture, replay_fixture, replay_fixture_recording, CampaignConfig, Fixture,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = CampaignConfig::full();
    let mut fixtures_dir: Option<String> = None;
    let mut record_plan: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = CampaignConfig::smoke(),
            "--seeds" => {
                i += 1;
                cfg.seeds = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds <n>");
            }
            "--fixtures" => {
                i += 1;
                fixtures_dir = Some(args.get(i).expect("--fixtures <dir>").clone());
            }
            "--record-fixture" => {
                i += 1;
                record_plan = Some(args.get(i).expect("--record-fixture <plan>").clone());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(plan) = record_plan {
        std::process::exit(record_one(&plan));
    }
    if let Some(dir) = fixtures_dir {
        std::process::exit(replay_all(&dir));
    }

    println!(
        "chaos campaign: {} seeds per leg ({})",
        cfg.seeds,
        if cfg.quick { "quick" } else { "full" }
    );
    let outcome = run_campaign(&cfg);
    println!(
        "{} injected runs over {} legs: {} violation(s)",
        outcome.runs,
        outcome.legs,
        outcome.violations.len()
    );
    if outcome.violations.is_empty() {
        return;
    }
    for v in &outcome.violations {
        eprintln!("VIOLATION: {v}");
    }
    // Minimize the first runtime failure into a committable fixture.
    if let Some(v) = outcome.violations.iter().find(|v| v.leg.starts_with("rt/")) {
        let program = v.leg.trim_start_matches("rt/").to_string();
        let clean = gprs_clean(&program);
        let plan = gprs_chaos::seeded_plan(
            leg_seed(&program, v.seed),
            clean.stats.grants,
        );
        let min = minimize(&plan, |p| match gprs_injected(&program, p) {
            Ok(r) => !check_runtime(&v.leg, v.seed, p, &clean, &r).is_empty(),
            Err(_) => true,
        });
        let fx = Fixture {
            engine: "gprs-rt".into(),
            program,
            seed: v.seed,
            plan: min,
            recording: None,
        };
        eprintln!("--- minimized fixture (commit under crates/chaos/fixtures/) ---");
        eprint!("{}", fx.to_text());
    }
    std::process::exit(1);
}

/// Mirrors `campaign::leg_seed` (kept private there to pin the stream).
fn leg_seed(program: &str, seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in program.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^ seed
}

/// Replays every `*.plan` fixture under `dir`. Every failure mode is loud
/// and named: an unreadable directory, an unreadable or unparseable
/// fixture file, a stale fixture (program/engine no longer registered),
/// and an oracle regression each print the offending path to stderr and
/// make the exit code nonzero. Nothing in here panics — CI must get a
/// clean "which file, what's wrong" report, not a backtrace.
fn replay_all(dir: &str) -> i32 {
    let mut failures = 0u64;
    let mut count = 0u64;
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("fixtures directory {dir:?}: unreadable: {e}");
            return 1;
        }
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| match e {
            Ok(e) => Some(e.path()),
            Err(err) => {
                failures += 1;
                eprintln!("fixtures directory {dir:?}: unreadable entry: {err}");
                None
            }
        })
        .filter(|p| p.extension().is_some_and(|x| x == "plan"))
        .collect();
    paths.sort();
    for path in paths {
        count += 1;
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                failures += 1;
                eprintln!("fixture {}: unreadable: {e}", path.display());
                continue;
            }
        };
        let fx = match Fixture::parse(&text) {
            Ok(fx) => fx,
            Err(e) => {
                failures += 1;
                eprintln!("fixture {}: unparseable: {e}", path.display());
                continue;
            }
        };
        match replay_fixture(&fx) {
            Ok(violations) if violations.is_empty() => {
                println!("fixture {}: ok", path.display());
            }
            Ok(violations) => {
                failures += 1;
                for v in violations {
                    eprintln!("fixture {}: REGRESSED: {v}", path.display());
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("fixture {}: {e}", path.display());
            }
        }
        // Pinned schedule, when the fixture carries one: a missing,
        // corrupt, or divergent recording is every bit as loud as an
        // oracle regression — name the file, fail the run.
        if let Some(name) = &fx.recording {
            let rec_path = path.with_file_name(name);
            match gprs_core::recording::Recording::load(&rec_path) {
                Err(e) => {
                    failures += 1;
                    eprintln!("fixture recording {}: {e}", rec_path.display());
                }
                Ok(rec) => match replay_fixture_recording(&fx, &std::sync::Arc::new(rec)) {
                    Ok(violations) if violations.is_empty() => {
                        println!("fixture recording {}: ok", rec_path.display());
                    }
                    Ok(violations) => {
                        failures += 1;
                        for v in violations {
                            eprintln!(
                                "fixture recording {}: DIVERGED: {v}",
                                rec_path.display()
                            );
                        }
                    }
                    Err(e) => {
                        failures += 1;
                        eprintln!("fixture recording {}: {e}", rec_path.display());
                    }
                },
            }
        }
    }
    println!("{count} fixture(s), {failures} failed");
    i32::from(failures > 0)
}

/// `--record-fixture`: (re)generates the pinned schedule recording a
/// fixture's `# recording:` header names, next to the fixture file.
fn record_one(plan_path: &str) -> i32 {
    let path = std::path::Path::new(plan_path);
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("fixture {plan_path}: unreadable: {e}");
            return 1;
        }
    };
    let fx = match Fixture::parse(&text) {
        Ok(fx) => fx,
        Err(e) => {
            eprintln!("fixture {plan_path}: unparseable: {e}");
            return 1;
        }
    };
    let Some(name) = &fx.recording else {
        eprintln!("fixture {plan_path}: has no `# recording:` header to generate");
        return 1;
    };
    let out = path.with_file_name(name);
    match record_fixture(&fx, &out) {
        Ok((schedule, retired)) => {
            println!(
                "recorded {} (schedule {schedule:016x}, retired {retired:016x})",
                out.display()
            );
            0
        }
        Err(e) => {
            eprintln!("fixture {plan_path}: {e}");
            1
        }
    }
}
