//! Pluggable durable persistence for the runtime's WAL and checkpoints —
//! the storage layer that lets a *restarted process* recover.
//!
//! Everything else in this crate assumes the process survives the
//! exception: the WAL ([`crate::wal`]) and history buffer
//! ([`crate::history`]) live in memory and die with it. This module adds a
//! [`PersistBackend`] trait the runtime mirrors its recovery-relevant
//! state through, with two implementations:
//!
//! * [`MemoryBackend`] — an in-process mirror with identical record
//!   semantics, used by unit tests and in-process crash *simulation*
//!   (drop the engine, keep the backend, resume).
//! * [`FileBackend`] — checksummed, segmented, fsync'd log files plus a
//!   content-addressed chunk store for checkpoint metadata, so a `kill
//!   -9`'d run can restart in a fresh process.
//!
//! # Design: command logging, not state serialization
//!
//! Sub-thread programs are arbitrary closures over arbitrary state —
//! there is nothing serializable to snapshot. Following the *command
//! logging* end of the logging spectrum ("Fast Failure Recovery for
//! Main-Memory DBMSs on Multicores"), the durable log records **what the
//! runtime did** (WAL appends/seals/undos/prunes and the retirement
//! order), not the program state. Recovery is deterministic
//! re-execution of the job spec, *verified* step-by-step against the
//! durable retire prefix: the restarted run must retire the same
//! `(thread, kind)` sequence with the same running order-hash digests,
//! or it is poisoned instead of silently diverging. GPRS's deterministic
//! total order is what makes this sound — the same spec replays to the
//! same retirement sequence on any worker count (the committed
//! determinism goldens pin exactly this).
//!
//! # Segment format
//!
//! A segment is a text file of records, one per line:
//!
//! ```text
//! <fnv1a-of-payload:016x> <payload>
//! ```
//!
//! A torn tail write fails the line checksum, and the loader truncates
//! to the newest consistent prefix — precisely the "newest consistent
//! prefix of the ROL" the restart resumes from. Segments seal (fsync +
//! close) every [`FileBackend::with_segment_cap`] records so corruption
//! stays bounded per file.
//!
//! # Checkpoints: a content-addressed merkle store
//!
//! Checkpoint metadata (retired count, combined retired-order digest,
//! per-thread retirement splits) is chunked into a content-addressed
//! store keyed by chunk hash; the log record carries the leaf hashes and
//! their merkle root. The loader refetches the chunks by hash, verifies
//! each leaf and the recombined root, and only then trusts the
//! checkpoint — an unverifiable checkpoint is *dropped* (the log records
//! still replay) rather than trusted.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the integrity hash for record lines and
/// content-addressed chunks (same family as the telemetry order hashes).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_pair(a: u64, b: u64) -> u64 {
    let mut buf = [0u8; 16];
    buf[..8].copy_from_slice(&a.to_le_bytes());
    buf[8..].copy_from_slice(&b.to_le_bytes());
    fnv1a(&buf)
}

/// Merkle root over an ordered list of leaf hashes: pairwise FNV
/// combination per level, odd leaf promoted unchanged.
pub fn merkle_root(leaves: &[u64]) -> u64 {
    if leaves.is_empty() {
        return fnv1a(b"gprs-merkle-empty");
    }
    let mut level = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 {
                fnv1a_pair(pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        level = next;
    }
    level[0]
}

/// Percent-escapes the three bytes that would break the line-oriented
/// record encoding: `%`, `\n`, `\r`.
fn escape(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
}

fn unescape(text: &str) -> Option<String> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next()?;
        let lo = chars.next()?;
        let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).ok()?;
        out.push(byte as char);
    }
    Some(out)
}

/// One durable log record. The vocabulary mirrors the in-memory WAL's
/// lifecycle (append → seal → undo|prune) plus the retirement order and
/// checkpoint anchors that restart verification needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableRecord {
    /// The job spec this epoch re-executes from. Doubles as the epoch
    /// marker: records after the *last* `Spec` form the current epoch
    /// (a resumed run re-records its spec and re-logs from scratch).
    Spec {
        /// Opaque spec text (the serve submit line, a workload name —
        /// whatever the embedder needs to rebuild the job).
        text: String,
    },
    /// Mirror of a WAL append. `checksum` is 0 when the in-memory
    /// append was deferred; the matching [`DurableRecord::Seal`]
    /// carries the late hash.
    Append {
        /// Log sequence number of the mirrored WAL record.
        lsn: u64,
        /// Sub-thread the operation was performed on behalf of.
        subthread: u64,
        /// Integrity checksum (0 = deferred, sealed later).
        checksum: u64,
        /// Stable `Debug` rendering of the runtime operation.
        op: String,
    },
    /// Late checksum attach for a deferred append (off-critical-section
    /// sealing, mirrored durably).
    Seal {
        /// LSN of the append being sealed.
        lsn: u64,
        /// The computed integrity checksum.
        checksum: u64,
    },
    /// A WAL record consumed for undo during a recovery session.
    Undo {
        /// LSN of the undone record.
        lsn: u64,
    },
    /// WAL records pruned when a sub-thread retired.
    Prune {
        /// The retired sub-thread.
        subthread: u64,
        /// Number of WAL records pruned for it.
        count: u64,
    },
    /// One sub-thread retired from the ROL head — the durable unit of
    /// the precise prefix a restart verifies against.
    Retire {
        /// Retired sub-thread id (changes across re-execution; recorded
        /// for forensics, *not* part of the verified identity).
        subthread: u64,
        /// Logical thread that retired (stable across re-execution).
        thread: u32,
        /// Sub-thread kind tag (stable across re-execution).
        kind: u8,
        /// Total sub-threads retired after this one (1-based prefix
        /// length).
        retired: u64,
        /// Running combined retired-order digest after this retire.
        digest: u64,
    },
    /// A checkpoint anchor: the merkle root of the chunked checkpoint
    /// metadata blob in the content-addressed store.
    Checkpoint {
        /// Merkle root over `chunks`.
        root: u64,
        /// Retired-prefix length at the checkpoint.
        retired: u64,
        /// Combined retired-order digest at the checkpoint.
        digest: u64,
        /// Content hashes of the blob's chunks, in order.
        chunks: Vec<u64>,
    },
}

impl DurableRecord {
    fn encode_payload(&self, out: &mut String) {
        match self {
            DurableRecord::Spec { text } => {
                out.push_str("spec ");
                escape(text, out);
            }
            DurableRecord::Append {
                lsn,
                subthread,
                checksum,
                op,
            } => {
                let _ = write!(out, "append {lsn} {subthread} {checksum:016x} ");
                escape(op, out);
            }
            DurableRecord::Seal { lsn, checksum } => {
                let _ = write!(out, "seal {lsn} {checksum:016x}");
            }
            DurableRecord::Undo { lsn } => {
                let _ = write!(out, "undo {lsn}");
            }
            DurableRecord::Prune { subthread, count } => {
                let _ = write!(out, "prune {subthread} {count}");
            }
            DurableRecord::Retire {
                subthread,
                thread,
                kind,
                retired,
                digest,
            } => {
                let _ = write!(out, "retire {subthread} {thread} {kind} {retired} {digest:016x}");
            }
            DurableRecord::Checkpoint {
                root,
                retired,
                digest,
                chunks,
            } => {
                let _ = write!(out, "ckpt {root:016x} {retired} {digest:016x} {}", chunks.len());
                for c in chunks {
                    let _ = write!(out, " {c:016x}");
                }
            }
        }
    }

    /// Encodes the record as one checksummed line (with trailing `\n`).
    pub fn encode_line(&self) -> String {
        let mut payload = String::with_capacity(64);
        self.encode_payload(&mut payload);
        let crc = fnv1a(payload.as_bytes());
        let mut line = String::with_capacity(payload.len() + 18);
        let _ = writeln!(line, "{crc:016x} {payload}");
        line
    }

    /// Decodes one line (without trailing newline). Returns `None` on a
    /// checksum mismatch or any structural damage — the loader treats
    /// that as the torn tail and truncates there.
    pub fn decode_line(line: &str) -> Option<DurableRecord> {
        let (crc_hex, payload) = line.split_once(' ')?;
        let crc = u64::from_str_radix(crc_hex, 16).ok()?;
        if fnv1a(payload.as_bytes()) != crc {
            return None;
        }
        let (tag, rest) = payload.split_once(' ').unwrap_or((payload, ""));
        match tag {
            "spec" => Some(DurableRecord::Spec {
                text: unescape(rest)?,
            }),
            "append" => {
                let mut it = rest.splitn(4, ' ');
                let lsn = it.next()?.parse().ok()?;
                let subthread = it.next()?.parse().ok()?;
                let checksum = u64::from_str_radix(it.next()?, 16).ok()?;
                let op = unescape(it.next().unwrap_or(""))?;
                Some(DurableRecord::Append {
                    lsn,
                    subthread,
                    checksum,
                    op,
                })
            }
            "seal" => {
                let mut it = rest.split(' ');
                let lsn = it.next()?.parse().ok()?;
                let checksum = u64::from_str_radix(it.next()?, 16).ok()?;
                Some(DurableRecord::Seal { lsn, checksum })
            }
            "undo" => Some(DurableRecord::Undo {
                lsn: rest.parse().ok()?,
            }),
            "prune" => {
                let mut it = rest.split(' ');
                let subthread = it.next()?.parse().ok()?;
                let count = it.next()?.parse().ok()?;
                Some(DurableRecord::Prune { subthread, count })
            }
            "retire" => {
                let mut it = rest.split(' ');
                let subthread = it.next()?.parse().ok()?;
                let thread = it.next()?.parse().ok()?;
                let kind = it.next()?.parse().ok()?;
                let retired = it.next()?.parse().ok()?;
                let digest = u64::from_str_radix(it.next()?, 16).ok()?;
                Some(DurableRecord::Retire {
                    subthread,
                    thread,
                    kind,
                    retired,
                    digest,
                })
            }
            "ckpt" => {
                let mut it = rest.split(' ');
                let root = u64::from_str_radix(it.next()?, 16).ok()?;
                let retired = it.next()?.parse().ok()?;
                let digest = u64::from_str_radix(it.next()?, 16).ok()?;
                let n: usize = it.next()?.parse().ok()?;
                let mut chunks = Vec::with_capacity(n);
                for _ in 0..n {
                    chunks.push(u64::from_str_radix(it.next()?, 16).ok()?);
                }
                if it.next().is_some() {
                    return None;
                }
                Some(DurableRecord::Checkpoint {
                    root,
                    retired,
                    digest,
                    chunks,
                })
            }
            _ => None,
        }
    }
}

/// Checkpoint metadata blob: what the merkle store actually holds.
/// Text-encoded (`retired`/`digest`/per-`thread` lines) so chunks stay
/// inspectable on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Retired-prefix length at the checkpoint.
    pub retired: u64,
    /// Combined retired-order digest at the checkpoint.
    pub digest: u64,
    /// Per-logical-thread `(thread, retired count)` splits.
    pub threads: Vec<(u32, u64)>,
}

impl CheckpointMeta {
    /// Serializes the blob for chunking into the content-addressed store.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::new();
        let _ = writeln!(out, "retired {}", self.retired);
        let _ = writeln!(out, "digest {:016x}", self.digest);
        for (t, n) in &self.threads {
            let _ = writeln!(out, "thread {t} {n}");
        }
        out.into_bytes()
    }

    /// Decodes a reassembled blob; `None` on structural damage.
    pub fn decode(bytes: &[u8]) -> Option<CheckpointMeta> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut retired = None;
        let mut digest = None;
        let mut threads = Vec::new();
        for line in text.lines() {
            let (tag, rest) = line.split_once(' ')?;
            match tag {
                "retired" => retired = Some(rest.parse().ok()?),
                "digest" => digest = Some(u64::from_str_radix(rest, 16).ok()?),
                "thread" => {
                    let (t, n) = rest.split_once(' ')?;
                    threads.push((t.parse().ok()?, n.parse().ok()?));
                }
                _ => return None,
            }
        }
        Some(CheckpointMeta {
            retired: retired?,
            digest: digest?,
            threads,
        })
    }
}

/// Chunk size for checkpoint blobs in the content-addressed store.
pub const CHUNK_SIZE: usize = 1024;

/// A persistence failure. Backends surface these instead of panicking so
/// the engine can poison the run precisely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An I/O operation failed (message includes the path and cause).
    Io(String),
    /// A stored chunk's content no longer matches its hash.
    ChunkCorrupt(u64),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(msg) => write!(f, "persist I/O error: {msg}"),
            PersistError::ChunkCorrupt(h) => {
                write!(f, "content-addressed chunk {h:016x} fails its hash")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Point-in-time operational counters of a backend, mirrored into
/// telemetry (`wal_segments_sealed`, `fsyncs`) at report time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Records written this process lifetime.
    pub records: u64,
    /// Segments sealed (fsync'd and closed).
    pub segments_sealed: u64,
    /// Durability barriers (fsync or in-memory equivalent) issued.
    pub fsyncs: u64,
    /// Chunks newly stored in the content-addressed store.
    pub chunks_stored: u64,
}

/// One retire record reconstructed from the durable log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetireRec {
    /// Sub-thread id as retired in the *previous* process (forensic).
    pub subthread: u64,
    /// Logical thread (verified against the resumed run).
    pub thread: u32,
    /// Sub-thread kind tag (verified against the resumed run).
    pub kind: u8,
    /// 1-based prefix length after this retire.
    pub retired: u64,
    /// Running combined digest after this retire.
    pub digest: u64,
}

/// The newest consistent state reconstructed by a backend's loader: the
/// verified prefix a restarted run resumes (and re-verifies) against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurableImage {
    /// The current epoch's job spec text (records after the last
    /// [`DurableRecord::Spec`]).
    pub spec: Option<String>,
    /// The durable retire prefix, in retirement order.
    pub retires: Vec<RetireRec>,
    /// The newest checkpoint whose merkle root and chunks verified.
    pub checkpoint: Option<CheckpointMeta>,
    /// `Append` records in the epoch.
    pub appends: u64,
    /// `Undo` records in the epoch.
    pub undos: u64,
    /// WAL records pruned in the epoch (sum of `Prune.count`).
    pub prunes: u64,
    /// `Seal` records in the epoch.
    pub seals: u64,
    /// Valid records loaded in the current epoch.
    pub prefix_records: u64,
    /// Whether the loader truncated a torn/corrupt tail.
    pub truncated: bool,
    /// Checkpoint records whose merkle verification failed (dropped).
    pub dropped_checkpoints: u64,
}

impl DurableImage {
    /// Folds a validated record stream into an image. `fetch` resolves a
    /// content hash to its chunk bytes (returning `None` for a missing
    /// or corrupt chunk, which drops the checkpoint).
    pub fn from_records<'a>(
        records: impl IntoIterator<Item = &'a DurableRecord>,
        fetch: &dyn Fn(u64) -> Option<Vec<u8>>,
    ) -> DurableImage {
        let mut img = DurableImage::default();
        for rec in records {
            match rec {
                DurableRecord::Spec { text } => {
                    // New epoch: the resumed run re-logs from scratch.
                    img = DurableImage {
                        spec: Some(text.clone()),
                        ..DurableImage::default()
                    };
                }
                DurableRecord::Append { .. } => img.appends += 1,
                DurableRecord::Seal { .. } => img.seals += 1,
                DurableRecord::Undo { .. } => img.undos += 1,
                DurableRecord::Prune { count, .. } => img.prunes += count,
                DurableRecord::Retire {
                    subthread,
                    thread,
                    kind,
                    retired,
                    digest,
                } => img.retires.push(RetireRec {
                    subthread: *subthread,
                    thread: *thread,
                    kind: *kind,
                    retired: *retired,
                    digest: *digest,
                }),
                DurableRecord::Checkpoint {
                    root,
                    retired,
                    digest,
                    chunks,
                } => {
                    let verified = merkle_root(chunks) == *root
                        && chunks.iter().all(|&h| {
                            fetch(h).is_some_and(|bytes| fnv1a(&bytes) == h)
                        });
                    let meta = verified
                        .then(|| {
                            let mut blob = Vec::new();
                            for &h in chunks {
                                blob.extend_from_slice(&fetch(h)?);
                            }
                            CheckpointMeta::decode(&blob)
                        })
                        .flatten()
                        .filter(|m| m.retired == *retired && m.digest == *digest);
                    match meta {
                        Some(m) => img.checkpoint = Some(m),
                        None => img.dropped_checkpoints += 1,
                    }
                }
            }
            img.prefix_records += 1;
        }
        img
    }

    /// The durable retire-prefix length.
    pub fn retired_len(&self) -> u64 {
        self.retires.len() as u64
    }

    /// Whether the epoch's WAL ledger balances — true only when the
    /// previous run retired everything it appended (i.e. completed).
    pub fn ledger_balanced(&self) -> bool {
        self.appends == self.undos + self.prunes
    }
}

/// The pluggable durable-persistence backend. All methods take `&self`:
/// the engine calls them under its own lock, backends synchronize
/// internally.
pub trait PersistBackend: Send + Sync + Debug {
    /// Appends one record to the durable log.
    fn record(&self, rec: &DurableRecord) -> Result<(), PersistError>;
    /// Stores a chunk in the content-addressed store, returning its
    /// content hash (idempotent: an existing chunk is not rewritten).
    fn put_chunk(&self, bytes: &[u8]) -> Result<u64, PersistError>;
    /// Retrieves a chunk by content hash (`None` if missing/corrupt).
    fn get_chunk(&self, hash: u64) -> Option<Vec<u8>>;
    /// Issues a durability barrier covering all prior records.
    fn sync(&self) -> Result<(), PersistError>;
    /// Operational counters.
    fn stats(&self) -> PersistStats;
    /// Scans the durable state, validates checksums and merkle roots,
    /// and reconstructs the newest consistent image.
    fn load(&self) -> Result<DurableImage, PersistError>;
}

/// In-memory [`PersistBackend`]: identical record semantics with no
/// I/O. Survives an engine drop (in-process crash simulation) but not
/// the process.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    state: Mutex<MemState>,
    fsyncs: AtomicU64,
    records: AtomicU64,
    chunks_stored: AtomicU64,
}

#[derive(Debug, Default)]
struct MemState {
    records: Vec<DurableRecord>,
    chunks: BTreeMap<u64, Vec<u8>>,
}

impl MemoryBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the newest `n` records — simulates a crash that lost an
    /// unsynced tail (for tests).
    pub fn truncate_tail_for_testing(&self, n: usize) {
        let mut st = self.state.lock().unwrap();
        let keep = st.records.len().saturating_sub(n);
        st.records.truncate(keep);
    }

    /// Number of retained records (for tests).
    pub fn record_count(&self) -> usize {
        self.state.lock().unwrap().records.len()
    }
}

impl PersistBackend for MemoryBackend {
    fn record(&self, rec: &DurableRecord) -> Result<(), PersistError> {
        self.state.lock().unwrap().records.push(rec.clone());
        self.records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn put_chunk(&self, bytes: &[u8]) -> Result<u64, PersistError> {
        let hash = fnv1a(bytes);
        let mut st = self.state.lock().unwrap();
        if st.chunks.insert(hash, bytes.to_vec()).is_none() {
            self.chunks_stored.fetch_add(1, Ordering::Relaxed);
        }
        Ok(hash)
    }

    fn get_chunk(&self, hash: u64) -> Option<Vec<u8>> {
        self.state.lock().unwrap().chunks.get(&hash).cloned()
    }

    fn sync(&self) -> Result<(), PersistError> {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> PersistStats {
        PersistStats {
            records: self.records.load(Ordering::Relaxed),
            segments_sealed: 0,
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            chunks_stored: self.chunks_stored.load(Ordering::Relaxed),
        }
    }

    fn load(&self) -> Result<DurableImage, PersistError> {
        let st = self.state.lock().unwrap();
        let fetch = |h: u64| st.chunks.get(&h).cloned();
        Ok(DurableImage::from_records(st.records.iter(), &fetch))
    }
}

/// File-based [`PersistBackend`]: `segments/seg-NNNNNNNN.log` record
/// segments plus `cas/<hash:016x>.chunk` content-addressed chunks under
/// one directory.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    seg_cap: u64,
    state: Mutex<FileState>,
    sealed: AtomicU64,
    fsyncs: AtomicU64,
    records: AtomicU64,
    chunks_stored: AtomicU64,
}

#[derive(Debug)]
struct FileState {
    file: Option<fs::File>,
    seg_ix: u64,
    in_seg: u64,
}

/// Default records per segment before a seal (fsync + close).
pub const DEFAULT_SEGMENT_CAP: u64 = 4096;

impl FileBackend {
    /// Opens (creating if needed) a durable directory. Existing segments
    /// are preserved — new records go to a fresh segment after them, so
    /// a resumed run's new epoch appends rather than overwrites.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FileBackend, PersistError> {
        let dir = dir.into();
        let io = |e: std::io::Error, what: &str| {
            PersistError::Io(format!("{what} ({}): {e}", dir.display()))
        };
        fs::create_dir_all(dir.join("segments")).map_err(|e| io(e, "create segments dir"))?;
        fs::create_dir_all(dir.join("cas")).map_err(|e| io(e, "create cas dir"))?;
        let mut max_seg = None;
        for entry in fs::read_dir(dir.join("segments")).map_err(|e| io(e, "scan segments"))? {
            let entry = entry.map_err(|e| io(e, "scan segments"))?;
            if let Some(ix) = segment_index(&entry.file_name().to_string_lossy()) {
                max_seg = Some(max_seg.map_or(ix, |m: u64| m.max(ix)));
            }
        }
        Ok(FileBackend {
            dir,
            seg_cap: DEFAULT_SEGMENT_CAP,
            state: Mutex::new(FileState {
                file: None,
                seg_ix: max_seg.map_or(0, |m| m + 1),
                in_seg: 0,
            }),
            sealed: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            records: AtomicU64::new(0),
            chunks_stored: AtomicU64::new(0),
        })
    }

    /// Sets the records-per-segment seal threshold.
    pub fn with_segment_cap(mut self, cap: u64) -> FileBackend {
        self.seg_cap = cap.max(1);
        self
    }

    /// The backend's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(&self, ix: u64) -> PathBuf {
        self.dir.join("segments").join(format!("seg-{ix:08}.log"))
    }

    fn chunk_path(&self, hash: u64) -> PathBuf {
        self.dir.join("cas").join(format!("{hash:016x}.chunk"))
    }

    fn seal_segment(&self, st: &mut FileState) -> Result<(), PersistError> {
        if let Some(file) = st.file.take() {
            file.sync_all()
                .map_err(|e| PersistError::Io(format!("seal fsync: {e}")))?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.sealed.fetch_add(1, Ordering::Relaxed);
            st.seg_ix += 1;
            st.in_seg = 0;
        }
        Ok(())
    }
}

fn segment_index(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?.strip_suffix(".log")?.parse().ok()
}

impl PersistBackend for FileBackend {
    fn record(&self, rec: &DurableRecord) -> Result<(), PersistError> {
        let line = rec.encode_line();
        let mut st = self.state.lock().unwrap();
        if st.file.is_none() {
            let path = self.segment_path(st.seg_ix);
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| PersistError::Io(format!("open {}: {e}", path.display())))?;
            st.file = Some(file);
        }
        // Write-through (no buffered writer): a killed process must leave
        // at most one torn line, never a silently dropped buffer.
        st.file
            .as_mut()
            .expect("opened above")
            .write_all(line.as_bytes())
            .map_err(|e| PersistError::Io(format!("append record: {e}")))?;
        st.in_seg += 1;
        self.records.fetch_add(1, Ordering::Relaxed);
        if st.in_seg >= self.seg_cap {
            self.seal_segment(&mut st)?;
        }
        Ok(())
    }

    fn put_chunk(&self, bytes: &[u8]) -> Result<u64, PersistError> {
        let hash = fnv1a(bytes);
        let path = self.chunk_path(hash);
        if path.exists() {
            return Ok(hash); // content-addressed: existing chunk is identical
        }
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, bytes)
            .map_err(|e| PersistError::Io(format!("write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, &path)
            .map_err(|e| PersistError::Io(format!("publish {}: {e}", path.display())))?;
        self.chunks_stored.fetch_add(1, Ordering::Relaxed);
        Ok(hash)
    }

    fn get_chunk(&self, hash: u64) -> Option<Vec<u8>> {
        let bytes = fs::read(self.chunk_path(hash)).ok()?;
        (fnv1a(&bytes) == hash).then_some(bytes)
    }

    fn sync(&self) -> Result<(), PersistError> {
        let st = self.state.lock().unwrap();
        if let Some(file) = st.file.as_ref() {
            file.sync_all()
                .map_err(|e| PersistError::Io(format!("fsync: {e}")))?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn stats(&self) -> PersistStats {
        PersistStats {
            records: self.records.load(Ordering::Relaxed),
            segments_sealed: self.sealed.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            chunks_stored: self.chunks_stored.load(Ordering::Relaxed),
        }
    }

    fn load(&self) -> Result<DurableImage, PersistError> {
        let seg_dir = self.dir.join("segments");
        let mut names = Vec::new();
        for entry in fs::read_dir(&seg_dir)
            .map_err(|e| PersistError::Io(format!("scan {}: {e}", seg_dir.display())))?
        {
            let entry = entry.map_err(|e| PersistError::Io(format!("scan segments: {e}")))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if segment_index(&name).is_some() {
                names.push(name);
            }
        }
        names.sort();
        let mut records = Vec::new();
        let mut truncated = false;
        'segments: for name in &names {
            let path = seg_dir.join(name);
            let bytes = fs::read(&path)
                .map_err(|e| PersistError::Io(format!("read {}: {e}", path.display())))?;
            // A torn tail may not even be UTF-8; lossy conversion feeds
            // the per-line checksum, which rejects the damage.
            let text = String::from_utf8_lossy(&bytes);
            for line in text.split('\n') {
                if line.is_empty() {
                    continue;
                }
                match DurableRecord::decode_line(line) {
                    Some(rec) => records.push(rec),
                    None => {
                        // Newest consistent prefix: everything from the
                        // first damaged line on is discarded, across
                        // this and all later segments.
                        truncated = true;
                        break 'segments;
                    }
                }
            }
        }
        let fetch = |h: u64| self.get_chunk(h);
        let mut img = DurableImage::from_records(records.iter(), &fetch);
        img.truncated = truncated;
        Ok(img)
    }
}

/// Flips one byte near the end of the newest non-empty segment —
/// deliberate tail corruption for crash-recovery tests. Returns `false`
/// when there is nothing to corrupt.
pub fn corrupt_tail_for_testing(dir: &Path) -> std::io::Result<bool> {
    let seg_dir = dir.join("segments");
    let mut names: Vec<_> = fs::read_dir(&seg_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| segment_index(n).is_some())
        .collect();
    names.sort();
    for name in names.iter().rev() {
        let path = seg_dir.join(name);
        let mut bytes = fs::read(&path)?;
        if bytes.len() < 2 {
            continue;
        }
        let ix = bytes.len() - 2; // keep the trailing newline intact
        bytes[ix] ^= 0x55;
        fs::write(&path, bytes)?;
        return Ok(true);
    }
    Ok(false)
}

/// Creates (and returns) a unique scratch directory under the system
/// temp dir — shared helper for the durability tests across the
/// workspace (no tempfile dependency in the vendored build).
pub fn unique_temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "gprs-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = fs::create_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<DurableRecord> {
        vec![
            DurableRecord::Spec {
                text: "submit fetchadd 7 0 0\nwith %25 tricks\r".into(),
            },
            DurableRecord::Append {
                lsn: 0,
                subthread: 3,
                checksum: 0,
                op: "Enq { q: 1, item: 2 }".into(),
            },
            DurableRecord::Seal {
                lsn: 0,
                checksum: 0xdead_beef,
            },
            DurableRecord::Undo { lsn: 0 },
            DurableRecord::Append {
                lsn: 1,
                subthread: 4,
                checksum: 77,
                op: "Lock { l: 9 }".into(),
            },
            DurableRecord::Prune {
                subthread: 4,
                count: 1,
            },
            DurableRecord::Retire {
                subthread: 4,
                thread: 2,
                kind: 1,
                retired: 1,
                digest: 0x1234,
            },
        ]
    }

    #[test]
    fn record_lines_roundtrip() {
        for rec in sample_records() {
            let line = rec.encode_line();
            let decoded = DurableRecord::decode_line(line.trim_end_matches('\n')).unwrap();
            assert_eq!(decoded, rec, "roundtrip of {rec:?}");
        }
    }

    #[test]
    fn damaged_lines_are_rejected() {
        let line = sample_records()[1].encode_line();
        let line = line.trim_end_matches('\n');
        let mut flipped = line.to_string().into_bytes();
        let ix = flipped.len() - 1;
        flipped[ix] ^= 0x20;
        let flipped = String::from_utf8(flipped).unwrap();
        assert!(DurableRecord::decode_line(&flipped).is_none());
        assert!(DurableRecord::decode_line("").is_none());
        assert!(DurableRecord::decode_line("zzzz nonsense").is_none());
    }

    #[test]
    fn merkle_root_is_order_sensitive() {
        let a = merkle_root(&[1, 2, 3]);
        let b = merkle_root(&[3, 2, 1]);
        assert_ne!(a, b);
        assert_eq!(merkle_root(&[7]), 7, "single leaf is its own root");
        assert_ne!(merkle_root(&[]), merkle_root(&[0]));
    }

    #[test]
    fn checkpoint_meta_roundtrips() {
        let meta = CheckpointMeta {
            retired: 42,
            digest: 0xfeed_f00d,
            threads: vec![(0, 20), (1, 22)],
        };
        assert_eq!(CheckpointMeta::decode(&meta.encode()), Some(meta));
        assert_eq!(CheckpointMeta::decode(b"garbage"), None);
    }

    fn store_checkpoint(
        backend: &dyn PersistBackend,
        meta: &CheckpointMeta,
    ) -> DurableRecord {
        let blob = meta.encode();
        let chunks: Vec<u64> = blob
            .chunks(CHUNK_SIZE)
            .map(|c| backend.put_chunk(c).unwrap())
            .collect();
        DurableRecord::Checkpoint {
            root: merkle_root(&chunks),
            retired: meta.retired,
            digest: meta.digest,
            chunks,
        }
    }

    #[test]
    fn memory_backend_roundtrips_an_epoch() {
        let be = MemoryBackend::new();
        be.record(&DurableRecord::Spec { text: "job A".into() }).unwrap();
        for rec in sample_records().into_iter().skip(1) {
            be.record(&rec).unwrap();
        }
        let meta = CheckpointMeta {
            retired: 1,
            digest: 0x1234,
            threads: vec![(2, 1)],
        };
        let ckpt = store_checkpoint(&be, &meta);
        be.record(&ckpt).unwrap();
        be.sync().unwrap();
        let img = be.load().unwrap();
        assert_eq!(img.spec.as_deref(), Some("job A"));
        assert_eq!(img.retired_len(), 1);
        assert_eq!(img.checkpoint, Some(meta));
        assert_eq!(img.appends, 2);
        assert_eq!(img.undos, 1);
        assert_eq!(img.prunes, 1);
        assert!(img.ledger_balanced());
        assert_eq!(be.stats().fsyncs, 1);
    }

    #[test]
    fn a_new_spec_opens_a_new_epoch() {
        let be = MemoryBackend::new();
        be.record(&DurableRecord::Spec { text: "old".into() }).unwrap();
        be.record(&DurableRecord::Undo { lsn: 0 }).unwrap();
        be.record(&DurableRecord::Spec { text: "new".into() }).unwrap();
        let img = be.load().unwrap();
        assert_eq!(img.spec.as_deref(), Some("new"));
        assert_eq!(img.undos, 0, "old epoch's records are superseded");
        assert_eq!(img.prefix_records, 1);
    }

    #[test]
    fn file_backend_roundtrips_and_seals_segments() {
        let dir = unique_temp_dir("persist-roundtrip");
        let be = FileBackend::open(&dir).unwrap().with_segment_cap(4);
        let recs = sample_records();
        for rec in &recs {
            be.record(rec).unwrap();
        }
        be.sync().unwrap();
        assert!(be.stats().segments_sealed >= 1, "cap 4, 7 records");
        let img = be.load().unwrap();
        assert_eq!(img.prefix_records, recs.len() as u64);
        assert!(!img.truncated);
        assert_eq!(img.retires.len(), 1);

        // A second backend over the same dir appends a fresh epoch.
        drop(be);
        let be2 = FileBackend::open(&dir).unwrap();
        be2.record(&DurableRecord::Spec { text: "resumed".into() }).unwrap();
        let img2 = be2.load().unwrap();
        assert_eq!(img2.spec.as_deref(), Some("resumed"));
        assert_eq!(img2.prefix_records, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_truncates_to_consistent_prefix() {
        let dir = unique_temp_dir("persist-corrupt");
        let be = FileBackend::open(&dir).unwrap();
        for rec in sample_records() {
            be.record(&rec).unwrap();
        }
        drop(be);
        assert!(corrupt_tail_for_testing(&dir).unwrap());
        let be = FileBackend::open(&dir).unwrap();
        let img = be.load().unwrap();
        assert!(img.truncated);
        assert_eq!(img.prefix_records, sample_records().len() as u64 - 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unverifiable_checkpoint_is_dropped_not_trusted() {
        let dir = unique_temp_dir("persist-merkle");
        let be = FileBackend::open(&dir).unwrap();
        let meta = CheckpointMeta {
            retired: 9,
            digest: 0xabcd,
            threads: vec![(0, 9)],
        };
        let ckpt = store_checkpoint(&be, &meta);
        be.record(&ckpt).unwrap();
        // Destroy the chunk the record points at.
        if let DurableRecord::Checkpoint { chunks, .. } = &ckpt {
            fs::write(be.chunk_path(chunks[0]), b"not the chunk").unwrap();
        }
        let img = be.load().unwrap();
        assert_eq!(img.checkpoint, None);
        assert_eq!(img.dropped_checkpoints, 1);
        assert!(!img.truncated, "the log itself is intact");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multi_chunk_checkpoints_verify_through_the_merkle_root() {
        let be = MemoryBackend::new();
        let meta = CheckpointMeta {
            retired: 500,
            digest: 0x55aa,
            threads: (0..200).map(|t| (t, 2u64)).collect(),
        };
        assert!(meta.encode().len() > CHUNK_SIZE, "forces multiple chunks");
        let ckpt = store_checkpoint(&be, &meta);
        if let DurableRecord::Checkpoint { chunks, .. } = &ckpt {
            assert!(chunks.len() > 1);
        }
        be.record(&ckpt).unwrap();
        let img = be.load().unwrap();
        assert_eq!(img.checkpoint, Some(meta));
    }
}
