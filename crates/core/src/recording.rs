//! Recorded-schedule format for deterministic record/replay.
//!
//! GPRS's deterministic total order makes the classic record/replay loop
//! (Ronsse & De Bosschere) nearly free: a run is fully reproduced by the
//! sequence of *turn-consuming events* — grants (each opening a sub-thread)
//! plus the structural barrier-arrivals and thread exits that consume the
//! token without opening one. A [`Recording`] captures that sequence as
//! `(position, thread, kind)` triples with a running FNV digest, together
//! with the workload identity (name + seed), the drive mode, the schedule
//! tag, and an optional injection-plan overlay — everything a replayer
//! needs to rebuild the run and everything a verifier needs to prove it
//! replayed faithfully (the footer carries the run's schedule and retired
//! hashes as the self-verification oracle).
//!
//! Replay is enforced through the existing [`crate::order::OrderGate`]
//! machinery: a [`ReplaySchedule`] is an [`OrderingPolicy`] whose holder is
//! simply the thread of the next recorded event, so the next-grant ticket
//! resolves from the recording instead of a live schedule policy. Wasted
//! polling turns (empty-FIFO passes) are *not* recorded — they mutate no
//! program state — so the replay policy's [`OrderingPolicy::pass`] keeps
//! the cursor in place and the engine re-polls until the recorded event
//! becomes grantable (or poisons loudly on genuine divergence).
//!
//! The on-disk format follows the [`crate::persist`] idiom: one checksummed
//! text line per record (`<fnv1a:016x> <payload>`), percent-escaped free
//! text, and a mandatory `end` footer whose absence names the recording
//! truncated instead of silently replaying a prefix.

use crate::error::{GprsError, Result};
use crate::ids::{GroupId, ThreadId};
use crate::order::OrderingPolicy;
use crate::persist::fnv1a;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Current format version (the `gprs-recording v<N>` banner line).
pub const RECORDING_VERSION: u32 = 1;

/// Event kind tag for a barrier arrival (consumes the turn, opens no
/// sub-thread). Disjoint from every [`crate::subthread::SubThreadKind`] tag.
pub const EVT_ARRIVE: u8 = 10;
/// Event kind tag for a thread exit (consumes the turn, opens no
/// sub-thread).
pub const EVT_EXIT: u8 = 11;

/// Human-readable name for an event kind tag (sub-thread kinds 0–9 plus the
/// structural arrive/exit tags).
pub fn event_kind_name(tag: u8) -> &'static str {
    match tag {
        0 => "initial",
        1 => "fork-child",
        2 => "fork-continuation",
        3 => "join-continuation",
        4 => "critical-section",
        5 => "atomic-op",
        6 => "barrier-continuation",
        7 => "channel-access",
        8 => "cpr-region",
        9 => "serialized",
        EVT_ARRIVE => "barrier-arrive",
        EVT_EXIT => "exit",
        _ => "unknown",
    }
}

/// How the recorded run was driven. Retirement (and grant) order is
/// deterministic *per drive mode*, not across modes (the PR-7 durable
/// replay discovery), so replaying a recording under a different drive mode
/// is rejected loudly instead of diverging confusingly mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveMode {
    /// Multi-worker pool (`Gprs::run`).
    Pool,
    /// Cooperative single-driver session (`Gprs::into_session`, the serve
    /// pool's quantum driver).
    Session,
    /// The virtual-time simulator.
    Sim,
}

impl DriveMode {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            DriveMode::Pool => "pool",
            DriveMode::Session => "session",
            DriveMode::Sim => "sim",
        }
    }

    /// Parses a wire name.
    pub fn parse(text: &str) -> Option<DriveMode> {
        match text {
            "pool" => Some(DriveMode::Pool),
            "session" => Some(DriveMode::Session),
            "sim" => Some(DriveMode::Sim),
            _ => None,
        }
    }
}

impl fmt::Display for DriveMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One turn-consuming event. The position is implicit (the event's index);
/// `digest` is the running FNV chain *after* folding this event, so a
/// replayer can verify any prefix without reading the footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Raw [`ThreadId`] that consumed the turn.
    pub thread: u32,
    /// Sub-thread kind tag (0–9) or [`EVT_ARRIVE`] / [`EVT_EXIT`].
    pub kind: u8,
    /// Running digest after this event.
    pub digest: u64,
}

/// Identity of the recorded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordingHeader {
    /// Workload / program name (a campaign registry name or a serve
    /// workload).
    pub workload: String,
    /// Workload seed (serve spec seed, sim script seed; 0 when unused).
    pub seed: u64,
    /// How the run was driven (see [`DriveMode`]).
    pub mode: DriveMode,
    /// Live schedule tag the recording was made under (`R`/`B`/`W`).
    pub schedule: String,
    /// Worker/context count of the recorded run.
    pub workers: u32,
    /// Full canonical job-spec line, when the embedder has one (serve).
    pub spec: Option<String>,
    /// Injection-plan overlay ([`crate::chaos::ChaosPlan`] text) armed on
    /// the recorded run, replayed identically on replay.
    pub chaos: Option<String>,
}

/// Terminal state of the recorded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordedOutcome {
    /// The run completed; the event stream is the whole execution.
    Complete,
    /// The run poisoned (or was cancelled) with this diagnostic; the event
    /// stream is the prefix up to the failure. A replay that consumes the
    /// whole stream has faithfully reproduced the failing prefix.
    Poisoned(String),
}

/// A complete recorded schedule: header, event stream, self-verification
/// footer.
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// Run identity.
    pub header: RecordingHeader,
    /// Turn-consuming events in total order.
    pub events: Vec<RecordedEvent>,
    /// The recorded run's order-sensitive schedule hash digest.
    pub sched_hash: u64,
    /// The recorded run's commutative retired-order hash digest.
    pub retired_hash: u64,
    /// Terminal state of the recorded run.
    pub outcome: RecordedOutcome,
}

/// Errors naming exactly what is wrong with a recording artifact. Replay
/// tooling must degrade to these — never panic — on damaged input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordingError {
    /// Filesystem-level failure.
    Io(String),
    /// A line failed its checksum or did not parse.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The mandatory `end` footer is missing — the file is a torn prefix.
    Truncated {
        /// Events successfully read before the tear.
        events: usize,
    },
    /// Unknown banner / version.
    Version(String),
    /// The footer's event count disagrees with the stream.
    CountMismatch {
        /// Count claimed by the footer.
        footer: u64,
        /// Events actually present.
        events: usize,
    },
    /// An event's running digest does not extend the chain — the stream was
    /// edited or reordered.
    DigestMismatch {
        /// Position of the first bad event.
        position: u64,
    },
    /// The recording was made under a different drive mode than the replay
    /// is using (grant order is only deterministic per mode).
    ModeMismatch {
        /// Mode stamped in the recording header.
        recorded: DriveMode,
        /// Mode the replayer is driving with.
        driving: DriveMode,
    },
}

impl fmt::Display for RecordingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordingError::Io(e) => write!(f, "recording io error: {e}"),
            RecordingError::Corrupt { line, reason } => {
                write!(f, "corrupt recording at line {line}: {reason}")
            }
            RecordingError::Truncated { events } => write!(
                f,
                "truncated recording: no `end` footer after {events} events \
                 (torn write or partial copy)"
            ),
            RecordingError::Version(v) => write!(f, "unsupported recording banner {v:?}"),
            RecordingError::CountMismatch { footer, events } => write!(
                f,
                "corrupt recording: footer claims {footer} events but {events} are present"
            ),
            RecordingError::DigestMismatch { position } => write!(
                f,
                "corrupt recording: running digest broken at event {position} \
                 (stream edited or reordered)"
            ),
            RecordingError::ModeMismatch { recorded, driving } => write!(
                f,
                "replay drive-mode mismatch: recording was made in {recorded} mode \
                 but is being replayed in {driving} mode (grant order is only \
                 deterministic per drive mode)"
            ),
        }
    }
}

impl std::error::Error for RecordingError {}

/// Folds one event into the running digest chain.
pub fn fold_event(digest: u64, position: u64, thread: u32, kind: u8) -> u64 {
    let mut buf = [0u8; 21];
    buf[..8].copy_from_slice(&digest.to_le_bytes());
    buf[8..16].copy_from_slice(&position.to_le_bytes());
    buf[16..20].copy_from_slice(&thread.to_le_bytes());
    buf[20] = kind;
    fnv1a(&buf)
}

/// Seed of the digest chain (domain-separated from other FNV users).
pub fn digest_seed() -> u64 {
    fnv1a(b"gprs-recording-v1")
}

/// Streaming builder: the engines feed it one call per turn-consuming
/// event; [`Recorder::finish`] seals the footer.
#[derive(Debug)]
pub struct Recorder {
    header: RecordingHeader,
    events: Vec<RecordedEvent>,
    digest: u64,
}

impl Recorder {
    /// An empty recorder for the given run identity.
    pub fn new(header: RecordingHeader) -> Self {
        Recorder {
            header,
            events: Vec::new(),
            digest: digest_seed(),
        }
    }

    /// Records one turn-consuming event.
    pub fn record_event(&mut self, thread: u32, kind: u8) {
        let position = self.events.len() as u64;
        self.digest = fold_event(self.digest, position, thread, kind);
        self.events.push(RecordedEvent {
            thread,
            kind,
            digest: self.digest,
        });
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Re-stamps the drive mode (the builder cannot know how the run will
    /// be driven; the drive entry point stamps it).
    pub fn set_mode(&mut self, mode: DriveMode) {
        self.header.mode = mode;
    }

    /// Seals the recording with the run's final hash digests and outcome.
    pub fn finish(self, sched_hash: u64, retired_hash: u64, outcome: RecordedOutcome) -> Recording {
        Recording {
            header: self.header,
            events: self.events,
            sched_hash,
            retired_hash,
            outcome,
        }
    }
}

fn escape(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
}

fn unescape(text: &str) -> Option<String> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next()?;
        let lo = chars.next()?;
        let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).ok()?;
        out.push(byte as char);
    }
    Some(out)
}

fn push_line(out: &mut String, payload: &str) {
    use fmt::Write as _;
    let _ = writeln!(out, "{:016x} {payload}", fnv1a(payload.as_bytes()));
}

impl Recording {
    /// Serializes the recording as checksummed text lines.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 40);
        push_line(&mut out, &format!("gprs-recording v{RECORDING_VERSION}"));
        let mut esc = String::new();
        escape(&self.header.workload, &mut esc);
        push_line(&mut out, &format!("workload {esc}"));
        push_line(&mut out, &format!("seed {}", self.header.seed));
        push_line(&mut out, &format!("mode {}", self.header.mode));
        esc.clear();
        escape(&self.header.schedule, &mut esc);
        push_line(&mut out, &format!("schedule {esc}"));
        push_line(&mut out, &format!("workers {}", self.header.workers));
        if let Some(spec) = &self.header.spec {
            esc.clear();
            escape(spec, &mut esc);
            push_line(&mut out, &format!("spec {esc}"));
        }
        if let Some(chaos) = &self.header.chaos {
            esc.clear();
            escape(chaos, &mut esc);
            push_line(&mut out, &format!("chaos {esc}"));
        }
        for (pos, e) in self.events.iter().enumerate() {
            push_line(
                &mut out,
                &format!("evt {pos} {} {} {:016x}", e.thread, e.kind, e.digest),
            );
        }
        let outcome = match &self.outcome {
            RecordedOutcome::Complete => "complete".to_string(),
            RecordedOutcome::Poisoned(msg) => {
                esc.clear();
                escape(msg, &mut esc);
                format!("poisoned {esc}")
            }
        };
        push_line(
            &mut out,
            &format!(
                "end {} {:016x} {:016x} {outcome}",
                self.events.len(),
                self.sched_hash,
                self.retired_hash
            ),
        );
        out
    }

    /// Parses checksummed recording text, validating every line checksum,
    /// the digest chain, and the footer.
    ///
    /// # Errors
    /// A [`RecordingError`] naming the exact damage.
    pub fn parse(text: &str) -> std::result::Result<Recording, RecordingError> {
        let mut lines = text.lines().enumerate();
        let mut next_payload = |what: &str| -> std::result::Result<Option<(usize, String)>, RecordingError> {
            let Some((ix, raw)) = lines.next() else {
                return Ok(None);
            };
            let line = ix + 1;
            let (ck, payload) = raw.split_once(' ').ok_or(RecordingError::Corrupt {
                line,
                reason: format!("missing checksum field in {what}"),
            })?;
            let ck = u64::from_str_radix(ck, 16).map_err(|_| RecordingError::Corrupt {
                line,
                reason: "unparseable checksum".into(),
            })?;
            if ck != fnv1a(payload.as_bytes()) {
                return Err(RecordingError::Corrupt {
                    line,
                    reason: "line checksum mismatch (torn or edited line)".into(),
                });
            }
            Ok(Some((line, payload.to_string())))
        };

        let (line, banner) = next_payload("banner")?.ok_or(RecordingError::Truncated { events: 0 })?;
        if banner != format!("gprs-recording v{RECORDING_VERSION}") {
            return Err(if banner.starts_with("gprs-recording") {
                RecordingError::Version(banner)
            } else {
                RecordingError::Corrupt {
                    line,
                    reason: format!("not a recording banner: {banner:?}"),
                }
            });
        }

        let mut header = RecordingHeader {
            workload: String::new(),
            seed: 0,
            mode: DriveMode::Pool,
            schedule: String::new(),
            workers: 0,
            spec: None,
            chaos: None,
        };
        let mut events: Vec<RecordedEvent> = Vec::new();
        let mut digest = digest_seed();
        let mut footer: Option<(u64, u64, u64, RecordedOutcome)> = None;

        while let Some((line, payload)) = next_payload("record")? {
            let corrupt = |reason: String| RecordingError::Corrupt { line, reason };
            let mut it = payload.splitn(2, ' ');
            let tag = it.next().unwrap_or_default();
            let rest = it.next().unwrap_or_default();
            match tag {
                "workload" => {
                    header.workload = unescape(rest)
                        .ok_or_else(|| corrupt("bad escaping in workload".into()))?;
                }
                "seed" => {
                    header.seed = rest
                        .parse()
                        .map_err(|_| corrupt(format!("bad seed {rest:?}")))?;
                }
                "mode" => {
                    header.mode = DriveMode::parse(rest)
                        .ok_or_else(|| corrupt(format!("unknown drive mode {rest:?}")))?;
                }
                "schedule" => {
                    header.schedule = unescape(rest)
                        .ok_or_else(|| corrupt("bad escaping in schedule".into()))?;
                }
                "workers" => {
                    header.workers = rest
                        .parse()
                        .map_err(|_| corrupt(format!("bad workers {rest:?}")))?;
                }
                "spec" => {
                    header.spec =
                        Some(unescape(rest).ok_or_else(|| corrupt("bad escaping in spec".into()))?);
                }
                "chaos" => {
                    header.chaos = Some(
                        unescape(rest).ok_or_else(|| corrupt("bad escaping in chaos".into()))?,
                    );
                }
                "evt" => {
                    let mut f = rest.split(' ');
                    let pos: u64 = f
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| corrupt("bad event position".into()))?;
                    let thread: u32 = f
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| corrupt("bad event thread".into()))?;
                    let kind: u8 = f
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| corrupt("bad event kind".into()))?;
                    let rec_digest = f
                        .next()
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .ok_or_else(|| corrupt("bad event digest".into()))?;
                    if pos != events.len() as u64 {
                        return Err(corrupt(format!(
                            "event position {pos} out of order (expected {})",
                            events.len()
                        )));
                    }
                    digest = fold_event(digest, pos, thread, kind);
                    if digest != rec_digest {
                        return Err(RecordingError::DigestMismatch { position: pos });
                    }
                    events.push(RecordedEvent {
                        thread,
                        kind,
                        digest,
                    });
                }
                "end" => {
                    let mut f = rest.splitn(4, ' ');
                    let count: u64 = f
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| corrupt("bad footer count".into()))?;
                    let sched = f
                        .next()
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .ok_or_else(|| corrupt("bad footer schedule hash".into()))?;
                    let retired = f
                        .next()
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .ok_or_else(|| corrupt("bad footer retired hash".into()))?;
                    let outcome = match f.next().unwrap_or_default() {
                        "complete" => RecordedOutcome::Complete,
                        other => match other.strip_prefix("poisoned ").or(match other {
                            "poisoned" => Some(""),
                            _ => None,
                        }) {
                            Some(msg) => RecordedOutcome::Poisoned(
                                unescape(msg)
                                    .ok_or_else(|| corrupt("bad escaping in outcome".into()))?,
                            ),
                            None => {
                                return Err(corrupt(format!("unknown outcome {other:?}")));
                            }
                        },
                    };
                    footer = Some((count, sched, retired, outcome));
                    break;
                }
                other => {
                    // Unknown record tags are an error, not skipped: a
                    // recording is an exact replay contract, and tolerating
                    // unknown lines would silently change what replays.
                    return Err(corrupt(format!("unknown record tag {other:?}")));
                }
            }
        }

        let Some((count, sched_hash, retired_hash, outcome)) = footer else {
            return Err(RecordingError::Truncated {
                events: events.len(),
            });
        };
        if count != events.len() as u64 {
            return Err(RecordingError::CountMismatch {
                footer: count,
                events: events.len(),
            });
        }
        Ok(Recording {
            header,
            events,
            sched_hash,
            retired_hash,
            outcome,
        })
    }

    /// Writes the recording to `path`.
    ///
    /// # Errors
    /// [`RecordingError::Io`].
    pub fn save(&self, path: &Path) -> std::result::Result<(), RecordingError> {
        std::fs::write(path, self.to_text())
            .map_err(|e| RecordingError::Io(format!("{}: {e}", path.display())))
    }

    /// Loads and validates a recording from `path`.
    ///
    /// # Errors
    /// A [`RecordingError`] naming the exact damage.
    pub fn load(path: &Path) -> std::result::Result<Recording, RecordingError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| RecordingError::Io(format!("{}: {e}", path.display())))?;
        Recording::parse(&text)
    }
}

/// Where two recordings first diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordingDiff {
    /// Bit-identical schedules (headers may still differ — compare
    /// [`Recording::header`] directly if that matters).
    Identical,
    /// The event streams diverge at this position (`None` = that recording
    /// ended before the position).
    Event {
        /// First divergent position.
        position: u64,
        /// Event in the first recording, if present.
        a: Option<RecordedEvent>,
        /// Event in the second recording, if present.
        b: Option<RecordedEvent>,
    },
    /// Event streams identical but a footer digest differs (same grants,
    /// different retirement interleaving — or an edited footer).
    Footer {
        /// Which digest differs (`"schedule-hash"` / `"retired-hash"`).
        what: &'static str,
        /// First recording's value.
        a: u64,
        /// Second recording's value.
        b: u64,
    },
}

impl fmt::Display for RecordingDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordingDiff::Identical => write!(f, "identical schedules"),
            RecordingDiff::Event { position, a, b } => {
                let show = |e: &Option<RecordedEvent>| match e {
                    Some(e) => format!(
                        "(thread {}, {})",
                        e.thread,
                        event_kind_name(e.kind)
                    ),
                    None => "<end of recording>".to_string(),
                };
                write!(
                    f,
                    "first divergence at event {position}: {} vs {}",
                    show(a),
                    show(b)
                )
            }
            RecordingDiff::Footer { what, a, b } => {
                write!(f, "schedules identical but {what} differs: {a:016x} vs {b:016x}")
            }
        }
    }
}

/// Compares two recordings' event streams and reports the first divergent
/// event (the `gprs-replay diff` primitive).
pub fn first_divergence(a: &Recording, b: &Recording) -> RecordingDiff {
    let n = a.events.len().max(b.events.len());
    for pos in 0..n {
        let ea = a.events.get(pos);
        let eb = b.events.get(pos);
        let same = match (ea, eb) {
            (Some(x), Some(y)) => x.thread == y.thread && x.kind == y.kind,
            _ => false,
        };
        if !same {
            return RecordingDiff::Event {
                position: pos as u64,
                a: ea.copied(),
                b: eb.copied(),
            };
        }
    }
    if a.sched_hash != b.sched_hash {
        return RecordingDiff::Footer {
            what: "schedule-hash",
            a: a.sched_hash,
            b: b.sched_hash,
        };
    }
    if a.retired_hash != b.retired_hash {
        return RecordingDiff::Footer {
            what: "retired-hash",
            a: a.retired_hash,
            b: b.retired_hash,
        };
    }
    RecordingDiff::Identical
}

/// An [`OrderingPolicy`] that replays a recorded event stream: the holder
/// is the thread of the next recorded event, [`OrderingPolicy::advance`]
/// moves to the following event, and wasted polling turns
/// ([`OrderingPolicy::pass`]) keep the cursor in place — under a faithful
/// replay the recorded holder's want always becomes grantable, so a
/// persistent poll is a divergence the engine poisons on.
///
/// Past the end of the tape the holder is `None`; the engine reports
/// exhaustion (expected for recordings of poisoned runs, a named
/// divergence otherwise).
#[derive(Debug)]
pub struct ReplaySchedule {
    events: Arc<Vec<RecordedEvent>>,
    cursor: usize,
    threads: Vec<ThreadId>,
}

impl ReplaySchedule {
    /// A replay policy over the given event stream.
    pub fn new(events: Arc<Vec<RecordedEvent>>) -> Self {
        ReplaySchedule {
            events,
            cursor: 0,
            threads: Vec::new(),
        }
    }

    /// Convenience constructor cloning a recording's events.
    pub fn from_recording(rec: &Recording) -> Self {
        Self::new(Arc::new(rec.events.clone()))
    }

    /// The replay cursor (events consumed so far).
    pub fn position(&self) -> usize {
        self.cursor
    }
}

impl OrderingPolicy for ReplaySchedule {
    fn register_thread(&mut self, thread: ThreadId, _group: GroupId, _weight: u32) -> Result<()> {
        if self.threads.contains(&thread) {
            return Err(GprsError::DuplicateThread(thread));
        }
        self.threads.push(thread);
        Ok(())
    }

    fn deregister_thread(&mut self, thread: ThreadId) -> Result<()> {
        let ix = self
            .threads
            .iter()
            .position(|&t| t == thread)
            .ok_or(GprsError::UnknownThread(thread))?;
        self.threads.remove(ix);
        Ok(())
    }

    fn holder(&self) -> Option<ThreadId> {
        self.events
            .get(self.cursor)
            .map(|e| ThreadId::new(e.thread))
    }

    fn advance(&mut self) {
        if self.cursor < self.events.len() {
            self.cursor += 1;
        }
    }

    fn pass(&mut self) {
        // A wasted polling turn is not a recorded event: hold the cursor so
        // the recorded holder is re-polled once the blocking condition
        // clears (live schedules rotate here; see the trait docs).
    }

    fn len(&self) -> usize {
        self.threads.len()
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> RecordingHeader {
        RecordingHeader {
            workload: "beacon".into(),
            seed: 7,
            mode: DriveMode::Session,
            schedule: "B".into(),
            workers: 4,
            spec: Some("workload=beacon seed=7".into()),
            chaos: Some("grant 24 kind=thermal scope=global victim=holder burst=1".into()),
        }
    }

    fn sample() -> Recording {
        let mut r = Recorder::new(sample_header());
        r.record_event(0, 0);
        r.record_event(1, 0);
        r.record_event(0, 5);
        r.record_event(1, EVT_ARRIVE);
        r.record_event(0, EVT_EXIT);
        r.finish(0xabc, 0xdef, RecordedOutcome::Complete)
    }

    #[test]
    fn roundtrips_through_text() {
        let rec = sample();
        let parsed = Recording::parse(&rec.to_text()).expect("roundtrip");
        assert_eq!(parsed, rec);
        let mut poisoned = sample();
        poisoned.outcome = RecordedOutcome::Poisoned("deadline: 2 quanta\nover".into());
        let parsed = Recording::parse(&poisoned.to_text()).expect("poisoned roundtrip");
        assert_eq!(parsed, poisoned);
    }

    #[test]
    fn truncation_and_corruption_are_named() {
        let rec = sample();
        let text = rec.to_text();
        // Drop the footer: truncated.
        let torn: String = text
            .lines()
            .take(text.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(
            Recording::parse(&torn),
            Err(RecordingError::Truncated { events: 5 })
        );
        // Flip a byte inside an event line: checksum catches it.
        let evil = text.replacen("evt 2 0 5", "evt 2 1 5", 1);
        assert!(matches!(
            Recording::parse(&evil),
            Err(RecordingError::Corrupt { .. })
        ));
        // Empty file: truncated at zero events.
        assert_eq!(
            Recording::parse(""),
            Err(RecordingError::Truncated { events: 0 })
        );
    }

    #[test]
    fn digest_chain_rejects_reordering() {
        let rec = sample();
        let mut swapped = rec.clone();
        swapped.events.swap(1, 2);
        // Re-serialize with the (now wrong) stored digests.
        assert!(matches!(
            Recording::parse(&swapped.to_text()),
            Err(RecordingError::DigestMismatch { position: 1 })
        ));
    }

    #[test]
    fn diff_finds_first_divergence() {
        let a = sample();
        assert_eq!(first_divergence(&a, &a), RecordingDiff::Identical);
        let mut r = Recorder::new(sample_header());
        r.record_event(0, 0);
        r.record_event(1, 0);
        r.record_event(1, 5); // diverges here (thread 1, not 0)
        let b = r.finish(0xabc, 0xdef, RecordedOutcome::Complete);
        match first_divergence(&a, &b) {
            RecordingDiff::Event { position: 2, a: Some(ea), b: Some(eb) } => {
                assert_eq!(ea.thread, 0);
                assert_eq!(eb.thread, 1);
            }
            other => panic!("wrong diff: {other:?}"),
        }
        // Prefix relationship: divergence at the shorter stream's end.
        let mut c = sample();
        c.events.truncate(3);
        match first_divergence(&a, &c) {
            RecordingDiff::Event { position: 3, b: None, .. } => {}
            other => panic!("wrong diff: {other:?}"),
        }
    }

    #[test]
    fn replay_schedule_follows_the_tape() {
        let rec = sample();
        let mut p = ReplaySchedule::from_recording(&rec);
        p.register_thread(ThreadId::new(0), GroupId::new(0), 1).unwrap();
        p.register_thread(ThreadId::new(1), GroupId::new(0), 1).unwrap();
        assert_eq!(p.holder(), Some(ThreadId::new(0)));
        p.advance();
        assert_eq!(p.holder(), Some(ThreadId::new(1)));
        // A wasted poll must not move the cursor.
        p.pass();
        assert_eq!(p.holder(), Some(ThreadId::new(1)));
        p.advance();
        p.advance();
        p.advance();
        p.advance();
        assert_eq!(p.holder(), None, "tape exhausted");
        assert_eq!(p.position(), 5);
    }
}
