//! Identifier newtypes used throughout the GPRS model.
//!
//! Every dynamic entity the runtime reasons about — sub-threads, logical
//! threads, thread groups, hardware contexts, synchronization resources and
//! write-ahead-log records — is named by a dedicated newtype so that the
//! different id spaces cannot be confused (C-NEWTYPE).

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub(crate) $repr);

        impl $name {
            /// Creates an id from its raw representation.
            ///
            /// # Examples
            /// ```
            /// # use gprs_core::ids::*;
            #[doc = concat!("let id = ", stringify!($name), "::new(7);")]
            /// assert_eq!(id.raw(), 7);
            /// ```
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// Returns the raw representation of this id.
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// Returns the id following this one in its id space.
            pub const fn next(self) -> Self {
                Self(self.0 + 1)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }
    };
}

id_newtype!(
    /// Position of a sub-thread in the deterministic total order.
    ///
    /// Sequence numbers are assigned by the order enforcer and are strictly
    /// increasing; "older" means a numerically smaller id. The reorder list
    /// ([`crate::rol::ReorderList`]) is indexed by these ids.
    SubThreadId, u64, "ST"
);
id_newtype!(
    /// A logical program thread (what the paper's programs create with
    /// `pthread_create`). A thread is divided into many sub-threads.
    ThreadId, u32, "TH"
);
id_newtype!(
    /// A balance-aware scheduling group (`§3.2`): threads performing the same
    /// kind of computation — e.g. Pbzip2's read / compress / write stages —
    /// share a group.
    GroupId, u32, "G"
);
id_newtype!(
    /// A hardware execution context (core or SMT sibling). Exceptions are
    /// attributed to the context on which they were detected.
    ContextId, u32, "CTX"
);
id_newtype!(
    /// A dynamic mutex instance, used as an alias for the shared data it
    /// protects when computing selective-restart dependence sets.
    LockId, u64, "L"
);
id_newtype!(
    /// A dynamic atomic variable, used as a dependence alias like [`LockId`].
    AtomicId, u64, "A"
);
id_newtype!(
    /// A barrier instance.
    BarrierId, u64, "B"
);
id_newtype!(
    /// A runtime-managed FIFO channel (the lock-protected queues of the
    /// paper's pipeline programs are expressed as channels here).
    ChannelId, u64, "CH"
);
id_newtype!(
    /// Write-ahead-log sequence number (ARIES LSN).
    Lsn, u64, "LSN"
);

/// A synchronization resource used as a dependence alias (`§3.4`).
///
/// The paper tracks "the dynamic identity of any lock(s) the sub-thread may
/// have acquired or the atomic variable it may have accessed, as an alias for
/// the shared data the sub-thread accesses". Channels and barriers are
/// runtime-managed shared structures and participate the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceId {
    /// A mutex alias.
    Lock(LockId),
    /// An atomic-variable alias.
    Atomic(AtomicId),
    /// A FIFO channel alias.
    Channel(ChannelId),
    /// A barrier alias.
    Barrier(BarrierId),
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceId::Lock(l) => write!(f, "{l}"),
            ResourceId::Atomic(a) => write!(f, "{a}"),
            ResourceId::Channel(c) => write!(f, "{c}"),
            ResourceId::Barrier(b) => write!(f, "{b}"),
        }
    }
}

impl From<LockId> for ResourceId {
    fn from(l: LockId) -> Self {
        ResourceId::Lock(l)
    }
}
impl From<AtomicId> for ResourceId {
    fn from(a: AtomicId) -> Self {
        ResourceId::Atomic(a)
    }
}
impl From<ChannelId> for ResourceId {
    fn from(c: ChannelId) -> Self {
        ResourceId::Channel(c)
    }
}
impl From<BarrierId> for ResourceId {
    fn from(b: BarrierId) -> Self {
        ResourceId::Barrier(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_by_raw_value() {
        assert!(SubThreadId::new(1) < SubThreadId::new(2));
        assert_eq!(SubThreadId::new(1).next(), SubThreadId::new(2));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(SubThreadId::new(3).to_string(), "ST3");
        assert_eq!(ThreadId::new(0).to_string(), "TH0");
        assert_eq!(Lsn::new(12).to_string(), "LSN12");
        assert_eq!(ResourceId::Lock(LockId::new(4)).to_string(), "L4");
    }

    #[test]
    fn resource_conversions() {
        let r: ResourceId = LockId::new(9).into();
        assert_eq!(r, ResourceId::Lock(LockId::new(9)));
        let r: ResourceId = ChannelId::new(2).into();
        assert_eq!(r, ResourceId::Channel(ChannelId::new(2)));
    }

    #[test]
    fn raw_round_trips() {
        for raw in [0u64, 1, u64::MAX / 2] {
            assert_eq!(SubThreadId::new(raw).raw(), raw);
        }
    }
}
