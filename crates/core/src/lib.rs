//! Core model for **globally precise-restartable execution** of parallel
//! programs — a reproduction of Gupta, Sridharan & Sohi, PLDI 2014.
//!
//! Modern processors execute a sequential program's instructions in parallel
//! yet recover from exceptions precisely, because the program order gives
//! them a consistent state to restore. This crate ports that idea to whole
//! multiprocessors: a parallel program's computations are divided into
//! fine-grained, deterministically **ordered sub-threads**; checkpoints are
//! taken at sub-thread boundaries (where no one can be communicating with the
//! sub-thread); the runtime's own bookkeeping is protected by a write-ahead
//! log; and on an exception only the excepting sub-thread and its dependents
//! are squashed and re-executed (**selective restart**), so exception
//! tolerance scales with the machine instead of collapsing under frequent
//! faults like conventional checkpoint-and-recovery.
//!
//! This crate holds the execution-model pieces shared by the threaded
//! runtime (`gprs-runtime`) and the virtual-time simulator (`gprs-sim`):
//!
//! * [`subthread`] — sub-thread descriptors and the boundary rules
//!   (splitting at sync points, subsuming unlocks, flattening nesting).
//! * [`order`] — deterministic token schedules: round-robin and the paper's
//!   balance-aware (basic/weighted) schemes, plus the order enforcer.
//! * [`rol`] — the reorder list: the in-flight window, retirement, status.
//! * [`history`] — the [`history::Checkpoint`] trait and the history buffer
//!   of per-sub-thread saved state.
//! * [`wal`] — the ARIES-inspired write-ahead log for runtime self-recovery.
//! * [`deps`] — lock/atomic-alias dependence tracking for selective restart.
//! * [`recovery`] — recovery planning: basic, selective, discard-all,
//!   instruction- vs sub-thread-precision.
//! * [`exception`] — the discretionary-exception model and Poisson injector
//!   (with scripted-arrival overlays for chaos campaigns).
//! * [`chaos`] — deterministic fault-injection plans consumed by the real
//!   executors and generated/minimized by `gprs-chaos`.
//! * [`racecheck`] — retirement-driven happens-before race detection that
//!   guards selective restart's data-race-freedom assumption.
//! * [`model`] — the closed-form penalty/tipping-rate analysis of §2.3–§2.4.
//! * [`workload`] — the trace-level workload vocabulary shared by the
//!   simulator engines, the workload generators, and the static analyzer.
//!
//! # Quick example
//!
//! Plan a selective restart after an exception strikes one of three
//! in-flight sub-threads:
//!
//! ```
//! use gprs_core::prelude::*;
//!
//! let mut rol = ReorderList::new();
//! for (seq, thread, lock) in [(0, 0, 1), (1, 1, 1), (2, 2, 9)] {
//!     rol.insert(SubThread::new(
//!         SubThreadId::new(seq), ThreadId::new(thread), GroupId::new(0),
//!         SubThreadKind::CriticalSection,
//!         Some(SyncOp::LockAcquire(LockId::new(lock))),
//!     ))?;
//! }
//! // A soft fault hits the context running ST0.
//! rol.mark_excepted(SubThreadId::new(0),
//!     Exception::global(ExceptionKind::SoftFault, ContextId::new(0), 0))?;
//! let plan = plan_recovery(&rol, SubThreadId::new(0),
//!     RecoveryMode::Selective(DependencePolicy::Transitive),
//!     Precision::SubThread)?;
//! // ST1 shares lock L1 with the culprit and is squashed with it;
//! // ST2 (lock L9) keeps running.
//! assert_eq!(plan.discarded(), 2);
//! assert_eq!(plan.unaffected, 1);
//! # Ok::<(), gprs_core::error::GprsError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod deps;
pub mod error;
pub mod exception;
pub mod history;
pub mod ids;
pub mod model;
pub mod order;
pub mod persist;
pub mod racecheck;
pub mod recording;
pub mod recovery;
pub mod rol;
pub mod subthread;
pub mod wal;
pub mod workload;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::chaos::{ChaosEvent, ChaosPlan, ChaosTrigger, VictimSelector};
    pub use crate::deps::{affected_set, DependencePolicy};
    pub use crate::error::{GprsError, Result};
    pub use crate::exception::{
        Exception, ExceptionInjector, ExceptionKind, ExceptionScope, InjectorConfig,
        ScriptedArrival,
    };
    pub use crate::history::{Checkpoint, HistoryBuffer};
    pub use crate::ids::{
        AtomicId, BarrierId, ChannelId, ContextId, GroupId, LockId, Lsn, ResourceId, SubThreadId,
        ThreadId,
    };
    pub use crate::model::{CostParams, Scheme};
    pub use crate::order::{
        BalanceAware, EdgeQueue, OrderEnforcer, OrderingPolicy, RoundRobin, ScheduleKind,
    };
    pub use crate::persist::{
        DurableImage, DurableRecord, FileBackend, MemoryBackend, PersistBackend, PersistError,
        PersistStats,
    };
    pub use crate::racecheck::{AccessKind, OpenEdge, Race, RaceDetector, RetireInfo, VectorClock};
    pub use crate::recording::{
        first_divergence, DriveMode, RecordedEvent, RecordedOutcome, Recorder, Recording,
        RecordingDiff, RecordingError, RecordingHeader, ReplaySchedule,
    };
    pub use crate::recovery::{plan_recovery, Precision, RecoveryMode, RecoveryPlan};
    pub use crate::rol::{ReorderList, RolEntry, SubThreadStatus};
    pub use crate::subthread::{Boundary, SubThread, SubThreadGenerator, SubThreadKind, SyncOp};
    pub use crate::wal::{WalRecord, WriteAheadLog};
    pub use crate::workload::{PlainKind, Segment, SimOp, ThreadSpec, Workload};
}
