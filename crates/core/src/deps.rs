//! Dependence tracking for selective restart (`§3.4`).
//!
//! GPRS cannot observe every load and store, so it uses synchronization
//! resources as *aliases* for the shared data they protect: in a
//! data-race-free program, inter-thread communication happens only under a
//! lock, through an atomic variable, or through a runtime-managed channel or
//! barrier. A younger sub-thread may have consumed an excepting sub-thread's
//! erroneous data only if the two share such an alias — or if it is a later
//! sub-thread of the same thread (its starting state derives from the
//! excepting one).

use crate::error::{GprsError, Result};
use crate::ids::{ResourceId, SubThreadId, ThreadId};
use crate::rol::ReorderList;
use std::collections::BTreeSet;

/// How far the dependence closure is taken when computing the affected set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DependencePolicy {
    /// Only sub-threads that directly share a resource with the *excepting*
    /// sub-thread (plus the excepting thread's own later sub-threads). This
    /// is the paper's literal description — "ones that acquired the same
    /// lock(s) or used the same atomic variable as the excepting sub-thread"
    /// — and is cheapest, but does not chase second-hop propagation.
    Direct,
    /// The transitive closure: any sub-thread that shares a resource with an
    /// already-affected sub-thread (or continues an affected thread) is also
    /// affected. This is the conservative-correct set the threaded runtime
    /// uses: it covers data that flowed A → B → C through two different
    /// channels/locks.
    #[default]
    Transitive,
}

/// Computes the set of sub-threads that must squash when `culprit` excepts,
/// under the given policy. The culprit itself is always a member.
///
/// Only sub-threads *younger* than the culprit are considered: the
/// deterministic total order guarantees younger computations cannot corrupt
/// older ones (`§2.4`, change 1).
///
/// # Errors
/// Returns [`GprsError::UnknownSubThread`] if the culprit is not in the ROL.
///
/// # Examples
/// ```
/// use gprs_core::deps::{affected_set, DependencePolicy};
/// use gprs_core::rol::ReorderList;
/// use gprs_core::subthread::{SubThread, SubThreadKind, SyncOp};
/// use gprs_core::ids::*;
/// let mut rol = ReorderList::new();
/// let lock = |id: u64, th: u32, l: u64| SubThread::new(
///     SubThreadId::new(id), ThreadId::new(th), GroupId::new(0),
///     SubThreadKind::CriticalSection, Some(SyncOp::LockAcquire(LockId::new(l))));
/// rol.insert(lock(0, 0, 1))?; // culprit: TH0 under L1
/// rol.insert(lock(1, 1, 1))?; // TH1 under L1 — dependent
/// rol.insert(lock(2, 2, 9))?; // TH2 under L9 — unaffected
/// let set = affected_set(&rol, SubThreadId::new(0), DependencePolicy::Transitive)?;
/// assert!(set.contains(&SubThreadId::new(1)));
/// assert!(!set.contains(&SubThreadId::new(2)));
/// # Ok::<(), gprs_core::error::GprsError>(())
/// ```
pub fn affected_set(
    rol: &ReorderList,
    culprit: SubThreadId,
    policy: DependencePolicy,
) -> Result<BTreeSet<SubThreadId>> {
    let culprit_entry = rol
        .get(culprit)
        .ok_or(GprsError::UnknownSubThread(culprit))?;

    let mut affected: BTreeSet<SubThreadId> = BTreeSet::new();
    affected.insert(culprit);
    let mut tainted_resources: BTreeSet<ResourceId> = culprit_entry.resources.clone();
    let mut tainted_threads: BTreeSet<ThreadId> = BTreeSet::new();
    tainted_threads.insert(culprit_entry.thread());

    // One ascending pass suffices even for the transitive policy: taint only
    // ever propagates from older to younger sub-threads, so by the time we
    // examine an entry every possible source of its taint has been seen.
    for e in rol.iter_younger(culprit) {
        let continues_tainted_thread = tainted_threads.contains(&e.thread());
        let shares_resource = e
            .resources
            .iter()
            .any(|r| tainted_resources.contains(r));
        if continues_tainted_thread || shares_resource {
            affected.insert(e.id());
            if policy == DependencePolicy::Transitive {
                tainted_threads.insert(e.thread());
                tainted_resources.extend(e.resources.iter().copied());
            }
        }
    }
    Ok(affected)
}

/// The number of in-flight sub-threads *not* affected — the work selective
/// restart preserves relative to basic recovery's squash-everything-younger.
pub fn unaffected_count(rol: &ReorderList, affected: &BTreeSet<SubThreadId>) -> usize {
    rol.iter().filter(|e| !affected.contains(&e.id())).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ChannelId, GroupId, LockId};
    use crate::subthread::{SubThread, SubThreadKind, SyncOp};

    fn entry(id: u64, th: u32, op: Option<SyncOp>) -> SubThread {
        SubThread::new(
            SubThreadId::new(id),
            ThreadId::new(th),
            GroupId::new(0),
            SubThreadKind::CriticalSection,
            op,
        )
    }
    fn lock(l: u64) -> Option<SyncOp> {
        Some(SyncOp::LockAcquire(LockId::new(l)))
    }
    fn chan_push(c: u64) -> Option<SyncOp> {
        Some(SyncOp::ChanPush(ChannelId::new(c)))
    }
    fn chan_pop(c: u64) -> Option<SyncOp> {
        Some(SyncOp::ChanPop(ChannelId::new(c)))
    }
    fn ids(set: &BTreeSet<SubThreadId>) -> Vec<u64> {
        set.iter().map(|s| s.raw()).collect()
    }

    #[test]
    fn culprit_alone_when_nothing_shares() {
        let mut rol = ReorderList::new();
        rol.insert(entry(0, 0, lock(1))).unwrap();
        rol.insert(entry(1, 1, lock(2))).unwrap();
        rol.insert(entry(2, 2, lock(3))).unwrap();
        let set = affected_set(&rol, SubThreadId::new(0), DependencePolicy::Transitive).unwrap();
        assert_eq!(ids(&set), [0]);
        assert_eq!(unaffected_count(&rol, &set), 2);
    }

    #[test]
    fn same_thread_successors_are_always_affected() {
        let mut rol = ReorderList::new();
        rol.insert(entry(0, 0, lock(1))).unwrap();
        rol.insert(entry(1, 1, lock(2))).unwrap();
        rol.insert(entry(2, 0, lock(3))).unwrap(); // later sub-thread of TH0
        for policy in [DependencePolicy::Direct, DependencePolicy::Transitive] {
            let set = affected_set(&rol, SubThreadId::new(0), policy).unwrap();
            assert_eq!(ids(&set), [0, 2], "policy {policy:?}");
        }
    }

    #[test]
    fn older_subthreads_never_affected() {
        let mut rol = ReorderList::new();
        rol.insert(entry(0, 0, lock(1))).unwrap();
        rol.insert(entry(1, 1, lock(1))).unwrap(); // same lock, but older...
        rol.insert(entry(2, 2, lock(1))).unwrap();
        let set = affected_set(&rol, SubThreadId::new(1), DependencePolicy::Transitive).unwrap();
        assert_eq!(ids(&set), [1, 2]); // ST0 untouched
    }

    #[test]
    fn transitive_chases_two_hop_flows() {
        // TH0 pushes to CH1 (culprit); TH1 pops CH1 and pushes CH2;
        // TH2 pops CH2. Direct misses TH2; transitive catches it.
        let mut rol = ReorderList::new();
        rol.insert(entry(0, 0, chan_push(1))).unwrap();
        let mut pop_push = entry(1, 1, chan_pop(1));
        pop_push.opening_op = chan_pop(1);
        rol.insert(pop_push).unwrap();
        rol.add_resource(SubThreadId::new(1), ChannelId::new(2).into())
            .unwrap();
        rol.insert(entry(2, 2, chan_pop(2))).unwrap();

        let direct = affected_set(&rol, SubThreadId::new(0), DependencePolicy::Direct).unwrap();
        assert_eq!(ids(&direct), [0, 1]);
        let trans =
            affected_set(&rol, SubThreadId::new(0), DependencePolicy::Transitive).unwrap();
        assert_eq!(ids(&trans), [0, 1, 2]);
    }

    #[test]
    fn direct_policy_does_not_grow_taint() {
        let mut rol = ReorderList::new();
        rol.insert(entry(0, 0, lock(1))).unwrap();
        rol.insert(entry(1, 1, lock(1))).unwrap(); // direct dependent
        rol.insert(entry(2, 1, lock(9))).unwrap(); // TH1 continuation…
        rol.insert(entry(3, 2, lock(9))).unwrap(); // shares L9 with ST2 only
        let direct = affected_set(&rol, SubThreadId::new(0), DependencePolicy::Direct).unwrap();
        // ST2 is affected (same thread as affected ST1? No — Direct tracks the
        // *culprit's* thread only; TH1 is not the culprit's thread). Only the
        // resource L1 and thread TH0 matter.
        assert_eq!(ids(&direct), [0, 1]);
        let trans =
            affected_set(&rol, SubThreadId::new(0), DependencePolicy::Transitive).unwrap();
        assert_eq!(ids(&trans), [0, 1, 2, 3]);
    }

    #[test]
    fn unknown_culprit_errors() {
        let rol = ReorderList::new();
        assert_eq!(
            affected_set(&rol, SubThreadId::new(4), DependencePolicy::Direct),
            Err(GprsError::UnknownSubThread(SubThreadId::new(4)))
        );
    }

    #[test]
    fn dynamically_added_resources_participate() {
        let mut rol = ReorderList::new();
        rol.insert(entry(0, 0, None)).unwrap();
        rol.insert(entry(1, 1, None)).unwrap();
        // Both touch atomic A5 during execution.
        rol.add_resource(SubThreadId::new(0), crate::ids::AtomicId::new(5).into())
            .unwrap();
        rol.add_resource(SubThreadId::new(1), crate::ids::AtomicId::new(5).into())
            .unwrap();
        let set = affected_set(&rol, SubThreadId::new(0), DependencePolicy::Direct).unwrap();
        assert_eq!(ids(&set), [0, 1]);
    }
}
