//! Deterministic ordering schedules (`§3.2`, "Ordering Sub-threads").
//!
//! GPRS imparts a total order to sub-threads by passing a conceptual token
//! between threads at synchronization points. A thread may only perform the
//! synchronization operation that opens its next sub-thread when it holds the
//! token. Three schedules are implemented:
//!
//! * [`RoundRobin`] — the naive global token of DTHREADS/Kendo-style systems.
//!   Deterministic but oblivious to the program's parallelism pattern; it
//!   serializes producer/consumer pipelines such as Pbzip2 (Figure 7(a)).
//! * [`BalanceAware`] with unit weights — the paper's *basic* balance-aware
//!   scheme: round-robin across thread groups, round-robin within a group
//!   (Figure 7(b)).
//! * [`BalanceAware`] with per-group weights — the *weighted* scheme: a group
//!   with weight `w` receives `w` consecutive turns (Pbzip2's read stage is
//!   weighted 4:4:1 against compress and write in `§4`).

use crate::error::{GprsError, Result};
use crate::ids::{GroupId, SubThreadId, ThreadId};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A deterministic token-passing schedule over live threads.
///
/// Implementations must be fully deterministic: the holder sequence may
/// depend only on the sequence of `register_thread` / `deregister_thread` /
/// `advance` calls, never on timing.
pub trait OrderingPolicy: Send + fmt::Debug {
    /// Adds a thread at its deterministic position. Registration order is the
    /// program's fork order, which is itself deterministic under GPRS.
    ///
    /// # Errors
    /// Returns [`GprsError::DuplicateThread`] if the thread is already
    /// registered.
    fn register_thread(&mut self, thread: ThreadId, group: GroupId, weight: u32) -> Result<()>;

    /// Removes an exited thread from the rotation.
    ///
    /// # Errors
    /// Returns [`GprsError::UnknownThread`] if the thread is not registered.
    fn deregister_thread(&mut self, thread: ThreadId) -> Result<()>;

    /// The thread currently holding the token, or `None` when no threads are
    /// registered.
    fn holder(&self) -> Option<ThreadId>;

    /// Passes the token to the next thread in the schedule.
    fn advance(&mut self);

    /// Consumes a *wasted* polling turn (an empty-FIFO poll, Figure 7's
    /// empty-FIFO turns). Live schedules rotate exactly like
    /// [`OrderingPolicy::advance`]; the replay schedule
    /// ([`crate::recording::ReplaySchedule`]) overrides this to hold its
    /// cursor, because wasted turns mutate no program state and are not
    /// part of the recorded event stream.
    fn pass(&mut self) {
        self.advance();
    }

    /// Number of registered threads.
    fn len(&self) -> usize;

    /// Whether no threads are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short name used in experiment output ("R" / "B" / "W" in Figure 8's
    /// legend).
    fn name(&self) -> &'static str;
}

/// The naive global round-robin token (Figure 5(c) / Figure 7(a)).
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    threads: Vec<ThreadId>,
    cursor: usize,
}

impl RoundRobin {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }
}

impl OrderingPolicy for RoundRobin {
    fn register_thread(&mut self, thread: ThreadId, _group: GroupId, _weight: u32) -> Result<()> {
        if self.threads.contains(&thread) {
            return Err(GprsError::DuplicateThread(thread));
        }
        self.threads.push(thread);
        Ok(())
    }

    fn deregister_thread(&mut self, thread: ThreadId) -> Result<()> {
        let ix = self
            .threads
            .iter()
            .position(|&t| t == thread)
            .ok_or(GprsError::UnknownThread(thread))?;
        self.threads.remove(ix);
        if self.threads.is_empty() {
            self.cursor = 0;
            return Ok(());
        }
        // Keep pointing at the same logical successor: a removal before the
        // cursor shifts it left; a removal at the cursor leaves it on the
        // next element; wrap at the end.
        if ix < self.cursor {
            self.cursor -= 1;
        }
        self.cursor %= self.threads.len();
        Ok(())
    }

    fn holder(&self) -> Option<ThreadId> {
        self.threads.get(self.cursor).copied()
    }

    fn advance(&mut self) {
        if !self.threads.is_empty() {
            self.cursor = (self.cursor + 1) % self.threads.len();
        }
    }

    fn len(&self) -> usize {
        self.threads.len()
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

#[derive(Debug, Clone)]
struct Group {
    id: GroupId,
    weight: u32,
    members: Vec<ThreadId>,
    member_cursor: usize,
}

/// The balance-aware schedule: hierarchical token passing that respects the
/// program's parallelism pattern (`§3.2`).
///
/// Threads within a group rotate round-robin; across groups the token rotates
/// round-robin, and a group with weight `w` receives `w` consecutive turns
/// before the token moves on. With all weights 1 this is the paper's *basic*
/// scheme; otherwise it is the *weighted* scheme.
///
/// # Examples
///
/// The Pbzip2 pattern from Figure 7(b) — one reader in group 0, two
/// compressors in group 1; the reader gets every other turn instead of one
/// turn in three:
/// ```
/// use gprs_core::order::{BalanceAware, OrderingPolicy};
/// use gprs_core::ids::{GroupId, ThreadId};
/// let mut s = BalanceAware::new();
/// s.register_thread(ThreadId::new(0), GroupId::new(0), 1).unwrap();
/// s.register_thread(ThreadId::new(1), GroupId::new(1), 1).unwrap();
/// s.register_thread(ThreadId::new(2), GroupId::new(1), 1).unwrap();
/// let mut seq = Vec::new();
/// for _ in 0..6 {
///     seq.push(s.holder().unwrap().raw());
///     s.advance();
/// }
/// assert_eq!(seq, [0, 1, 0, 2, 0, 1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BalanceAware {
    groups: Vec<Group>,
    group_cursor: usize,
    /// Turns already consumed by the current group in this visit.
    turns_in_group: u32,
}

impl BalanceAware {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    fn current_group(&self) -> Option<&Group> {
        self.groups.get(self.group_cursor)
    }
}

impl OrderingPolicy for BalanceAware {
    fn register_thread(&mut self, thread: ThreadId, group: GroupId, weight: u32) -> Result<()> {
        if weight == 0 {
            return Err(GprsError::InvalidWeight(thread));
        }
        if self
            .groups
            .iter()
            .any(|g| g.members.contains(&thread))
        {
            return Err(GprsError::DuplicateThread(thread));
        }
        match self.groups.iter_mut().find(|g| g.id == group) {
            Some(g) => {
                // The group's weight is a property of the group; a later
                // registration may not silently change it out from under the
                // members already scheduled by it.
                if g.weight != weight {
                    return Err(GprsError::GroupWeightConflict {
                        thread,
                        established: g.weight,
                        requested: weight,
                    });
                }
                g.members.push(thread);
            }
            None => self.groups.push(Group {
                id: group,
                weight,
                members: vec![thread],
                member_cursor: 0,
            }),
        }
        Ok(())
    }

    fn deregister_thread(&mut self, thread: ThreadId) -> Result<()> {
        let gix = self
            .groups
            .iter()
            .position(|g| g.members.contains(&thread))
            .ok_or(GprsError::UnknownThread(thread))?;
        let remove_group = {
            let g = &mut self.groups[gix];
            let mix = g.members.iter().position(|&t| t == thread).expect("present");
            g.members.remove(mix);
            if !g.members.is_empty() {
                if mix < g.member_cursor || g.member_cursor >= g.members.len() {
                    g.member_cursor %= g.members.len();
                }
                false
            } else {
                true
            }
        };
        if remove_group {
            self.groups.remove(gix);
            if self.groups.is_empty() {
                self.group_cursor = 0;
            } else {
                if gix < self.group_cursor {
                    self.group_cursor -= 1;
                }
                self.group_cursor %= self.groups.len();
            }
            if gix == self.group_cursor {
                self.turns_in_group = 0;
            }
        }
        Ok(())
    }

    fn holder(&self) -> Option<ThreadId> {
        let g = self.current_group()?;
        g.members.get(g.member_cursor).copied()
    }

    fn advance(&mut self) {
        if self.groups.is_empty() {
            return;
        }
        let (weight, members) = {
            let g = &self.groups[self.group_cursor];
            (g.weight, g.members.len())
        };
        {
            let g = &mut self.groups[self.group_cursor];
            g.member_cursor = (g.member_cursor + 1) % members.max(1);
        }
        self.turns_in_group += 1;
        if self.turns_in_group >= weight {
            self.turns_in_group = 0;
            self.group_cursor = (self.group_cursor + 1) % self.groups.len();
        }
    }

    fn len(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum()
    }

    fn name(&self) -> &'static str {
        "balance-aware"
    }
}

/// Which schedule an experiment uses (the Figure 8 legend's `R`/`B` axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// Naive global round-robin.
    RoundRobin,
    /// Balance-aware with unit weights.
    BalanceBasic,
    /// Balance-aware honoring per-group weights.
    BalanceWeighted,
}

impl ScheduleKind {
    /// Instantiates the corresponding policy.
    ///
    /// For [`ScheduleKind::BalanceBasic`], group weights passed at
    /// registration are clamped to 1 so that the basic scheme ignores them.
    pub fn build(self) -> Box<dyn OrderingPolicy> {
        match self {
            ScheduleKind::RoundRobin => Box::new(RoundRobin::new()),
            ScheduleKind::BalanceBasic => Box::new(UnitWeights(BalanceAware::new())),
            ScheduleKind::BalanceWeighted => Box::new(BalanceAware::new()),
        }
    }

    /// One-letter tag used in experiment output (Figure 8 legend).
    pub fn tag(self) -> &'static str {
        match self {
            ScheduleKind::RoundRobin => "R",
            ScheduleKind::BalanceBasic => "B",
            ScheduleKind::BalanceWeighted => "W",
        }
    }
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleKind::RoundRobin => f.write_str("round-robin"),
            ScheduleKind::BalanceBasic => f.write_str("balance-aware (basic)"),
            ScheduleKind::BalanceWeighted => f.write_str("balance-aware (weighted)"),
        }
    }
}

/// Wrapper that forces unit weights (the basic balance-aware scheme).
#[derive(Debug, Default)]
struct UnitWeights(BalanceAware);

impl OrderingPolicy for UnitWeights {
    fn register_thread(&mut self, thread: ThreadId, group: GroupId, _weight: u32) -> Result<()> {
        self.0.register_thread(thread, group, 1)
    }
    fn deregister_thread(&mut self, thread: ThreadId) -> Result<()> {
        self.0.deregister_thread(thread)
    }
    fn holder(&self) -> Option<ThreadId> {
        self.0.holder()
    }
    fn advance(&mut self) {
        self.0.advance()
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn name(&self) -> &'static str {
        "balance-aware-basic"
    }
}

/// Lock-free mirror of the enforcer's grant frontier.
///
/// The deterministic total order means "may this thread's want proceed?" is
/// a comparison against a single monotonically advancing frontier: the
/// current token holder and the next sequence number. The [`OrderEnforcer`]
/// (which always mutates under the runtime's state lock) publishes that
/// frontier here after every mutation; workers read it with one atomic load
/// and *never* touch the lock just to learn whose turn it is.
///
/// The holder and a version stamp are packed into one word —
/// `epoch << 32 | holder_raw + 1` (low half 0 = no holder) — so a reader
/// always observes a (epoch, holder) pair that actually existed. The next
/// ticket is published separately *before* the word, so after an acquire
/// load of the word the ticket read is at least as new; both are advisory
/// for readers outside the lock (the authoritative grant still happens
/// under it), which is exactly what a go/no-go fast-path check needs: a
/// stale "not my turn" only sends the worker to the slow path, and a stale
/// "my turn" is re-verified by the locked grant.
#[derive(Debug, Default)]
pub struct OrderGate {
    /// `epoch << 32 | holder_raw + 1`; low 32 bits 0 ⇔ no holder.
    word: AtomicU64,
    /// Raw [`SubThreadId`] the next grant will be assigned.
    next_ticket: AtomicU64,
}

impl OrderGate {
    /// An empty gate (no holder, ticket 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a new frontier, bumping the epoch. Called by the enforcer
    /// under the state lock after every mutation.
    pub fn publish(&self, holder: Option<ThreadId>, next_seq: SubThreadId) {
        self.next_ticket.store(next_seq.raw(), Ordering::Release);
        let old = self.word.load(Ordering::Relaxed);
        let epoch = (old >> 32).wrapping_add(1) & u32::MAX as u64;
        let low = holder.map_or(0, |t| u64::from(t.raw()) + 1);
        self.word.store(epoch << 32 | low, Ordering::Release);
    }

    /// The published token holder (one atomic load).
    pub fn holder(&self) -> Option<ThreadId> {
        let low = self.word.load(Ordering::Acquire) & u32::MAX as u64;
        (low != 0).then(|| ThreadId::new((low - 1) as u32))
    }

    /// Whether `thread` is the published holder (one atomic load).
    pub fn is_next(&self, thread: ThreadId) -> bool {
        self.holder() == Some(thread)
    }

    /// The published next-grant sequence number.
    pub fn next_ticket(&self) -> SubThreadId {
        SubThreadId::new(self.next_ticket.load(Ordering::Acquire))
    }

    /// The publication count (wraps at 2³²). Two equal epochs with equal
    /// holders denote the same publication.
    pub fn epoch(&self) -> u32 {
        (self.word.load(Ordering::Acquire) >> 32) as u32
    }

    /// One consistent `(epoch, holder)` observation plus the ticket that is
    /// at least as new as that observation.
    pub fn snapshot(&self) -> GateSnapshot {
        let word = self.word.load(Ordering::Acquire);
        let low = word & u32::MAX as u64;
        GateSnapshot {
            epoch: (word >> 32) as u32,
            holder: (low != 0).then(|| ThreadId::new((low - 1) as u32)),
            next_ticket: SubThreadId::new(self.next_ticket.load(Ordering::Acquire)),
        }
    }
}

/// One atomic observation of the [`OrderGate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateSnapshot {
    /// Publication count at the observation.
    pub epoch: u32,
    /// Token holder at the observation.
    pub holder: Option<ThreadId>,
    /// Next-grant sequence number (at least as new as `epoch`).
    pub next_ticket: SubThreadId,
}

/// Combines a schedule with total-order sequence assignment.
///
/// The enforcer is the core of the DEX's order enforcer block (Figure 4): a
/// thread that has reached its next synchronization point asks for a grant;
/// the grant succeeds only while the thread holds the token, and consuming it
/// assigns the next [`SubThreadId`] in the global total order and passes the
/// token on.
///
/// Every mutation republishes the grant frontier to the shared lock-free
/// [`OrderGate`] (see [`OrderEnforcer::gate`]).
#[derive(Debug)]
pub struct OrderEnforcer {
    policy: Box<dyn OrderingPolicy>,
    next_seq: SubThreadId,
    grants: u64,
    gate: Arc<OrderGate>,
}

impl OrderEnforcer {
    /// Creates an enforcer over the given schedule; sequence numbers start
    /// at 0.
    pub fn new(policy: Box<dyn OrderingPolicy>) -> Self {
        let e = OrderEnforcer {
            policy,
            next_seq: SubThreadId::new(0),
            grants: 0,
            gate: Arc::new(OrderGate::new()),
        };
        e.republish();
        e
    }

    /// The lock-free mirror of this enforcer's grant frontier. Cloning the
    /// `Arc` lets workers check "is it my thread's turn?" without the lock.
    pub fn gate(&self) -> Arc<OrderGate> {
        Arc::clone(&self.gate)
    }

    fn republish(&self) {
        self.gate.publish(self.policy.holder(), self.next_seq);
    }

    /// Convenience constructor from a [`ScheduleKind`].
    pub fn with_schedule(kind: ScheduleKind) -> Self {
        Self::new(kind.build())
    }

    /// Registers a thread (fork order = deterministic order).
    ///
    /// # Errors
    /// Propagates [`GprsError::DuplicateThread`].
    pub fn register_thread(
        &mut self,
        thread: ThreadId,
        group: GroupId,
        weight: u32,
    ) -> Result<()> {
        self.policy.register_thread(thread, group, weight)?;
        self.republish();
        Ok(())
    }

    /// Deregisters an exited thread.
    ///
    /// # Errors
    /// Propagates [`GprsError::UnknownThread`].
    pub fn deregister_thread(&mut self, thread: ThreadId) -> Result<()> {
        self.policy.deregister_thread(thread)?;
        self.republish();
        Ok(())
    }

    /// The thread whose turn it currently is.
    pub fn holder(&self) -> Option<ThreadId> {
        self.policy.holder()
    }

    /// Attempts to consume the current turn on behalf of `thread`.
    ///
    /// Returns the assigned position in the total order if `thread` holds
    /// the token, `None` otherwise (the caller must wait — this wait is the
    /// ordering delay `t_g` of `§2.4`).
    pub fn try_grant(&mut self, thread: ThreadId) -> Option<SubThreadId> {
        if self.policy.holder() == Some(thread) {
            let id = self.next_seq;
            self.next_seq = self.next_seq.next();
            self.grants += 1;
            self.policy.advance();
            self.republish();
            Some(id)
        } else {
            None
        }
    }

    /// Consumes the current turn without assigning a sub-thread — used when
    /// the holder polls a condition (empty FIFO) and must "pass the token"
    /// (Figure 7's empty-FIFO turns). Routed through
    /// [`OrderingPolicy::pass`] so a replaying schedule can hold its cursor
    /// on these state-free turns.
    pub fn pass_turn(&mut self, thread: ThreadId) -> bool {
        if self.policy.holder() == Some(thread) {
            self.policy.pass();
            self.republish();
            true
        } else {
            false
        }
    }

    /// Consumes the current turn for a *structural* event that opens no
    /// sub-thread but does mutate program state (a barrier arrival, a
    /// thread exit). Unlike [`OrderEnforcer::pass_turn`] this always
    /// advances the schedule — structural events are part of the recorded
    /// total order, so a replaying schedule moves past them too.
    pub fn consume_turn(&mut self, thread: ThreadId) -> bool {
        if self.policy.holder() == Some(thread) {
            self.policy.advance();
            self.republish();
            true
        } else {
            false
        }
    }

    /// Sequence number that will be assigned to the next grant.
    pub fn next_sequence(&self) -> SubThreadId {
        self.next_seq
    }

    /// Total grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Number of live threads.
    pub fn live_threads(&self) -> usize {
        self.policy.len()
    }

    /// The underlying schedule's name.
    pub fn schedule_name(&self) -> &'static str {
        self.policy.name()
    }
}

/// An unbounded lock-free SPSC queue of sequence-numbered edge tokens —
/// the rendezvous point for one cross-shard channel edge.
///
/// When the ordering machinery is sharded, a channel whose producer and
/// consumer live in different order domains can no longer hand items over
/// through shared engine state; instead the producer domain forwards each
/// item *at retirement* (so the hand-off is squash-proof) as a token
/// through one of these queues, and the consumer domain drains it into its
/// local channel replica. The token's sequence number is the producer-side
/// push index; the consumer asserts it pops sequence `0, 1, 2, …` exactly,
/// turning any ordering bug into a loud panic rather than silent
/// nondeterminism.
///
/// # Safety contract
///
/// At most one thread pushes and at most one thread pops at any instant.
/// The sharded runtime guarantees this structurally: each edge has exactly
/// one producer domain and one consumer domain (the execution plan merges
/// domains sharing a channel end), and each side serializes its accesses
/// under its own engine lock. A violated contract on the consumer side is
/// caught at runtime by the `draining` guard.
pub struct EdgeQueue<T> {
    /// Oldest node — the consumed stub; its `next` is the real front.
    /// Consumer-owned.
    head: std::sync::atomic::AtomicPtr<EdgeNode<T>>,
    /// Newest node. Producer-owned.
    tail: std::sync::atomic::AtomicPtr<EdgeNode<T>>,
    /// Runtime guard enforcing the single-consumer half of the contract.
    draining: std::sync::atomic::AtomicBool,
    /// Tokens pushed; the next push's sequence number.
    pushed: AtomicU64,
    /// Tokens popped; the sequence number the next pop must observe.
    popped: AtomicU64,
    /// Producer finished: nothing more will ever arrive. A consumer
    /// starving on an empty *closed* edge is deadlocked, not waiting.
    closed: std::sync::atomic::AtomicBool,
}

struct EdgeNode<T> {
    next: std::sync::atomic::AtomicPtr<EdgeNode<T>>,
    /// `None` only for the stub and for already-consumed nodes.
    token: Option<(u64, T)>,
}

// SAFETY: node access is disjoint between the single producer (appends
// after `tail`) and the single consumer (detaches from `head`); the
// release store of a node's predecessor `next` pointer paired with the
// consumer's acquire load publishes the node contents.
unsafe impl<T: Send> Send for EdgeQueue<T> {}
unsafe impl<T: Send> Sync for EdgeQueue<T> {}

impl<T> Default for EdgeQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for EdgeQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EdgeQueue")
            .field("pushed", &self.pushed.load(Ordering::Relaxed))
            .field("popped", &self.popped.load(Ordering::Relaxed))
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl<T> EdgeQueue<T> {
    /// An empty, open edge.
    pub fn new() -> Self {
        let stub = Box::into_raw(Box::new(EdgeNode {
            next: std::sync::atomic::AtomicPtr::new(std::ptr::null_mut()),
            token: None,
        }));
        EdgeQueue {
            head: std::sync::atomic::AtomicPtr::new(stub),
            tail: std::sync::atomic::AtomicPtr::new(stub),
            draining: std::sync::atomic::AtomicBool::new(false),
            pushed: AtomicU64::new(0),
            popped: AtomicU64::new(0),
            closed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Appends a token (producer side) and returns its sequence number.
    pub fn push(&self, item: T) -> u64 {
        assert!(!self.is_closed(), "EdgeQueue: push after close");
        let seq = self.pushed.load(Ordering::Relaxed);
        let node = Box::into_raw(Box::new(EdgeNode {
            next: std::sync::atomic::AtomicPtr::new(std::ptr::null_mut()),
            token: Some((seq, item)),
        }));
        let prev = self.tail.load(Ordering::Relaxed);
        self.tail.store(node, Ordering::Relaxed);
        // SAFETY: `prev` is a live node — the consumer never frees the node
        // `tail` points at (it stops at a null `next`, and this store is
        // what makes `prev` reachable-from-head *past* consumption only
        // after `tail` has already moved on).
        unsafe { (*prev).next.store(node, Ordering::Release) };
        self.pushed.store(seq + 1, Ordering::Release);
        seq
    }

    /// Removes the oldest token (consumer side), or `None` when empty.
    ///
    /// # Panics
    /// If tokens surface out of sequence or a second consumer drains
    /// concurrently — both indicate a violated shard-plan invariant and
    /// must fail loudly rather than corrupt the deterministic order.
    pub fn pop(&self) -> Option<(u64, T)> {
        assert!(
            !self.draining.swap(true, Ordering::Acquire),
            "EdgeQueue: concurrent consumers on one edge"
        );
        // SAFETY: single consumer (checked above); `head` is only written
        // here. The acquire load of `next` pairs with the producer's
        // release store, publishing the node's token.
        let token = unsafe {
            let head = self.head.load(Ordering::Relaxed);
            let next = (*head).next.load(Ordering::Acquire);
            if next.is_null() {
                None
            } else {
                let token = (*next).token.take().expect("edge token taken twice");
                self.head.store(next, Ordering::Relaxed);
                drop(Box::from_raw(head));
                let expect = self.popped.load(Ordering::Relaxed);
                assert_eq!(
                    token.0, expect,
                    "EdgeQueue: out-of-sequence edge token (got {}, want {expect})",
                    token.0
                );
                self.popped.store(expect + 1, Ordering::Release);
                Some(token)
            }
        };
        self.draining.store(false, Ordering::Release);
        token
    }

    /// Marks the producer side finished; no further pushes are legal.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether the producer has finished.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Whether a consumer waiting on this edge can never be satisfied:
    /// empty *and* closed.
    pub fn is_starved(&self) -> bool {
        // Read `pushed` first: a racing close-after-push can only make
        // this spuriously false (benign: the caller re-checks), never
        // spuriously true.
        let pushed = self.pushed.load(Ordering::Acquire);
        self.is_closed() && self.popped.load(Ordering::Acquire) == pushed
    }

    /// Tokens currently in flight (pushed, not yet popped).
    pub fn len(&self) -> u64 {
        self.pushed.load(Ordering::Acquire) - self.popped.load(Ordering::Acquire)
    }

    /// Whether no tokens are in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total tokens forwarded so far (the next push's sequence number).
    pub fn forwarded(&self) -> u64 {
        self.pushed.load(Ordering::Acquire)
    }
}

impl<T> Drop for EdgeQueue<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` — no concurrent access; walk and free the
        // whole chain including the stub.
        unsafe {
            let mut node = self.head.load(Ordering::Relaxed);
            while !node.is_null() {
                let next = (*node).next.load(Ordering::Relaxed);
                drop(Box::from_raw(node));
                node = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn th(n: u32) -> ThreadId {
        ThreadId::new(n)
    }
    fn grp(n: u32) -> GroupId {
        GroupId::new(n)
    }

    fn holder_sequence<P: OrderingPolicy>(p: &mut P, n: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(p.holder().unwrap().raw());
            p.advance();
        }
        out
    }

    #[test]
    fn round_robin_rotates_in_registration_order() {
        let mut rr = RoundRobin::new();
        for i in 0..3 {
            rr.register_thread(th(i), grp(0), 1).unwrap();
        }
        assert_eq!(holder_sequence(&mut rr, 7), [0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn round_robin_rejects_duplicates_and_unknowns() {
        let mut rr = RoundRobin::new();
        rr.register_thread(th(0), grp(0), 1).unwrap();
        assert_eq!(
            rr.register_thread(th(0), grp(0), 1),
            Err(GprsError::DuplicateThread(th(0)))
        );
        assert_eq!(
            rr.deregister_thread(th(9)),
            Err(GprsError::UnknownThread(th(9)))
        );
    }

    #[test]
    fn round_robin_deregister_keeps_rotation_consistent() {
        let mut rr = RoundRobin::new();
        for i in 0..4 {
            rr.register_thread(th(i), grp(0), 1).unwrap();
        }
        rr.advance(); // holder now TH1
        rr.deregister_thread(th(1)).unwrap();
        // TH1 gone: rotation continues over remaining threads without skew.
        let seq = holder_sequence(&mut rr, 6);
        assert_eq!(seq, [2, 3, 0, 2, 3, 0]);
    }

    #[test]
    fn round_robin_empty_has_no_holder() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.holder(), None);
        rr.advance(); // must not panic
        assert!(rr.is_empty());
    }

    #[test]
    fn balance_aware_basic_matches_figure7b() {
        // Pbzip2: TH0 = read (group 0), TH1/TH2 = compress (group 1).
        let mut s = BalanceAware::new();
        s.register_thread(th(0), grp(0), 1).unwrap();
        s.register_thread(th(1), grp(1), 1).unwrap();
        s.register_thread(th(2), grp(1), 1).unwrap();
        // Reader gets every other turn; compressors alternate.
        assert_eq!(holder_sequence(&mut s, 8), [0, 1, 0, 2, 0, 1, 0, 2]);
    }

    #[test]
    fn balance_aware_weighted_gives_extra_turns() {
        // Reader weighted 2: two reader turns per compressor turn.
        let mut s = BalanceAware::new();
        s.register_thread(th(0), grp(0), 2).unwrap();
        s.register_thread(th(1), grp(1), 1).unwrap();
        s.register_thread(th(2), grp(1), 1).unwrap();
        assert_eq!(holder_sequence(&mut s, 9), [0, 0, 1, 0, 0, 2, 0, 0, 1]);
    }

    #[test]
    fn balance_aware_single_group_degenerates_to_round_robin() {
        let mut s = BalanceAware::new();
        for i in 0..3 {
            s.register_thread(th(i), grp(0), 1).unwrap();
        }
        assert_eq!(holder_sequence(&mut s, 6), [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn balance_aware_deregister_last_member_removes_group() {
        let mut s = BalanceAware::new();
        s.register_thread(th(0), grp(0), 1).unwrap();
        s.register_thread(th(1), grp(1), 1).unwrap();
        s.deregister_thread(th(0)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(holder_sequence(&mut s, 3), [1, 1, 1]);
    }

    #[test]
    fn basic_scheme_ignores_weights() {
        let mut s = ScheduleKind::BalanceBasic.build();
        s.register_thread(th(0), grp(0), 4).unwrap();
        s.register_thread(th(1), grp(1), 1).unwrap();
        let mut seq = Vec::new();
        for _ in 0..4 {
            seq.push(s.holder().unwrap().raw());
            s.advance();
        }
        assert_eq!(seq, [0, 1, 0, 1]);
    }

    #[test]
    fn balance_aware_rejects_zero_weight() {
        let mut s = BalanceAware::new();
        assert_eq!(
            s.register_thread(th(0), grp(0), 0),
            Err(GprsError::InvalidWeight(th(0)))
        );
        assert_eq!(s.len(), 0, "rejected registration must not be recorded");
    }

    #[test]
    fn balance_aware_rejects_conflicting_group_weight() {
        let mut s = BalanceAware::new();
        s.register_thread(th(0), grp(0), 2).unwrap();
        assert_eq!(
            s.register_thread(th(1), grp(0), 3),
            Err(GprsError::GroupWeightConflict {
                thread: th(1),
                established: 2,
                requested: 3,
            })
        );
        // The established weight stays in force and the conflicting thread
        // was not admitted to the group.
        assert_eq!(s.len(), 1);
        s.register_thread(th(1), grp(0), 2).unwrap();
        assert_eq!(holder_sequence(&mut s, 4), [0, 1, 0, 1]);
    }

    #[test]
    fn enforcer_assigns_contiguous_total_order() {
        let mut e = OrderEnforcer::with_schedule(ScheduleKind::RoundRobin);
        e.register_thread(th(0), grp(0), 1).unwrap();
        e.register_thread(th(1), grp(0), 1).unwrap();
        assert_eq!(e.try_grant(th(1)), None); // not TH1's turn
        assert_eq!(e.try_grant(th(0)), Some(SubThreadId::new(0)));
        assert_eq!(e.try_grant(th(0)), None);
        assert_eq!(e.try_grant(th(1)), Some(SubThreadId::new(1)));
        assert_eq!(e.next_sequence(), SubThreadId::new(2));
        assert_eq!(e.grants(), 2);
    }

    #[test]
    fn enforcer_pass_turn_skips_without_sequence() {
        let mut e = OrderEnforcer::with_schedule(ScheduleKind::RoundRobin);
        e.register_thread(th(0), grp(0), 1).unwrap();
        e.register_thread(th(1), grp(0), 1).unwrap();
        assert!(!e.pass_turn(th(1)));
        assert!(e.pass_turn(th(0))); // empty-FIFO poll: no sub-thread created
        assert_eq!(e.next_sequence(), SubThreadId::new(0));
        assert_eq!(e.try_grant(th(1)), Some(SubThreadId::new(0)));
    }

    #[test]
    fn gate_mirrors_enforcer_frontier() {
        let mut e = OrderEnforcer::with_schedule(ScheduleKind::RoundRobin);
        let gate = e.gate();
        assert_eq!(gate.holder(), None);
        e.register_thread(th(0), grp(0), 1).unwrap();
        e.register_thread(th(1), grp(0), 1).unwrap();
        assert!(gate.is_next(th(0)));
        assert!(!gate.is_next(th(1)));
        assert_eq!(gate.next_ticket(), SubThreadId::new(0));

        let before = gate.epoch();
        assert_eq!(e.try_grant(th(0)), Some(SubThreadId::new(0)));
        assert_ne!(gate.epoch(), before, "grant must republish");
        assert!(gate.is_next(th(1)));
        assert_eq!(gate.next_ticket(), SubThreadId::new(1));

        assert!(e.pass_turn(th(1)));
        assert!(gate.is_next(th(0)));
        assert_eq!(gate.next_ticket(), SubThreadId::new(1), "pass consumes no ticket");

        e.deregister_thread(th(0)).unwrap();
        assert!(gate.is_next(th(1)));
        e.deregister_thread(th(1)).unwrap();
        assert_eq!(gate.holder(), None);
    }

    #[test]
    fn gate_snapshot_is_internally_consistent() {
        let gate = OrderGate::new();
        gate.publish(Some(th(7)), SubThreadId::new(3));
        let s = gate.snapshot();
        assert_eq!(s.holder, Some(th(7)));
        assert_eq!(s.next_ticket, SubThreadId::new(3));
        let e0 = s.epoch;
        gate.publish(None, SubThreadId::new(4));
        let s2 = gate.snapshot();
        assert_eq!(s2.holder, None);
        assert_eq!(s2.epoch, e0.wrapping_add(1));
    }

    /// Loom-style interleaving stress for the ticket hand-off: one publisher
    /// drives the gate through a logged sequence of frontiers while reader
    /// threads race it. Every `(epoch, holder)` pair a reader observes must
    /// be one the publisher actually published, epochs must never run
    /// backwards within a reader, and the ticket attached to a snapshot must
    /// be at least as new as the snapshot's epoch.
    #[test]
    fn gate_interleaving_stress() {
        use std::sync::atomic::AtomicBool;

        const PUBLICATIONS: u32 = 20_000;
        let gate = Arc::new(OrderGate::new());
        let stop = Arc::new(AtomicBool::new(false));

        // The full publication log is a pure function of the index, so
        // readers can validate observations without sharing mutable state:
        // publication i sets holder = i % 7 (None when 6) and ticket = i.
        let expected_holder = |i: u64| -> Option<ThreadId> {
            let h = i % 7;
            (h != 6).then(|| ThreadId::new(h as u32))
        };

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_epoch = 0u32;
                    let mut observations = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let s = gate.snapshot();
                        // Epochs are monotone while the publisher is live
                        // (no wrap in this test's range).
                        assert!(
                            s.epoch >= last_epoch,
                            "epoch ran backwards: {} then {}",
                            last_epoch,
                            s.epoch
                        );
                        last_epoch = s.epoch;
                        if s.epoch > 0 {
                            // Publication i bumped the epoch to i+1.
                            let i = u64::from(s.epoch - 1);
                            assert_eq!(
                                s.holder,
                                expected_holder(i),
                                "snapshot (epoch {}) pairs a holder never \
                                 published with it",
                                s.epoch
                            );
                            // The ticket was stored before the word: it is
                            // at least the publication's, never older.
                            assert!(
                                s.next_ticket.raw() >= i,
                                "ticket {} older than its epoch {}",
                                s.next_ticket.raw(),
                                s.epoch
                            );
                        }
                        observations += 1;
                    }
                    observations
                })
            })
            .collect();

        for i in 0..u64::from(PUBLICATIONS) {
            gate.publish(expected_holder(i), SubThreadId::new(i));
        }
        stop.store(true, Ordering::Release);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(gate.epoch(), PUBLICATIONS);
        assert_eq!(gate.next_ticket(), SubThreadId::new(u64::from(PUBLICATIONS) - 1));
    }

    #[test]
    fn schedule_kind_builds_named_policies() {
        assert_eq!(ScheduleKind::RoundRobin.build().name(), "round-robin");
        assert_eq!(
            ScheduleKind::BalanceBasic.build().name(),
            "balance-aware-basic"
        );
        assert_eq!(ScheduleKind::BalanceWeighted.build().name(), "balance-aware");
        assert_eq!(ScheduleKind::RoundRobin.tag(), "R");
    }

    #[test]
    fn edge_queue_fifo_with_sequence_numbers() {
        let q = EdgeQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert_eq!(q.push("a"), 0);
        assert_eq!(q.push("b"), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((0, "a")));
        assert_eq!(q.push("c"), 2);
        assert_eq!(q.pop(), Some((1, "b")));
        assert_eq!(q.pop(), Some((2, "c")));
        assert!(q.pop().is_none());
        assert_eq!(q.forwarded(), 3);
    }

    #[test]
    fn edge_queue_starvation_needs_close_and_empty() {
        let q = EdgeQueue::new();
        q.push(1u32);
        assert!(!q.is_starved());
        q.close();
        assert!(q.is_closed());
        assert!(!q.is_starved()); // still a token in flight
        assert_eq!(q.pop(), Some((0, 1)));
        assert!(q.is_starved());
    }

    #[test]
    #[should_panic(expected = "push after close")]
    fn edge_queue_rejects_push_after_close() {
        let q = EdgeQueue::new();
        q.close();
        q.push(1u32);
    }

    #[test]
    fn edge_queue_drops_in_flight_tokens() {
        let token = std::sync::Arc::new(());
        let q = EdgeQueue::new();
        q.push(std::sync::Arc::clone(&token));
        q.push(std::sync::Arc::clone(&token));
        q.pop();
        drop(q);
        assert_eq!(std::sync::Arc::strong_count(&token), 1);
    }

    #[test]
    fn edge_queue_concurrent_producer_consumer() {
        let q = std::sync::Arc::new(EdgeQueue::new());
        let producer = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    assert_eq!(q.push(i * 3), i);
                }
                q.close();
            })
        };
        let mut got = Vec::with_capacity(10_000);
        loop {
            match q.pop() {
                Some((seq, v)) => {
                    assert_eq!(v, seq * 3);
                    got.push(seq);
                }
                None if q.is_starved() => break,
                None => std::hint::spin_loop(),
            }
        }
        producer.join().unwrap();
        assert!(got.iter().copied().eq(0..10_000));
    }
}
