//! Recovery planning — the decision logic of the Restart Engine (`§3.4`).
//!
//! Given a reorder list with an excepted entry, a [`RecoveryPlan`] names the
//! sub-threads to squash (youngest-first, the state-restore order) and to
//! re-dispatch (oldest-first). Executing a plan is the embedding runtime's
//! job: restore history-buffer snapshots in the squash order, undo WAL
//! records of the squashed set, then re-dispatch.
//!
//! Four strategies are provided, mirroring the paper's options:
//!
//! * **Basic** — wait-free conservative recovery: squash the excepting
//!   sub-thread and everything younger.
//! * **Selective** — squash only the excepting sub-thread and its
//!   dependents; unaffected sub-threads keep running. This is what makes the
//!   tipping rate scale with the context count (`e ≤ n/t_r`).
//! * **DiscardAll** — "if the precise excepting sub-thread cannot be
//!   identified for any reason, it is always safe to discard all sub-threads
//!   in the ROL".
//! * Precision: with zero detection latency the exception is
//!   *instruction-precise* and the culprit resumes from the faulting
//!   instruction; otherwise only *sub-thread-precise* restart is possible
//!   and the culprit re-executes from its checkpoint.

use crate::deps::{affected_set, unaffected_count, DependencePolicy};
use crate::error::{GprsError, Result};
use crate::ids::SubThreadId;
use crate::rol::{ReorderList, SubThreadStatus};
use std::collections::BTreeSet;
use std::fmt;

/// Which sub-threads a recovery squashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryMode {
    /// Squash the culprit and every younger sub-thread.
    Basic,
    /// Squash only the culprit and its dependence closure.
    Selective(DependencePolicy),
    /// Squash the entire reorder list.
    DiscardAll,
}

impl fmt::Display for RecoveryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryMode::Basic => f.write_str("basic"),
            RecoveryMode::Selective(DependencePolicy::Direct) => f.write_str("selective(direct)"),
            RecoveryMode::Selective(DependencePolicy::Transitive) => {
                f.write_str("selective(transitive)")
            }
            RecoveryMode::DiscardAll => f.write_str("discard-all"),
        }
    }
}

/// How precisely the faulting point inside the culprit is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Zero detection latency: the culprit's partial work up to the faulting
    /// instruction is sound and the culprit resumes in place.
    Instruction,
    /// Non-zero detection latency: the culprit's work cannot be trusted and
    /// it restarts from its sub-thread checkpoint.
    SubThread,
}

/// The REX's decision for one exception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// The excepting sub-thread.
    pub culprit: SubThreadId,
    /// Strategy that produced the plan.
    pub mode: RecoveryMode,
    /// Precision level applied.
    pub precision: Precision,
    /// Sub-threads whose state must be restored, youngest first (the reverse
    /// ROL / reverse WAL order).
    pub squash: Vec<SubThreadId>,
    /// Sub-threads to re-dispatch after restoration, oldest first.
    pub restart: Vec<SubThreadId>,
    /// Whether the culprit resumes from the faulting instruction instead of
    /// re-executing (instruction-precise recovery).
    pub resume_culprit: bool,
    /// In-flight sub-threads untouched by the plan — the work selective
    /// restart saves.
    pub unaffected: usize,
}

impl RecoveryPlan {
    /// The squashed ids as a set, for history-buffer / WAL walks.
    pub fn squash_set(&self) -> BTreeSet<SubThreadId> {
        self.squash.iter().copied().collect()
    }

    /// Total sub-threads whose work is discarded.
    pub fn discarded(&self) -> usize {
        self.squash.len()
    }
}

impl fmt::Display for RecoveryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} recovery of {}: squash {} sub-thread(s), {} unaffected",
            self.mode,
            self.culprit,
            self.squash.len(),
            self.unaffected
        )
    }
}

/// Computes a recovery plan for an excepted sub-thread.
///
/// # Errors
///
/// * [`GprsError::UnknownSubThread`] — the culprit is not in the ROL.
/// * [`GprsError::NotExcepted`] — the culprit's entry carries no exception
///   (callers must first attribute one via
///   [`ReorderList::mark_excepted`](crate::rol::ReorderList::mark_excepted)).
///
/// # Examples
/// ```
/// use gprs_core::recovery::{plan_recovery, Precision, RecoveryMode};
/// use gprs_core::rol::ReorderList;
/// use gprs_core::subthread::{SubThread, SubThreadKind};
/// use gprs_core::exception::{Exception, ExceptionKind};
/// use gprs_core::ids::*;
/// let mut rol = ReorderList::new();
/// for i in 0..3 {
///     rol.insert(SubThread::new(SubThreadId::new(i), ThreadId::new(i as u32),
///                GroupId::new(0), SubThreadKind::Initial, None))?;
/// }
/// rol.mark_excepted(SubThreadId::new(1),
///     Exception::global(ExceptionKind::SoftFault, ContextId::new(0), 0))?;
/// let plan = plan_recovery(&rol, SubThreadId::new(1),
///                          RecoveryMode::Basic, Precision::SubThread)?;
/// assert_eq!(plan.squash, vec![SubThreadId::new(2), SubThreadId::new(1)]);
/// assert_eq!(plan.unaffected, 1); // ST0 keeps running
/// # Ok::<(), gprs_core::error::GprsError>(())
/// ```
pub fn plan_recovery(
    rol: &ReorderList,
    culprit: SubThreadId,
    mode: RecoveryMode,
    precision: Precision,
) -> Result<RecoveryPlan> {
    let entry = rol
        .get(culprit)
        .ok_or(GprsError::UnknownSubThread(culprit))?;
    if entry.status != SubThreadStatus::Excepted {
        return Err(GprsError::NotExcepted(culprit));
    }

    let mut squash: Vec<SubThreadId> = match mode {
        RecoveryMode::Basic => rol.squash_suffix(culprit),
        RecoveryMode::DiscardAll => {
            let mut all: Vec<SubThreadId> = rol.iter().map(|e| e.id()).collect();
            all.reverse();
            all
        }
        RecoveryMode::Selective(policy) => {
            let mut affected: Vec<SubThreadId> =
                affected_set(rol, culprit, policy)?.into_iter().collect();
            affected.reverse();
            affected
        }
    };

    let resume_culprit = precision == Precision::Instruction && mode != RecoveryMode::DiscardAll;
    if resume_culprit {
        squash.retain(|&id| id != culprit);
    }

    let mut restart: Vec<SubThreadId> = squash.clone();
    restart.reverse();

    let squash_ids: BTreeSet<SubThreadId> = squash.iter().copied().collect();
    let mut unaffected = unaffected_count(rol, &squash_ids);
    if resume_culprit {
        // The culprit is neither squashed nor unaffected; it resumes.
        unaffected = unaffected.saturating_sub(1);
    }

    Ok(RecoveryPlan {
        culprit,
        mode,
        precision,
        squash,
        restart,
        resume_culprit,
        unaffected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exception::{Exception, ExceptionKind};
    use crate::ids::{ContextId, GroupId, LockId, ThreadId};
    use crate::subthread::{SubThread, SubThreadKind, SyncOp};

    fn st(id: u64, th: u32, lock: Option<u64>) -> SubThread {
        SubThread::new(
            SubThreadId::new(id),
            ThreadId::new(th),
            GroupId::new(0),
            SubThreadKind::CriticalSection,
            lock.map(|l| SyncOp::LockAcquire(LockId::new(l))),
        )
    }

    fn rol_with_exception(culprit: u64) -> ReorderList {
        // ST0(TH0,L1) ST1(TH1,L2) ST2(TH2,L2) ST3(TH3,L3) ST4(TH1,L4)
        let mut rol = ReorderList::new();
        rol.insert(st(0, 0, Some(1))).unwrap();
        rol.insert(st(1, 1, Some(2))).unwrap();
        rol.insert(st(2, 2, Some(2))).unwrap();
        rol.insert(st(3, 3, Some(3))).unwrap();
        rol.insert(st(4, 1, Some(4))).unwrap();
        rol.mark_excepted(
            SubThreadId::new(culprit),
            Exception::global(ExceptionKind::SoftFault, ContextId::new(0), 0),
        )
        .unwrap();
        rol
    }

    fn raw(v: &[SubThreadId]) -> Vec<u64> {
        v.iter().map(|s| s.raw()).collect()
    }

    #[test]
    fn basic_squashes_suffix_youngest_first() {
        let rol = rol_with_exception(1);
        let plan =
            plan_recovery(&rol, SubThreadId::new(1), RecoveryMode::Basic, Precision::SubThread)
                .unwrap();
        assert_eq!(raw(&plan.squash), [4, 3, 2, 1]);
        assert_eq!(raw(&plan.restart), [1, 2, 3, 4]);
        assert!(!plan.resume_culprit);
        assert_eq!(plan.unaffected, 1);
        assert_eq!(plan.discarded(), 4);
    }

    #[test]
    fn selective_squashes_only_dependents() {
        let rol = rol_with_exception(1);
        let plan = plan_recovery(
            &rol,
            SubThreadId::new(1),
            RecoveryMode::Selective(DependencePolicy::Transitive),
            Precision::SubThread,
        )
        .unwrap();
        // ST2 shares L2 with culprit; ST4 continues culprit's thread TH1.
        assert_eq!(raw(&plan.squash), [4, 2, 1]);
        assert_eq!(plan.unaffected, 2); // ST0 (older) and ST3 untouched
    }

    #[test]
    fn discard_all_empties_the_rol() {
        let rol = rol_with_exception(2);
        let plan = plan_recovery(
            &rol,
            SubThreadId::new(2),
            RecoveryMode::DiscardAll,
            Precision::SubThread,
        )
        .unwrap();
        assert_eq!(raw(&plan.squash), [4, 3, 2, 1, 0]);
        assert_eq!(plan.unaffected, 0);
    }

    #[test]
    fn instruction_precision_resumes_culprit() {
        let rol = rol_with_exception(1);
        let plan = plan_recovery(
            &rol,
            SubThreadId::new(1),
            RecoveryMode::Basic,
            Precision::Instruction,
        )
        .unwrap();
        assert!(plan.resume_culprit);
        assert!(!plan.squash.contains(&SubThreadId::new(1)));
        assert_eq!(raw(&plan.squash), [4, 3, 2]);
        assert_eq!(plan.unaffected, 1); // only ST0; culprit resumes, not "unaffected"
    }

    #[test]
    fn discard_all_never_resumes() {
        let rol = rol_with_exception(0);
        let plan = plan_recovery(
            &rol,
            SubThreadId::new(0),
            RecoveryMode::DiscardAll,
            Precision::Instruction,
        )
        .unwrap();
        assert!(!plan.resume_culprit);
        assert_eq!(plan.squash.len(), 5);
    }

    #[test]
    fn plan_for_non_excepted_fails() {
        let rol = rol_with_exception(1);
        assert_eq!(
            plan_recovery(
                &rol,
                SubThreadId::new(0),
                RecoveryMode::Basic,
                Precision::SubThread
            ),
            Err(GprsError::NotExcepted(SubThreadId::new(0)))
        );
    }

    #[test]
    fn plan_for_unknown_fails() {
        let rol = rol_with_exception(1);
        assert!(matches!(
            plan_recovery(
                &rol,
                SubThreadId::new(42),
                RecoveryMode::Basic,
                Precision::SubThread
            ),
            Err(GprsError::UnknownSubThread(_))
        ));
    }

    #[test]
    fn selective_beats_basic_on_preserved_work() {
        let rol = rol_with_exception(1);
        let basic =
            plan_recovery(&rol, SubThreadId::new(1), RecoveryMode::Basic, Precision::SubThread)
                .unwrap();
        let selective = plan_recovery(
            &rol,
            SubThreadId::new(1),
            RecoveryMode::Selective(DependencePolicy::Transitive),
            Precision::SubThread,
        )
        .unwrap();
        assert!(selective.unaffected > basic.unaffected);
        assert!(selective.discarded() < basic.discarded());
    }

    #[test]
    fn plan_display_is_informative() {
        let rol = rol_with_exception(1);
        let plan = plan_recovery(
            &rol,
            SubThreadId::new(1),
            RecoveryMode::Selective(DependencePolicy::Direct),
            Precision::SubThread,
        )
        .unwrap();
        let s = plan.to_string();
        assert!(s.contains("selective(direct)"));
        assert!(s.contains("ST1"));
    }
}
