//! Trace-level workload model consumed by the simulator engines and the
//! static analyzer.
//!
//! A workload is a set of logical threads, each a finite sequence of
//! [`Segment`]s: an amount of computation followed by the synchronization
//! operation that ends the sub-thread (in GPRS terms) or simply synchronizes
//! (in Pthreads/CPR terms). The ten benchmark programs of the paper's Table 2
//! are generated in this vocabulary by `gprs-workloads`, and `gprs-analyze`
//! classifies workloads in this vocabulary before execution.

use crate::ids::{AtomicId, BarrierId, ChannelId, GroupId, LockId, ThreadId};
use crate::racecheck::AccessKind;
use std::collections::BTreeMap;
use std::fmt;

/// How a segment's body touches a shared cell *without* synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlainKind {
    /// A plain load.
    Read,
    /// A plain store.
    Write,
    /// A plain load followed by a plain store (a racy read-modify-write).
    Update,
}

impl PlainKind {
    /// The access sequence this pattern performs, in program order.
    pub fn accesses(self) -> &'static [AccessKind] {
        match self {
            PlainKind::Read => &[AccessKind::Read],
            PlainKind::Write => &[AccessKind::Write],
            PlainKind::Update => &[AccessKind::Read, AccessKind::Write],
        }
    }
}

/// The synchronization operation closing a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOp {
    /// Acquire `lock`, execute `cs_work` cycles inside the critical section,
    /// release. Under GPRS the critical section and the *next* segment share
    /// one sub-thread (the unlock-subsumption optimization).
    Lock {
        /// The mutex.
        lock: LockId,
        /// Cycles spent inside the critical section.
        cs_work: u64,
    },
    /// A read-modify-write on an atomic variable.
    Atomic {
        /// The atomic variable.
        atomic: AtomicId,
    },
    /// Enqueue one item into a lock-protected FIFO.
    Push {
        /// The channel.
        chan: ChannelId,
    },
    /// Dequeue one item; blocks (or, under GPRS ordering, re-polls on later
    /// turns) while the FIFO is empty.
    Pop {
        /// The channel.
        chan: ChannelId,
    },
    /// Wait on a barrier with all other threads that use it.
    Barrier {
        /// The barrier.
        barrier: BarrierId,
    },
    /// Thread termination (must be the last segment's op).
    End,
}

impl fmt::Display for SimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimOp::Lock { lock, cs_work } => write!(f, "lock {lock} ({cs_work} cyc)"),
            SimOp::Atomic { atomic } => write!(f, "atomic {atomic}"),
            SimOp::Push { chan } => write!(f, "push {chan}"),
            SimOp::Pop { chan } => write!(f, "pop {chan}"),
            SimOp::Barrier { barrier } => write!(f, "barrier {barrier}"),
            SimOp::End => f.write_str("end"),
        }
    }
}

/// One segment of a thread: computation, then a synchronization operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Cycles of computation before the closing operation.
    pub work: u64,
    /// The closing operation.
    pub op: SimOp,
    /// Application-level checkpoint (mod-set) size in bytes for the
    /// sub-thread this segment opens — drives the recording cost `t_s`.
    pub ckpt_bytes: u64,
    /// An unsynchronized access to a shared cell performed by this
    /// segment's body (the data-race hazard the racecheck subsystem
    /// detects). `None` for well-synchronized segments.
    pub plain: Option<(AtomicId, PlainKind)>,
    /// A lock acquired *inside* this segment's body and released before the
    /// closing op — a nested critical section. When the segment itself sits
    /// inside an outer critical section (its predecessor op was
    /// [`SimOp::Lock`]), the thread holds the outer lock while waiting for
    /// this one: the hold-and-wait pattern the lock-order analysis inspects.
    pub nested: Option<LockId>,
    /// The segment's body performs an effect that escapes the recovery
    /// envelope (an un-undoable external action, e.g. a network send
    /// committed before retirement). Selective restart cannot squash such a
    /// segment precisely; the restartability verifier deny-lints it.
    pub external: bool,
}

impl Segment {
    /// A segment of pure computation ending in `op` with a small default
    /// mod set.
    pub fn new(work: u64, op: SimOp) -> Self {
        Segment {
            work,
            op,
            ckpt_bytes: 256,
            plain: None,
            nested: None,
            external: false,
        }
    }

    /// Sets the checkpointed mod-set size.
    pub fn with_ckpt_bytes(mut self, bytes: u64) -> Self {
        self.ckpt_bytes = bytes;
        self
    }

    /// Marks this segment's body as performing an unsynchronized access to
    /// the shared cell aliased by `atomic`.
    pub fn with_plain(mut self, atomic: AtomicId, kind: PlainKind) -> Self {
        self.plain = Some((atomic, kind));
        self
    }

    /// Marks this segment's body as acquiring (and releasing) `lock` as a
    /// nested critical section.
    pub fn with_nested(mut self, lock: LockId) -> Self {
        self.nested = Some(lock);
        self
    }

    /// Marks this segment's body as performing an externally visible effect
    /// that cannot be undone by the WAL or re-covered by a checkpoint.
    pub fn with_external(mut self) -> Self {
        self.external = true;
        self
    }

    /// Total cycles of computation including any critical-section body.
    pub fn total_work(&self) -> u64 {
        match self.op {
            SimOp::Lock { cs_work, .. } => self.work + cs_work,
            _ => self.work,
        }
    }
}

/// One logical thread of a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSpec {
    /// The thread's id (also its registration order with the order
    /// enforcer).
    pub thread: ThreadId,
    /// Its balance-aware scheduling group.
    pub group: GroupId,
    /// Its group's weight under the weighted scheme (ignored by basic).
    pub weight: u32,
    /// The segments it executes, in order. The final segment must end in
    /// [`SimOp::End`].
    pub segments: Vec<Segment>,
}

impl ThreadSpec {
    /// Creates a thread spec, appending the terminating `End` segment if the
    /// caller did not.
    pub fn new(thread: ThreadId, group: GroupId, weight: u32, mut segments: Vec<Segment>) -> Self {
        if !matches!(segments.last().map(|s| s.op), Some(SimOp::End)) {
            segments.push(Segment::new(0, SimOp::End));
        }
        ThreadSpec {
            thread,
            group,
            weight,
            segments,
        }
    }

    /// Total computation cycles in this thread.
    pub fn total_work(&self) -> u64 {
        self.segments.iter().map(Segment::total_work).sum()
    }
}

/// A complete workload: the trace equivalent of one benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Human-readable program name (Table 2, column 1).
    pub name: String,
    /// All threads, indexed by their position (thread ids must be dense,
    /// starting at 0).
    pub threads: Vec<ThreadSpec>,
}

impl Workload {
    /// Creates a workload from thread specs.
    ///
    /// # Panics
    /// Panics if thread ids are not dense `0..threads.len()` — workload
    /// generators control the ids, so this indicates a generator bug.
    pub fn new(name: impl Into<String>, threads: Vec<ThreadSpec>) -> Self {
        for (i, t) in threads.iter().enumerate() {
            assert_eq!(
                t.thread.raw() as usize,
                i,
                "thread ids must be dense and in order"
            );
        }
        Workload {
            name: name.into(),
            threads,
        }
    }

    /// Total computation cycles across all threads — the ideal serial work.
    pub fn total_work(&self) -> u64 {
        self.threads.iter().map(ThreadSpec::total_work).sum()
    }

    /// Total number of segments (= sub-threads GPRS will create).
    pub fn total_segments(&self) -> u64 {
        self.threads.iter().map(|t| t.segments.len() as u64).sum()
    }

    /// Number of participant threads per barrier (threads that wait on it at
    /// least once).
    pub fn barrier_participants(&self) -> BTreeMap<BarrierId, u32> {
        let mut out: BTreeMap<BarrierId, u32> = BTreeMap::new();
        for t in &self.threads {
            let mut seen = std::collections::BTreeSet::new();
            for s in &t.segments {
                if let SimOp::Barrier { barrier } = s.op {
                    seen.insert(barrier);
                }
            }
            for b in seen {
                *out.entry(b).or_insert(0) += 1;
            }
        }
        out
    }

    /// Checks conservation: every channel's pushes equal its pops, so the
    /// trace can complete. Returns the offending channel on imbalance.
    pub fn check_channel_balance(&self) -> Result<(), ChannelId> {
        let mut balance: BTreeMap<ChannelId, i64> = BTreeMap::new();
        for t in &self.threads {
            for s in &t.segments {
                match s.op {
                    SimOp::Push { chan } => *balance.entry(chan).or_insert(0) += 1,
                    SimOp::Pop { chan } => *balance.entry(chan).or_insert(0) -= 1,
                    _ => {}
                }
            }
        }
        for (c, b) in balance {
            if b != 0 {
                return Err(c);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u32) -> ThreadId {
        ThreadId::new(n)
    }
    fn gid(n: u32) -> GroupId {
        GroupId::new(n)
    }

    #[test]
    fn thread_spec_appends_end() {
        let t = ThreadSpec::new(tid(0), gid(0), 1, vec![Segment::new(100, SimOp::Atomic {
            atomic: AtomicId::new(0),
        })]);
        assert_eq!(t.segments.last().unwrap().op, SimOp::End);
        assert_eq!(t.segments.len(), 2);
    }

    #[test]
    fn total_work_counts_critical_sections() {
        let s = Segment::new(100, SimOp::Lock {
            lock: LockId::new(0),
            cs_work: 50,
        });
        assert_eq!(s.total_work(), 150);
        let t = ThreadSpec::new(tid(0), gid(0), 1, vec![s]);
        assert_eq!(t.total_work(), 150); // End segment adds 0
    }

    #[test]
    fn barrier_participants_counted_once_per_thread() {
        let b = BarrierId::new(0);
        let seg = Segment::new(10, SimOp::Barrier { barrier: b });
        let w = Workload::new(
            "t",
            vec![
                ThreadSpec::new(tid(0), gid(0), 1, vec![seg, seg]),
                ThreadSpec::new(tid(1), gid(0), 1, vec![seg]),
            ],
        );
        assert_eq!(w.barrier_participants()[&b], 2);
    }

    #[test]
    fn channel_balance_detects_mismatch() {
        let c = ChannelId::new(0);
        let w = Workload::new(
            "t",
            vec![
                ThreadSpec::new(tid(0), gid(0), 1, vec![Segment::new(1, SimOp::Push { chan: c })]),
                ThreadSpec::new(tid(1), gid(1), 1, vec![Segment::new(1, SimOp::Pop { chan: c })]),
            ],
        );
        assert_eq!(w.check_channel_balance(), Ok(()));
        let bad = Workload::new(
            "t",
            vec![ThreadSpec::new(
                tid(0),
                gid(0),
                1,
                vec![Segment::new(1, SimOp::Push { chan: c })],
            )],
        );
        assert_eq!(bad.check_channel_balance(), Err(c));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_thread_ids_panic() {
        let _ = Workload::new(
            "t",
            vec![ThreadSpec::new(tid(3), gid(0), 1, vec![])],
        );
    }

    #[test]
    fn workload_totals() {
        let w = Workload::new(
            "t",
            vec![
                ThreadSpec::new(tid(0), gid(0), 1, vec![Segment::new(10, SimOp::End)]),
                ThreadSpec::new(tid(1), gid(0), 1, vec![Segment::new(20, SimOp::End)]),
            ],
        );
        assert_eq!(w.total_work(), 30);
        assert_eq!(w.total_segments(), 2);
    }
}
