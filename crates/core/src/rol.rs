//! The reorder list (ROL) — GPRS's analogue of a superscalar reorder buffer
//! (`§3.2`, "Managing the Program State"; `§3.4`, "Retiring Sub-threads").
//!
//! Every in-flight sub-thread owns an entry, inserted in deterministic total
//! order. A sub-thread retires only from the head, and only once it has
//! completed exception-free — at that point its checkpointed state and WAL
//! records can be pruned, bounding recovery-state size. The REX monitors the
//! ROL to detect excepted entries and to compute recovery plans.

use crate::error::{GprsError, Result};
use crate::exception::Exception;
use crate::ids::{Lsn, ResourceId, SubThreadId, ThreadId};
use crate::subthread::SubThread;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// Execution status of an in-flight sub-thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubThreadStatus {
    /// Ordered and (possibly) executing.
    InFlight,
    /// Finished without exception; waiting to reach the head to retire.
    Completed,
    /// An exception was attributed to this sub-thread.
    Excepted,
    /// Squashed by a recovery plan; awaiting re-execution.
    Squashed,
}

impl fmt::Display for SubThreadStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubThreadStatus::InFlight => "in-flight",
            SubThreadStatus::Completed => "completed",
            SubThreadStatus::Excepted => "excepted",
            SubThreadStatus::Squashed => "squashed",
        };
        f.write_str(s)
    }
}

/// One reorder-list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RolEntry {
    /// The sub-thread this entry tracks.
    pub descriptor: SubThread,
    /// Current status.
    pub status: SubThreadStatus,
    /// Dependence aliases accumulated during execution: every lock acquired
    /// and atomic/channel/barrier touched (`§3.4`, selective restart).
    pub resources: BTreeSet<ResourceId>,
    /// The exception attributed to this sub-thread, if any.
    pub exception: Option<Exception>,
    /// First WAL record written on behalf of this sub-thread, for pruning.
    pub wal_start: Option<Lsn>,
}

impl RolEntry {
    fn new(descriptor: SubThread) -> Self {
        let mut resources = BTreeSet::new();
        if let Some(r) = descriptor.opening_op.and_then(|op| op.resource()) {
            resources.insert(r);
        }
        RolEntry {
            descriptor,
            status: SubThreadStatus::InFlight,
            resources,
            exception: None,
            wal_start: None,
        }
    }

    /// The sub-thread's position in the total order.
    pub fn id(&self) -> SubThreadId {
        self.descriptor.id
    }

    /// The logical thread this sub-thread belongs to.
    pub fn thread(&self) -> ThreadId {
        self.descriptor.thread
    }
}

/// The reorder list itself.
///
/// # Examples
/// ```
/// use gprs_core::rol::{ReorderList, SubThreadStatus};
/// use gprs_core::subthread::{SubThread, SubThreadKind};
/// use gprs_core::ids::{GroupId, SubThreadId, ThreadId};
/// let mut rol = ReorderList::new();
/// let st = SubThread::new(SubThreadId::new(0), ThreadId::new(0), GroupId::new(0),
///                         SubThreadKind::Initial, None);
/// rol.insert(st)?;
/// rol.mark_completed(SubThreadId::new(0))?;
/// let retired = rol.retire_ready();
/// assert_eq!(retired.len(), 1);
/// assert!(rol.is_empty());
/// # Ok::<(), gprs_core::error::GprsError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReorderList {
    entries: VecDeque<RolEntry>,
    retired: u64,
    peak_occupancy: usize,
}

impl ReorderList {
    /// Creates an empty reorder list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a newly ordered sub-thread at the tail.
    ///
    /// # Errors
    /// Returns [`GprsError::OutOfOrderInsert`] if `descriptor.id` is not
    /// strictly greater than every id already present — the order enforcer
    /// must hand sub-threads over in total order.
    pub fn insert(&mut self, descriptor: SubThread) -> Result<()> {
        if let Some(last) = self.entries.back() {
            if descriptor.id <= last.id() {
                return Err(GprsError::OutOfOrderInsert {
                    inserted: descriptor.id,
                    newest: last.id(),
                });
            }
        }
        self.entries.push_back(RolEntry::new(descriptor));
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        Ok(())
    }

    fn index_of(&self, id: SubThreadId) -> Option<usize> {
        // Entries are sorted by id; binary search.
        self.entries
            .binary_search_by(|e| e.id().cmp(&id))
            .ok()
    }

    /// Immutable access to an entry.
    pub fn get(&self, id: SubThreadId) -> Option<&RolEntry> {
        self.index_of(id).map(|ix| &self.entries[ix])
    }

    fn get_mut(&mut self, id: SubThreadId) -> Result<&mut RolEntry> {
        let ix = self
            .index_of(id)
            .ok_or(GprsError::UnknownSubThread(id))?;
        Ok(&mut self.entries[ix])
    }

    /// Records a dependence alias for an executing sub-thread (a lock it
    /// acquired, an atomic/channel it touched).
    ///
    /// # Errors
    /// Returns [`GprsError::UnknownSubThread`] for retired or unknown ids.
    pub fn add_resource(&mut self, id: SubThreadId, resource: ResourceId) -> Result<()> {
        self.get_mut(id)?.resources.insert(resource);
        Ok(())
    }

    /// Records the first WAL record written for this sub-thread.
    ///
    /// # Errors
    /// Returns [`GprsError::UnknownSubThread`] for retired or unknown ids.
    pub fn set_wal_start(&mut self, id: SubThreadId, lsn: Lsn) -> Result<()> {
        let e = self.get_mut(id)?;
        if e.wal_start.is_none() {
            e.wal_start = Some(lsn);
        }
        Ok(())
    }

    /// Marks a sub-thread as completed exception-free.
    ///
    /// # Errors
    /// Returns [`GprsError::UnknownSubThread`] for retired or unknown ids.
    pub fn mark_completed(&mut self, id: SubThreadId) -> Result<()> {
        let e = self.get_mut(id)?;
        if e.status == SubThreadStatus::InFlight || e.status == SubThreadStatus::Squashed {
            e.status = SubThreadStatus::Completed;
        }
        Ok(())
    }

    /// Attributes an exception to a sub-thread ("the REX halts its execution,
    /// records its status in its ROL entry").
    ///
    /// # Errors
    /// Returns [`GprsError::UnknownSubThread`] for retired or unknown ids.
    pub fn mark_excepted(&mut self, id: SubThreadId, exception: Exception) -> Result<()> {
        let e = self.get_mut(id)?;
        e.status = SubThreadStatus::Excepted;
        e.exception = Some(exception);
        Ok(())
    }

    /// Marks a sub-thread squashed by a recovery plan; its accumulated
    /// dependence aliases and exception are cleared for re-execution.
    ///
    /// # Errors
    /// Returns [`GprsError::UnknownSubThread`] for retired or unknown ids.
    pub fn mark_squashed(&mut self, id: SubThreadId) -> Result<()> {
        let e = self.get_mut(id)?;
        e.status = SubThreadStatus::Squashed;
        e.exception = None;
        e.resources.clear();
        if let Some(r) = e.descriptor.opening_op.and_then(|op| op.resource()) {
            e.resources.insert(r);
        }
        Ok(())
    }

    /// The oldest in-flight sub-thread (the ROL head).
    pub fn head(&self) -> Option<&RolEntry> {
        self.entries.front()
    }

    /// The newest ordered sub-thread.
    pub fn tail(&self) -> Option<&RolEntry> {
        self.entries.back()
    }

    /// Retires the head if it has completed exception-free.
    ///
    /// # Errors
    /// Returns [`GprsError::RetireIncomplete`] if the head exists but has not
    /// completed, and [`GprsError::UnknownSubThread`] with a zero id if the
    /// list is empty.
    pub fn retire_head(&mut self) -> Result<RolEntry> {
        match self.entries.front() {
            None => Err(GprsError::UnknownSubThread(SubThreadId::new(0))),
            Some(head) if head.status == SubThreadStatus::Completed => {
                self.retired += 1;
                Ok(self.entries.pop_front().expect("head exists"))
            }
            Some(head) => Err(GprsError::RetireIncomplete(head.id())),
        }
    }

    /// Retires every completed sub-thread reachable from the head — the
    /// REX's continuous ROL-head monitoring loop.
    pub fn retire_ready(&mut self) -> Vec<RolEntry> {
        let mut out = Vec::new();
        self.retire_ready_into(&mut out);
        out
    }

    /// Like [`ReorderList::retire_ready`], but appends into a
    /// caller-provided buffer so a hot retirement path can reuse one
    /// allocation across batches.
    pub fn retire_ready_into(&mut self, out: &mut Vec<RolEntry>) {
        while matches!(
            self.entries.front(),
            Some(e) if e.status == SubThreadStatus::Completed
        ) {
            self.retired += 1;
            out.push(self.entries.pop_front().expect("head exists"));
        }
    }

    /// The oldest excepted entry, if any (basic recovery waits for the
    /// excepted entry to reach the head; selective restart acts immediately).
    pub fn oldest_excepted(&self) -> Option<&RolEntry> {
        self.entries
            .iter()
            .find(|e| e.status == SubThreadStatus::Excepted)
    }

    /// Iterates over all in-flight entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &RolEntry> {
        self.entries.iter()
    }

    /// Iterates over entries strictly younger than `id`, oldest first.
    pub fn iter_younger(&self, id: SubThreadId) -> impl Iterator<Item = &RolEntry> {
        self.entries.iter().filter(move |e| e.id() > id)
    }

    /// Ids of every entry at or younger than `id`, youngest first — the
    /// reverse-ROL restore order of basic recovery.
    pub fn squash_suffix(&self, id: SubThreadId) -> Vec<SubThreadId> {
        let mut ids: Vec<SubThreadId> = self
            .entries
            .iter()
            .filter(|e| e.id() >= id)
            .map(|e| e.id())
            .collect();
        ids.reverse();
        ids
    }

    /// Removes a squashed entry from the middle of the list.
    ///
    /// Used by runtimes that re-execute squashed sub-threads as fresh
    /// entries (with new sequence numbers) instead of reusing the old ones:
    /// the stale entry must not block retirement of older sub-threads.
    ///
    /// # Errors
    /// Returns [`GprsError::UnknownSubThread`] if absent, or
    /// [`GprsError::RetireIncomplete`] if the entry is not squashed (only
    /// squashed entries may leave the list out of order).
    pub fn remove_squashed(&mut self, id: SubThreadId) -> Result<RolEntry> {
        let ix = self
            .index_of(id)
            .ok_or(GprsError::UnknownSubThread(id))?;
        if self.entries[ix].status != SubThreadStatus::Squashed {
            return Err(GprsError::RetireIncomplete(id));
        }
        Ok(self.entries.remove(ix).expect("index valid"))
    }

    /// Whether the list still tracks `id`.
    pub fn contains(&self, id: SubThreadId) -> bool {
        self.index_of(id).is_some()
    }

    /// Number of in-flight entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no sub-threads are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total sub-threads retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Largest number of simultaneously in-flight sub-threads observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exception::{Exception, ExceptionKind};
    use crate::ids::{ContextId, GroupId, LockId};
    use crate::subthread::{SubThreadKind, SyncOp};

    fn st(id: u64, thread: u32) -> SubThread {
        SubThread::new(
            SubThreadId::new(id),
            ThreadId::new(thread),
            GroupId::new(0),
            SubThreadKind::Initial,
            None,
        )
    }

    fn st_with_lock(id: u64, thread: u32, lock: u64) -> SubThread {
        SubThread::new(
            SubThreadId::new(id),
            ThreadId::new(thread),
            GroupId::new(0),
            SubThreadKind::CriticalSection,
            Some(SyncOp::LockAcquire(LockId::new(lock))),
        )
    }

    fn exc() -> Exception {
        Exception::global(ExceptionKind::SoftFault, ContextId::new(0), 0)
    }

    #[test]
    fn insert_enforces_total_order() {
        let mut rol = ReorderList::new();
        rol.insert(st(0, 0)).unwrap();
        rol.insert(st(1, 1)).unwrap();
        assert_eq!(
            rol.insert(st(1, 0)),
            Err(GprsError::OutOfOrderInsert {
                inserted: SubThreadId::new(1),
                newest: SubThreadId::new(1)
            })
        );
        assert_eq!(rol.len(), 2);
    }

    #[test]
    fn opening_lock_op_seeds_resources() {
        let mut rol = ReorderList::new();
        rol.insert(st_with_lock(0, 0, 7)).unwrap();
        let e = rol.get(SubThreadId::new(0)).unwrap();
        assert!(e.resources.contains(&ResourceId::Lock(LockId::new(7))));
    }

    #[test]
    fn retirement_only_from_completed_head() {
        let mut rol = ReorderList::new();
        rol.insert(st(0, 0)).unwrap();
        rol.insert(st(1, 1)).unwrap();
        // Completing the *younger* one does not allow retirement.
        rol.mark_completed(SubThreadId::new(1)).unwrap();
        assert_eq!(
            rol.retire_head(),
            Err(GprsError::RetireIncomplete(SubThreadId::new(0)))
        );
        assert!(rol.retire_ready().is_empty());
        // Completing the head retires both in one sweep.
        rol.mark_completed(SubThreadId::new(0)).unwrap();
        let retired = rol.retire_ready();
        assert_eq!(retired.len(), 2);
        assert_eq!(rol.retired(), 2);
        assert!(rol.is_empty());
    }

    #[test]
    fn excepted_head_blocks_retirement() {
        let mut rol = ReorderList::new();
        rol.insert(st(0, 0)).unwrap();
        rol.mark_excepted(SubThreadId::new(0), exc()).unwrap();
        assert!(rol.retire_head().is_err());
        assert_eq!(rol.oldest_excepted().unwrap().id(), SubThreadId::new(0));
    }

    #[test]
    fn squash_clears_exception_and_dynamic_resources() {
        let mut rol = ReorderList::new();
        rol.insert(st_with_lock(0, 0, 1)).unwrap();
        rol.add_resource(SubThreadId::new(0), ResourceId::Lock(LockId::new(2)))
            .unwrap();
        rol.mark_excepted(SubThreadId::new(0), exc()).unwrap();
        rol.mark_squashed(SubThreadId::new(0)).unwrap();
        let e = rol.get(SubThreadId::new(0)).unwrap();
        assert_eq!(e.status, SubThreadStatus::Squashed);
        assert!(e.exception.is_none());
        // The opening lock is retained (it re-acquires on re-execution); the
        // dynamically accumulated alias is cleared.
        assert!(e.resources.contains(&ResourceId::Lock(LockId::new(1))));
        assert!(!e.resources.contains(&ResourceId::Lock(LockId::new(2))));
        // A squashed sub-thread can complete after re-execution.
        rol.mark_completed(SubThreadId::new(0)).unwrap();
        assert_eq!(rol.retire_ready().len(), 1);
    }

    #[test]
    fn squash_suffix_is_youngest_first() {
        let mut rol = ReorderList::new();
        for i in 0..5 {
            rol.insert(st(i, 0)).unwrap();
        }
        let suffix = rol.squash_suffix(SubThreadId::new(2));
        assert_eq!(
            suffix,
            [4, 3, 2].map(SubThreadId::new).to_vec()
        );
    }

    #[test]
    fn iter_younger_filters() {
        let mut rol = ReorderList::new();
        for i in 0..4 {
            rol.insert(st(i, 0)).unwrap();
        }
        let ids: Vec<u64> = rol.iter_younger(SubThreadId::new(1)).map(|e| e.id().raw()).collect();
        assert_eq!(ids, [2, 3]);
    }

    #[test]
    fn unknown_ids_error() {
        let mut rol = ReorderList::new();
        assert!(rol.mark_completed(SubThreadId::new(3)).is_err());
        assert!(rol
            .add_resource(SubThreadId::new(3), ResourceId::Lock(LockId::new(0)))
            .is_err());
        assert!(rol.retire_head().is_err());
    }

    #[test]
    fn wal_start_is_sticky() {
        let mut rol = ReorderList::new();
        rol.insert(st(0, 0)).unwrap();
        rol.set_wal_start(SubThreadId::new(0), Lsn::new(5)).unwrap();
        rol.set_wal_start(SubThreadId::new(0), Lsn::new(9)).unwrap();
        assert_eq!(rol.get(SubThreadId::new(0)).unwrap().wal_start, Some(Lsn::new(5)));
    }

    #[test]
    fn remove_squashed_requires_squashed_status() {
        let mut rol = ReorderList::new();
        rol.insert(st(0, 0)).unwrap();
        rol.insert(st(1, 1)).unwrap();
        rol.insert(st(2, 2)).unwrap();
        assert_eq!(
            rol.remove_squashed(SubThreadId::new(1)),
            Err(GprsError::RetireIncomplete(SubThreadId::new(1)))
        );
        rol.mark_squashed(SubThreadId::new(1)).unwrap();
        let e = rol.remove_squashed(SubThreadId::new(1)).unwrap();
        assert_eq!(e.id(), SubThreadId::new(1));
        assert_eq!(rol.len(), 2);
        // Retirement of the remaining entries is unobstructed.
        rol.mark_completed(SubThreadId::new(0)).unwrap();
        rol.mark_completed(SubThreadId::new(2)).unwrap();
        assert_eq!(rol.retire_ready().len(), 2);
        assert!(matches!(
            rol.remove_squashed(SubThreadId::new(5)),
            Err(GprsError::UnknownSubThread(_))
        ));
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let mut rol = ReorderList::new();
        for i in 0..3 {
            rol.insert(st(i, 0)).unwrap();
            rol.mark_completed(SubThreadId::new(i)).unwrap();
        }
        rol.retire_ready();
        assert_eq!(rol.peak_occupancy(), 3);
        assert!(rol.is_empty());
    }
}
