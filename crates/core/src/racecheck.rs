//! Happens-before data-race detection over the retired sub-thread order.
//!
//! Selective restart (`§3.4`) is only sound for programs whose shared
//! accesses are mediated by the synchronization operations the runtime
//! observes — a data race lets squashed state leak through plain loads and
//! stores that no lock or atomic aliases. This module guards that
//! assumption with a FastTrack-style vector-clock detector
//! (Flanagan & Freund, PLDI 2009) adapted to the GPRS execution model:
//!
//! * **Epochs are sub-threads, not instructions.** Each sub-thread is one
//!   epoch of its logical thread; a race report names the two offending
//!   [`SubThreadId`]s (so the culprit restart sets are known) plus the
//!   [`ResourceId`] of the cell.
//! * **Processing is retirement-driven.** All detector work happens when a
//!   sub-thread retires from the reorder list, in the deterministic total
//!   order — never on the physically racing access itself. Since the
//!   retired order, each sub-thread's access sequence, and every
//!   happens-before edge are deterministic, the *first race report is
//!   identical across runs and worker counts* even though the racy values
//!   themselves are not.
//! * **Conservatively safe under recovery.** Squashes do not rewind the
//!   detector; clocks only ever grow, and extra happens-before edges can
//!   only *mask* races, never invent them. A fault-free run therefore
//!   reports no false positives, and an injected run may at worst
//!   over-report — which only makes the consumer (hybrid
//!   selective→basic escalation) more conservative.
//!
//! The observed happens-before edges are: lock release→acquire, atomic
//! RMW (acquire *and* release, like `SeqCst` `fetch_add`), channel
//! push→pop via item provenance, barrier arrival→resume per generation,
//! thread spawn→first-sub-thread and last-sub-thread→join, and serialized
//! (run-alone) sub-threads, which synchronize with everything.

use crate::ids::{AtomicId, BarrierId, ChannelId, LockId, ResourceId, SubThreadId, ThreadId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Cap on retained full [`Race`] reports (counters keep counting past it).
const MAX_REPORTS: usize = 64;

/// A vector clock mapping each logical thread to the last epoch of it that
/// happens-before the clock's owner. Sparse: absent threads are at 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    inner: BTreeMap<ThreadId, u64>,
}

impl VectorClock {
    /// The empty clock (all components zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Component for `thread` (0 when never advanced).
    pub fn get(&self, thread: ThreadId) -> u64 {
        self.inner.get(&thread).copied().unwrap_or(0)
    }

    /// Advances `thread`'s component by one and returns the new value.
    pub fn tick(&mut self, thread: ThreadId) -> u64 {
        let slot = self.inner.entry(thread).or_insert(0);
        *slot += 1;
        *slot
    }

    /// Pointwise maximum with `other` (the happens-before join).
    pub fn join(&mut self, other: &VectorClock) {
        for (&t, &v) in &other.inner {
            let slot = self.inner.entry(t).or_insert(0);
            *slot = (*slot).max(v);
        }
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (t, v)) in self.inner.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}:{v}")?;
        }
        write!(f, "]")
    }
}

/// Whether a plain access reads or writes the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A plain load.
    Read,
    /// A plain store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// One plain access as remembered by a cell: who touched it, from which
/// sub-thread, and at which epoch of the owning thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The sub-thread whose body performed the access.
    pub subthread: SubThreadId,
    /// The logical thread that sub-thread belongs to.
    pub thread: ThreadId,
    /// Load or store.
    pub kind: AccessKind,
    /// The thread's epoch (clock component) at the access.
    pub epoch: u64,
}

/// A detected race: two accesses to the same cell, at least one a write,
/// with no happens-before edge between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The shared cell both accesses touched.
    pub resource: ResourceId,
    /// The earlier access in retired order.
    pub prior: Access,
    /// The later access in retired order.
    pub current: Access,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data race on {}: {} ({}) {} vs {} ({}) {}",
            self.resource,
            self.prior.subthread,
            self.prior.thread,
            self.prior.kind,
            self.current.subthread,
            self.current.thread,
            self.current.kind,
        )
    }
}

/// The synchronization operation that *opened* a retiring sub-thread —
/// the acquire-side happens-before edge consumed at the start of its epoch.
///
/// Lock and atomic acquires are not listed here: they are covered by
/// [`RetireInfo::sync_resources`], which joins the resource clocks at open
/// (this also covers nested critical sections, whose acquire point the
/// retirement record does not pinpoint; joining early only masks races,
/// which is the safe direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenEdge {
    /// Opened by a channel pop delivering the item pushed by `producer`
    /// (`None` when the engine could not attribute provenance; no edge).
    ChanPop {
        /// The channel popped from.
        chan: ChannelId,
        /// The sub-thread whose push produced the popped item.
        producer: Option<SubThreadId>,
    },
    /// Opened by a channel push: the push point *releases* — the clock at
    /// open is published for the consumer that later pops this item.
    ChanPush(ChannelId),
    /// A barrier continuation: joins the arrival clocks of `gen`.
    BarrierResume {
        /// The barrier resumed from.
        barrier: BarrierId,
        /// The released generation (1-based).
        gen: u64,
    },
    /// A fork continuation in the parent: publishes the pre-fork clock for
    /// `child`'s first sub-thread.
    Fork {
        /// The spawned thread.
        child: ThreadId,
    },
    /// Opened by a join on `child`: acquires the child's final clock.
    Join {
        /// The joined (exited) thread.
        child: ThreadId,
    },
    /// A serialized (run-alone) sub-thread: synchronizes with every thread
    /// at open and publishes its clock globally at close.
    Serialized,
}

/// Everything the detector needs about one retiring sub-thread.
#[derive(Debug, Clone, Copy)]
pub struct RetireInfo<'a> {
    /// The retiring sub-thread.
    pub id: SubThreadId,
    /// Its logical thread.
    pub thread: ThreadId,
    /// The acquire-side edge of its opening operation, if any.
    pub open: Option<OpenEdge>,
    /// Locks and atomics this sub-thread acquired (opening or nested).
    /// Their clocks are joined at open and re-published (release) at close.
    pub sync_resources: &'a [ResourceId],
    /// Plain accesses performed by the body, in program order.
    pub accesses: &'a [(ResourceId, AccessKind)],
    /// When this sub-thread ends at a barrier arrival: the `(barrier,
    /// generation)` its close-clock contributes to.
    pub arrival: Option<(BarrierId, u64)>,
}

/// Per-cell FastTrack state: the last write plus the latest read of each
/// thread since that write.
#[derive(Debug, Clone, Default)]
struct CellState {
    write: Option<Access>,
    reads: Vec<Access>,
}

/// The vector-clock happens-before detector. Drive it by calling
/// [`RaceDetector::retire`] for every sub-thread, in retired order.
#[derive(Debug, Clone, Default)]
pub struct RaceDetector {
    /// Current clock of each logical thread.
    threads: BTreeMap<ThreadId, VectorClock>,
    /// Release clock of each lock (last holder's close).
    locks: BTreeMap<LockId, VectorClock>,
    /// Release clock of each atomic (last RMW's close).
    atomics: BTreeMap<AtomicId, VectorClock>,
    /// Push-point clock keyed by the pushing sub-thread (item provenance).
    pushes: BTreeMap<SubThreadId, VectorClock>,
    /// Accumulated arrival clocks per barrier generation.
    gens: BTreeMap<(BarrierId, u64), VectorClock>,
    /// Pre-fork clock published by a spawner for its child's first epoch.
    forks: BTreeMap<ThreadId, VectorClock>,
    /// Clock of the last serialized sub-thread (joined by every open).
    serialized: Option<VectorClock>,
    /// FastTrack state per plain-accessed cell.
    cells: BTreeMap<ResourceId, CellState>,
    races: u64,
    reports: Vec<Race>,
    racy_threads: BTreeSet<ThreadId>,
}

impl RaceDetector {
    /// A fresh detector with empty clocks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total races detected so far (keeps counting past the report cap).
    pub fn races(&self) -> u64 {
        self.races
    }

    /// The first race in retired order, if any.
    pub fn first_race(&self) -> Option<&Race> {
        self.reports.first()
    }

    /// Retained race reports (capped at an internal limit).
    pub fn reports(&self) -> &[Race] {
        &self.reports
    }

    /// Whether `thread` participated in any detected race — the trigger for
    /// hybrid selective→basic restart escalation.
    pub fn is_racy_thread(&self, thread: ThreadId) -> bool {
        self.racy_threads.contains(&thread)
    }

    /// Threads that participated in at least one race, ascending.
    pub fn racy_threads(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.racy_threads.iter().copied()
    }

    /// Contributes `thread`'s *current* clock to a barrier generation's
    /// arrival set. Engines use this when an arrival's owning sub-thread
    /// already retired before the generation number was known (joins
    /// commute, so contributing at grant time is equivalent).
    pub fn contribute_arrival(&mut self, thread: ThreadId, barrier: BarrierId, gen: u64) {
        let clock = self.threads.entry(thread).or_default().clone();
        self.gens.entry((barrier, gen)).or_default().join(&clock);
    }

    /// Discards per-sub-thread provenance for a squashed sub-thread (its
    /// re-execution will re-publish under the same id). Thread and resource
    /// clocks are deliberately *not* rewound — see the module docs.
    pub fn forget_subthread(&mut self, id: SubThreadId) {
        self.pushes.remove(&id);
    }

    /// Processes one retiring sub-thread: consume its acquire edges, tick
    /// its thread's epoch, check its plain accesses, publish its release
    /// edges. Returns races newly detected at this retirement, in access
    /// order.
    pub fn retire(&mut self, info: RetireInfo<'_>) -> Vec<Race> {
        let t = info.thread;

        // -- acquire side -------------------------------------------------
        let mut acquired = VectorClock::new();
        if let Some(fork) = self.forks.remove(&t) {
            acquired.join(&fork);
        }
        if let Some(ser) = &self.serialized {
            acquired.join(ser);
        }
        match info.open {
            Some(OpenEdge::ChanPop {
                producer: Some(p), ..
            }) => {
                // Producers retire first (push stid < pop stid and retirement
                // is stid-ordered), so the clock is present in fault-free
                // runs; after a squash the pop may re-retire without it —
                // a missed edge is only over-reporting, never unsoundness.
                if let Some(push) = self.pushes.get(&p) {
                    acquired.join(&push.clone());
                }
            }
            Some(OpenEdge::BarrierResume { barrier, gen }) => {
                if let Some(g) = self.gens.get(&(barrier, gen)) {
                    acquired.join(&g.clone());
                }
            }
            Some(OpenEdge::Join { child }) => {
                if let Some(c) = self.threads.get(&child) {
                    acquired.join(&c.clone());
                }
            }
            Some(OpenEdge::Serialized) => {
                let others: Vec<VectorClock> = self.threads.values().cloned().collect();
                for c in &others {
                    acquired.join(c);
                }
            }
            _ => {}
        }
        for r in info.sync_resources {
            let rel = match r {
                ResourceId::Lock(l) => self.locks.get(l),
                ResourceId::Atomic(a) => self.atomics.get(a),
                _ => None,
            };
            if let Some(rel) = rel {
                acquired.join(&rel.clone());
            }
        }
        let clock = self.threads.entry(t).or_default();
        clock.join(&acquired);

        // -- release edges anchored at the *open* point -------------------
        match info.open {
            Some(OpenEdge::Fork { child }) => {
                self.forks.insert(child, clock.clone());
            }
            Some(OpenEdge::ChanPush(_)) => {
                self.pushes.insert(info.id, clock.clone());
            }
            _ => {}
        }

        // -- new epoch for the body ---------------------------------------
        let epoch = clock.tick(t);
        let clock = clock.clone();

        // -- plain-access checks, in program order ------------------------
        let mut found = Vec::new();
        for &(res, kind) in info.accesses {
            let cur = Access {
                subthread: info.id,
                thread: t,
                kind,
                epoch,
            };
            let cell = self.cells.entry(res).or_default();
            let mut report = |prior: &Access| {
                found.push(Race {
                    resource: res,
                    prior: *prior,
                    current: cur,
                });
            };
            if let Some(w) = &cell.write {
                if w.thread != t && clock.get(w.thread) < w.epoch {
                    report(w);
                }
            }
            match kind {
                AccessKind::Write => {
                    for r in &cell.reads {
                        if r.thread != t && clock.get(r.thread) < r.epoch {
                            report(r);
                        }
                    }
                    cell.write = Some(cur);
                    cell.reads.clear();
                }
                AccessKind::Read => {
                    if let Some(slot) = cell.reads.iter_mut().find(|r| r.thread == t) {
                        *slot = cur;
                    } else {
                        cell.reads.push(cur);
                    }
                }
            }
        }
        for race in &found {
            self.races += 1;
            self.racy_threads.insert(race.prior.thread);
            self.racy_threads.insert(race.current.thread);
            if self.reports.len() < MAX_REPORTS {
                self.reports.push(race.clone());
            }
        }

        // -- release side (close point) -----------------------------------
        for r in info.sync_resources {
            match r {
                ResourceId::Lock(l) => self.locks.entry(*l).or_default().join(&clock),
                ResourceId::Atomic(a) => self.atomics.entry(*a).or_default().join(&clock),
                _ => {}
            }
        }
        if let Some((b, gen)) = info.arrival {
            self.gens.entry((b, gen)).or_default().join(&clock);
        }
        if info.open == Some(OpenEdge::Serialized) {
            self.serialized = Some(clock);
        }
        found
    }
}

/// Packs a [`ResourceId`] into a single `u64` for fixed-width trace events:
/// a 2-bit kind tag in the top bits over the raw id.
pub fn resource_code(r: ResourceId) -> u64 {
    const TAG_SHIFT: u32 = 62;
    match r {
        ResourceId::Lock(l) => l.raw(),
        ResourceId::Atomic(a) => (1u64 << TAG_SHIFT) | a.raw(),
        ResourceId::Channel(c) => (2u64 << TAG_SHIFT) | c.raw(),
        ResourceId::Barrier(b) => (3u64 << TAG_SHIFT) | b.raw(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(n: u64) -> SubThreadId {
        SubThreadId::new(n)
    }
    fn th(n: u32) -> ThreadId {
        ThreadId::new(n)
    }
    const CELL: ResourceId = ResourceId::Atomic(AtomicId::new(0));

    fn retire_plain(
        d: &mut RaceDetector,
        id: u64,
        thread: u32,
        accesses: &[(ResourceId, AccessKind)],
    ) -> Vec<Race> {
        d.retire(RetireInfo {
            id: st(id),
            thread: th(thread),
            open: None,
            sync_resources: &[],
            accesses,
            arrival: None,
        })
    }

    #[test]
    fn concurrent_writes_race() {
        let mut d = RaceDetector::new();
        let w = [(CELL, AccessKind::Write)];
        assert!(retire_plain(&mut d, 0, 0, &w).is_empty());
        let races = retire_plain(&mut d, 1, 1, &w);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].resource, CELL);
        assert_eq!(races[0].prior.subthread, st(0));
        assert_eq!(races[0].current.subthread, st(1));
        assert!(d.is_racy_thread(th(0)) && d.is_racy_thread(th(1)));
        assert_eq!(d.races(), 1);
    }

    #[test]
    fn read_write_and_write_read_race_but_read_read_does_not() {
        let mut d = RaceDetector::new();
        let r = [(CELL, AccessKind::Read)];
        let w = [(CELL, AccessKind::Write)];
        assert!(retire_plain(&mut d, 0, 0, &r).is_empty());
        assert!(retire_plain(&mut d, 1, 1, &r).is_empty(), "read/read is fine");
        assert_eq!(retire_plain(&mut d, 2, 2, &w).len(), 2, "write races both reads");
        assert_eq!(retire_plain(&mut d, 3, 0, &r).len(), 1, "read races the write");
    }

    #[test]
    fn lock_transfer_orders_accesses() {
        let mut d = RaceDetector::new();
        let l = ResourceId::Lock(LockId::new(0));
        let w = [(CELL, AccessKind::Write)];
        // TH0's critical section writes, releases; TH1 acquires, writes.
        let no = d.retire(RetireInfo {
            id: st(0),
            thread: th(0),
            open: None,
            sync_resources: &[l],
            accesses: &w,
            arrival: None,
        });
        assert!(no.is_empty());
        let no = d.retire(RetireInfo {
            id: st(1),
            thread: th(1),
            open: None,
            sync_resources: &[l],
            accesses: &w,
            arrival: None,
        });
        assert!(no.is_empty(), "release→acquire orders the writes");
        // A third thread that skips the lock races with TH1's write.
        assert_eq!(retire_plain(&mut d, 2, 2, &w).len(), 1);
        assert_eq!(d.races(), 1);
    }

    #[test]
    fn push_pop_provenance_orders_accesses() {
        let mut d = RaceDetector::new();
        let c = ChannelId::new(0);
        let w = [(CELL, AccessKind::Write)];
        // TH0: write in ST0's body, then ST1 opens with the push (release).
        assert!(retire_plain(&mut d, 0, 0, &w).is_empty());
        d.retire(RetireInfo {
            id: st(1),
            thread: th(0),
            open: Some(OpenEdge::ChanPush(c)),
            sync_resources: &[],
            accesses: &[],
            arrival: None,
        });
        // TH1 pops that item and writes: ordered. Without provenance: race.
        let no = d.retire(RetireInfo {
            id: st(2),
            thread: th(1),
            open: Some(OpenEdge::ChanPop {
                chan: c,
                producer: Some(st(1)),
            }),
            sync_resources: &[],
            accesses: &w,
            arrival: None,
        });
        assert!(no.is_empty(), "push→pop orders the writes");
    }

    #[test]
    fn fork_and_join_edges() {
        let mut d = RaceDetector::new();
        let w = [(CELL, AccessKind::Write)];
        // Parent writes, then forks TH1.
        assert!(retire_plain(&mut d, 0, 0, &w).is_empty());
        d.retire(RetireInfo {
            id: st(1),
            thread: th(0),
            open: Some(OpenEdge::Fork { child: th(1) }),
            sync_resources: &[],
            accesses: &[],
            arrival: None,
        });
        // Child's first sub-thread sees the pre-fork write.
        assert!(retire_plain(&mut d, 2, 1, &w).is_empty(), "fork edge");
        // Parent joining the child sees the child's write.
        let no = d.retire(RetireInfo {
            id: st(3),
            thread: th(0),
            open: Some(OpenEdge::Join { child: th(1) }),
            sync_resources: &[],
            accesses: &w,
            arrival: None,
        });
        assert!(no.is_empty(), "join edge");
    }

    #[test]
    fn barrier_generation_orders_sides() {
        let mut d = RaceDetector::new();
        let b = BarrierId::new(0);
        let w = [(CELL, AccessKind::Write)];
        // Both threads write before arriving at generation 1.
        for (id, t) in [(0u64, 0u32), (1, 1)] {
            let races = d.retire(RetireInfo {
                id: st(id),
                thread: th(t),
                open: None,
                sync_resources: &[],
                accesses: &w,
                arrival: Some((b, 1)),
            });
            assert_eq!(races.len(), id as usize, "pre-barrier writes do race");
        }
        // Continuations join the generation: ordered after both writes.
        let no = d.retire(RetireInfo {
            id: st(2),
            thread: th(0),
            open: Some(OpenEdge::BarrierResume { barrier: b, gen: 1 }),
            sync_resources: &[],
            accesses: &w,
            arrival: None,
        });
        assert!(no.is_empty(), "resume is ordered after all arrivals");
    }

    #[test]
    fn first_race_is_stable_and_reports_cap() {
        let mut d = RaceDetector::new();
        let w = [(CELL, AccessKind::Write)];
        for i in 0..200u64 {
            retire_plain(&mut d, i, (i % 4) as u32, &w);
        }
        assert_eq!(d.races(), 199, "every write races the previous one");
        assert!(d.reports().len() <= 64);
        let first = d.first_race().expect("some race").clone();
        assert_eq!(first.prior.subthread, st(0));
        assert_eq!(first.current.subthread, st(1));
    }

    #[test]
    fn serialized_subthread_synchronizes_globally() {
        let mut d = RaceDetector::new();
        let w = [(CELL, AccessKind::Write)];
        assert!(retire_plain(&mut d, 0, 0, &w).is_empty());
        let no = d.retire(RetireInfo {
            id: st(1),
            thread: th(1),
            open: Some(OpenEdge::Serialized),
            sync_resources: &[],
            accesses: &w,
            arrival: None,
        });
        assert!(no.is_empty(), "serialized open joins every thread");
        // And a later plain access on a third thread is ordered after it.
        assert!(retire_plain(&mut d, 2, 2, &w).is_empty());
    }

    #[test]
    fn resource_codes_are_distinct() {
        let codes = [
            resource_code(ResourceId::Lock(LockId::new(5))),
            resource_code(ResourceId::Atomic(AtomicId::new(5))),
            resource_code(ResourceId::Channel(ChannelId::new(5))),
            resource_code(ResourceId::Barrier(BarrierId::new(5))),
        ];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
