//! Application-level checkpointing and the history buffer (`§3.2`).
//!
//! GPRS checkpoints, at each sub-thread's creation, only "the state necessary
//! to restart the sub-thread": its execution state and its *mod set* — the
//! data it may modify. The paper obtains mod-set checkpoint functions from
//! the programmer; this reproduction expresses the same contract with the
//! [`Checkpoint`] trait. Snapshots live in the [`HistoryBuffer`] until the
//! sub-thread retires, and are applied youngest-first during rollback.

use crate::ids::SubThreadId;
use std::collections::BTreeSet;
use std::fmt;

/// State that can be checkpointed before a sub-thread runs and restored if
/// the sub-thread is squashed.
///
/// This is the safe-Rust equivalent of the paper's user-provided
/// checkpointing functions: the implementor decides *what* to save (the mod
/// set), which is what makes checkpoints small. For plain-old-data state the
/// whole value is its own snapshot ([`Checkpoint`] is implemented for the
/// common `Clone` types below).
///
/// # Examples
/// ```
/// use gprs_core::history::Checkpoint;
/// // A histogram thread's state: only the bins it owns are its mod set.
/// struct Worker { bins: Vec<u64>, scratch: Vec<u8> }
/// impl Checkpoint for Worker {
///     type Snapshot = Vec<u64>;
///     fn checkpoint(&self) -> Vec<u64> { self.bins.clone() } // not scratch
///     fn restore(&mut self, s: &Vec<u64>) { self.bins = s.clone(); }
/// }
/// ```
pub trait Checkpoint {
    /// The saved representation.
    type Snapshot: Send + 'static;

    /// Records the state needed to re-execute from this point.
    fn checkpoint(&self) -> Self::Snapshot;

    /// Reinstates previously checkpointed state. May be called repeatedly
    /// with the same snapshot if exceptions strike during re-execution.
    fn restore(&mut self, snapshot: &Self::Snapshot);
}

macro_rules! clone_checkpoint {
    ($($ty:ty),* $(,)?) => {$(
        impl Checkpoint for $ty {
            type Snapshot = $ty;
            fn checkpoint(&self) -> $ty {
                self.clone()
            }
            fn restore(&mut self, snapshot: &$ty) {
                *self = snapshot.clone();
            }
        }
    )*};
}

clone_checkpoint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, String);

impl<T: Clone + Send + 'static> Checkpoint for Vec<T> {
    type Snapshot = Vec<T>;
    fn checkpoint(&self) -> Vec<T> {
        self.clone()
    }
    fn restore(&mut self, snapshot: &Vec<T>) {
        self.clone_from(snapshot);
    }
}

impl<T: Clone + Send + 'static> Checkpoint for Option<T> {
    type Snapshot = Option<T>;
    fn checkpoint(&self) -> Option<T> {
        self.clone()
    }
    fn restore(&mut self, snapshot: &Option<T>) {
        self.clone_from(snapshot);
    }
}

impl<K: Clone + Ord + Send + 'static, V: Clone + Send + 'static> Checkpoint
    for std::collections::BTreeMap<K, V>
{
    type Snapshot = std::collections::BTreeMap<K, V>;
    fn checkpoint(&self) -> Self::Snapshot {
        self.clone()
    }
    fn restore(&mut self, snapshot: &Self::Snapshot) {
        self.clone_from(snapshot);
    }
}

impl<A: Checkpoint, B: Checkpoint> Checkpoint for (A, B) {
    type Snapshot = (A::Snapshot, B::Snapshot);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.0.checkpoint(), self.1.checkpoint())
    }
    fn restore(&mut self, snapshot: &Self::Snapshot) {
        self.0.restore(&snapshot.0);
        self.1.restore(&snapshot.1);
    }
}

/// A type-erased restore action recorded in the history buffer.
///
/// The runtime captures, at checkpoint time, a closure that reinstates the
/// saved state when invoked. Actions carry a global sequence so that rollback
/// can apply them in exact reverse order across sub-threads.
pub struct UndoAction {
    seq: u64,
    subthread: SubThreadId,
    label: &'static str,
    size_hint: usize,
    apply: Box<dyn FnMut() + Send>,
}

impl UndoAction {
    /// The sub-thread whose squash triggers this action.
    pub fn subthread(&self) -> SubThreadId {
        self.subthread
    }

    /// What the action restores (for diagnostics).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Approximate checkpointed bytes, for the `t_s` accounting of `§2.3`.
    pub fn size_hint(&self) -> usize {
        self.size_hint
    }

    /// Applies the restore.
    pub fn apply(mut self) {
        (self.apply)()
    }
}

impl fmt::Debug for UndoAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UndoAction")
            .field("seq", &self.seq)
            .field("subthread", &self.subthread)
            .field("label", &self.label)
            .field("size_hint", &self.size_hint)
            .finish()
    }
}

/// The history buffer: checkpointed state of every in-flight sub-thread
/// (Figure 4).
///
/// # Examples
/// ```
/// use gprs_core::history::HistoryBuffer;
/// use gprs_core::ids::SubThreadId;
/// use std::sync::{Arc, Mutex};
///
/// let cell = Arc::new(Mutex::new(1));
/// let mut hb = HistoryBuffer::new();
/// // Checkpoint before ST0 mutates the cell...
/// let saved = *cell.lock().unwrap();
/// let c = Arc::clone(&cell);
/// hb.record(SubThreadId::new(0), "cell", 8, move || *c.lock().unwrap() = saved);
/// *cell.lock().unwrap() = 99;
/// // ...squash ST0: the mutation is rolled back.
/// let mut squashed = std::collections::BTreeSet::new();
/// squashed.insert(SubThreadId::new(0));
/// for action in hb.take_for(&squashed) { action.apply(); }
/// assert_eq!(*cell.lock().unwrap(), 1);
/// ```
#[derive(Debug, Default)]
pub struct HistoryBuffer {
    actions: Vec<UndoAction>,
    next_seq: u64,
    bytes: usize,
    peak_bytes: usize,
    recorded: u64,
}

impl HistoryBuffer {
    /// Creates an empty history buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a restore action on behalf of `subthread`.
    ///
    /// `size_hint` approximates the checkpointed bytes, feeding the recording
    /// cost `t_s` of the analytic model.
    pub fn record(
        &mut self,
        subthread: SubThreadId,
        label: &'static str,
        size_hint: usize,
        apply: impl FnMut() + Send + 'static,
    ) {
        self.actions.push(UndoAction {
            seq: self.next_seq,
            subthread,
            label,
            size_hint,
            apply: Box::new(apply),
        });
        self.next_seq += 1;
        self.bytes += size_hint;
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        self.recorded += 1;
    }

    /// Removes and returns the actions of every squashed sub-thread, in the
    /// exact reverse of recording order — the reverse-ROL restore walk of
    /// basic recovery (`§3.4`).
    pub fn take_for(&mut self, squashed: &BTreeSet<SubThreadId>) -> Vec<UndoAction> {
        let mut taken = Vec::new();
        let mut kept = Vec::with_capacity(self.actions.len());
        for a in self.actions.drain(..) {
            if squashed.contains(&a.subthread) {
                taken.push(a);
            } else {
                kept.push(a);
            }
        }
        self.actions = kept;
        self.bytes = self.actions.iter().map(|a| a.size_hint).sum();
        taken.sort_by_key(|a| std::cmp::Reverse(a.seq));
        taken
    }

    /// Drops the saved state of a retired sub-thread ("deleting the
    /// sub-thread's checkpointed state").
    pub fn prune_retired(&mut self, subthread: SubThreadId) {
        self.actions.retain(|a| a.subthread != subthread);
        self.bytes = self.actions.iter().map(|a| a.size_hint).sum();
    }

    /// Number of live restore actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the buffer holds no state.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Live checkpointed bytes (approximate).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// High-water mark of checkpointed bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Total actions ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Number of actions held for one sub-thread.
    pub fn count_for(&self, subthread: SubThreadId) -> usize {
        self.actions
            .iter()
            .filter(|a| a.subthread == subthread)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn set(ids: &[u64]) -> BTreeSet<SubThreadId> {
        ids.iter().copied().map(SubThreadId::new).collect()
    }

    #[test]
    fn clone_checkpoint_round_trip() {
        let mut v = vec![1u32, 2, 3];
        let snap = v.checkpoint();
        v.push(4);
        v.restore(&snap);
        assert_eq!(v, [1, 2, 3]);

        let mut s = String::from("precise");
        let snap = s.checkpoint();
        s.push_str("-restartable");
        s.restore(&snap);
        assert_eq!(s, "precise");
    }

    #[test]
    fn tuple_checkpoint_composes() {
        let mut pair = (7u64, vec![1u8]);
        let snap = pair.checkpoint();
        pair.0 = 0;
        pair.1.clear();
        pair.restore(&snap);
        assert_eq!(pair, (7, vec![1]));
    }

    #[test]
    fn restore_is_repeatable() {
        let mut x = 1u32;
        let snap = x.checkpoint();
        x = 5;
        x.restore(&snap);
        x = 9;
        x.restore(&snap);
        assert_eq!(x, 1);
    }

    #[test]
    fn take_for_applies_reverse_recording_order() {
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut hb = HistoryBuffer::new();
        for (i, st) in [(0u64, 5u64), (1, 6), (2, 5)] {
            let l = Arc::clone(&log);
            hb.record(SubThreadId::new(st), "x", 1, move || l.lock().unwrap().push(i));
        }
        let actions = hb.take_for(&set(&[5]));
        assert_eq!(actions.len(), 2);
        for a in actions {
            a.apply();
        }
        // Action 2 recorded after action 0, so it must undo first.
        assert_eq!(*log.lock().unwrap(), [2, 0]);
        // ST6's action survives.
        assert_eq!(hb.len(), 1);
        assert_eq!(hb.count_for(SubThreadId::new(6)), 1);
    }

    #[test]
    fn prune_retired_drops_state_and_bytes() {
        let mut hb = HistoryBuffer::new();
        hb.record(SubThreadId::new(0), "a", 100, || {});
        hb.record(SubThreadId::new(1), "b", 50, || {});
        assert_eq!(hb.bytes(), 150);
        hb.prune_retired(SubThreadId::new(0));
        assert_eq!(hb.bytes(), 50);
        assert_eq!(hb.peak_bytes(), 150);
        assert_eq!(hb.recorded(), 2);
    }

    #[test]
    fn undo_restores_shared_value() {
        let cell = Arc::new(AtomicU64::new(10));
        let mut hb = HistoryBuffer::new();
        let saved = cell.load(Ordering::SeqCst);
        let c = Arc::clone(&cell);
        hb.record(SubThreadId::new(3), "cell", 8, move || {
            c.store(saved, Ordering::SeqCst)
        });
        cell.store(77, Ordering::SeqCst);
        for a in hb.take_for(&set(&[3])) {
            a.apply();
        }
        assert_eq!(cell.load(Ordering::SeqCst), 10);
        assert!(hb.is_empty());
    }

    #[test]
    fn take_for_unknown_ids_is_empty() {
        let mut hb = HistoryBuffer::new();
        hb.record(SubThreadId::new(0), "a", 1, || {});
        assert!(hb.take_for(&set(&[9])).is_empty());
        assert_eq!(hb.len(), 1);
    }

    #[test]
    fn debug_is_nonempty() {
        let mut hb = HistoryBuffer::new();
        hb.record(SubThreadId::new(0), "state", 4, || {});
        let dbg = format!("{:?}", hb);
        assert!(dbg.contains("state"));
    }
}
