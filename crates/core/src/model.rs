//! The analytic cost model of `§2.3`–`§2.4`.
//!
//! The paper derives closed-form penalties for checkpointing and restart and
//! uses them to predict when a program stops making progress ("tipping").
//! All quantities are rates of *lost parallelism*: a penalty of `P` means `P`
//! context-seconds of work are lost per second of execution; the system has
//! `n` context-seconds available per second, so a scheme can only sustain an
//! exception rate whose restart penalty stays below `n`.
//!
//! | scheme | checkpoint penalty `P_c` | restart penalty `P_r` | tolerance |
//! |---|---|---|---|
//! | software CPR | `n(t_c + t_s)/t` | `n·e·t_r` | `e ≤ 1/t_r` |
//! | hardware CPR | `n_c(t_c + (n/n_c)t_s)/t` | `n_c·e·t_r` | `e ≤ (n/n_c)/t_r` |
//! | GPRS | `n·t_s/t` (+ ordering `n·t_g/t`) | `e·t_r` | `e ≤ n/t_r` |
//!
//! with `t` the checkpoint interval (average sub-thread size for GPRS),
//! `t_c` the barrier coordination time, `t_s` the state-recording time,
//! `t_g` the ordering/ROL-management delay, `t_w` the state-restore wait and
//! `t_r = t + t_w` the restart delay.

use std::fmt;

/// The recovery scheme being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Conventional software coordinated checkpoint-and-recovery (two global
    /// barriers per checkpoint).
    CprSoftware,
    /// Hardware CPR involving only the `n_c` communicating threads
    /// (Rebound/ReVive-style).
    CprHardware,
    /// GPRS with selective restart.
    Gprs,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::CprSoftware => f.write_str("P-CPR"),
            Scheme::CprHardware => f.write_str("HW-CPR"),
            Scheme::Gprs => f.write_str("GPRS"),
        }
    }
}

/// System and mechanism parameters (all times in seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Number of hardware contexts, `n`.
    pub contexts: u32,
    /// Checkpoint interval `t`; for GPRS, the average sub-thread size.
    pub interval: f64,
    /// Barrier coordination time per checkpoint, `t_c`.
    pub coord_time: f64,
    /// State-recording time per checkpoint, `t_s`.
    pub record_time: f64,
    /// GPRS ordering + ROL management delay per sub-thread, `t_g`.
    pub order_delay: f64,
    /// State-restore wait on restart, `t_w`.
    pub restore_wait: f64,
    /// Number of communicating threads per interval, `n_c` (hardware CPR).
    pub communicating: u32,
}

impl CostParams {
    /// Parameters in the regime the paper's evaluation explores: 24 contexts,
    /// ~50 ms computations, coordination an order of magnitude above
    /// recording, ordering delay an order below recording.
    pub fn paper_default() -> Self {
        CostParams {
            contexts: 24,
            interval: 0.05,
            coord_time: 2e-3,
            record_time: 4e-4,
            order_delay: 1e-4,
            restore_wait: 1e-3,
            communicating: 8,
        }
    }

    /// Returns a copy with a different context count.
    pub fn with_contexts(mut self, n: u32) -> Self {
        self.contexts = n;
        self
    }

    /// Returns a copy with a different checkpoint interval / sub-thread size.
    pub fn with_interval(mut self, t: f64) -> Self {
        self.interval = t;
        self
    }

    /// Restart delay `t_r = t + t_w`: the work lost since the last
    /// checkpoint plus the wait to reinstate state.
    pub fn restart_delay(&self) -> f64 {
        self.interval + self.restore_wait
    }

    /// Checkpoint penalty `P_c` of the given scheme, in lost
    /// context-seconds per second.
    pub fn checkpoint_penalty(&self, scheme: Scheme) -> f64 {
        let n = f64::from(self.contexts);
        let nc = f64::from(self.communicating.min(self.contexts).max(1));
        match scheme {
            Scheme::CprSoftware => n * (self.coord_time + self.record_time) / self.interval,
            Scheme::CprHardware => {
                nc * (self.coord_time + (n / nc) * self.record_time) / self.interval
            }
            Scheme::Gprs => n * self.record_time / self.interval,
        }
    }

    /// GPRS's additional ordering penalty `P_g = n·t_g/t`.
    pub fn ordering_penalty(&self) -> f64 {
        f64::from(self.contexts) * self.order_delay / self.interval
    }

    /// Restart penalty `P_r` at exception rate `e` (exceptions/sec), in lost
    /// context-seconds per second.
    pub fn restart_penalty(&self, scheme: Scheme, rate: f64) -> f64 {
        let tr = self.restart_delay();
        let n = f64::from(self.contexts);
        let nc = f64::from(self.communicating.min(self.contexts).max(1));
        match scheme {
            Scheme::CprSoftware => n * rate * tr,
            Scheme::CprHardware => nc * rate * tr,
            Scheme::Gprs => rate * tr,
        }
    }

    /// Maximum sustainable exception rate (the *tipping rate* bound):
    /// the rate at which the restart penalty consumes all `n` contexts.
    pub fn max_exception_rate(&self, scheme: Scheme) -> f64 {
        let tr = self.restart_delay();
        let n = f64::from(self.contexts);
        let nc = f64::from(self.communicating.min(self.contexts).max(1));
        match scheme {
            Scheme::CprSoftware => 1.0 / tr,
            Scheme::CprHardware => (n / nc) / tr,
            Scheme::Gprs => n / tr,
        }
    }

    /// Whether a program can complete under exception rate `e`.
    pub fn completes(&self, scheme: Scheme, rate: f64) -> bool {
        rate <= self.max_exception_rate(scheme)
    }

    /// Predicted slowdown factor relative to exception-free, penalty-free
    /// execution: `1 / (1 - (P_c + P_g + P_r)/n)`, or `+∞` past tipping.
    ///
    /// This is the first-order utilization argument of `§2.3`: penalties
    /// consume a fraction of the machine's `n` context-seconds per second,
    /// and the remaining fraction does useful work.
    pub fn predicted_slowdown(&self, scheme: Scheme, rate: f64) -> f64 {
        let n = f64::from(self.contexts);
        let order = if scheme == Scheme::Gprs {
            self.ordering_penalty()
        } else {
            0.0
        };
        let total = self.checkpoint_penalty(scheme) + order + self.restart_penalty(scheme, rate);
        let available = 1.0 - total / n;
        if available <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / available
        }
    }

    /// GPRS's tolerance advantage over software CPR: `n×` (`§2.4`).
    pub fn gprs_tolerance_factor(&self) -> f64 {
        self.max_exception_rate(Scheme::Gprs) / self.max_exception_rate(Scheme::CprSoftware)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CostParams {
        CostParams::paper_default()
    }

    #[test]
    fn restart_delay_sums_interval_and_wait() {
        let params = p();
        assert!((params.restart_delay() - 0.051).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_penalty_formulas_match_paper() {
        let params = p();
        let n = 24.0;
        // P_c(CPR) = n(tc+ts)/t
        let expected = n * (2e-3 + 4e-4) / 0.05;
        assert!((params.checkpoint_penalty(Scheme::CprSoftware) - expected).abs() < 1e-9);
        // P_c(GPRS) = n·ts/t — no coordination term.
        let expected = n * 4e-4 / 0.05;
        assert!((params.checkpoint_penalty(Scheme::Gprs) - expected).abs() < 1e-9);
    }

    #[test]
    fn gprs_checkpointing_is_cheaper_than_cpr() {
        let params = p();
        assert!(
            params.checkpoint_penalty(Scheme::Gprs) + params.ordering_penalty()
                < params.checkpoint_penalty(Scheme::CprSoftware)
        );
    }

    #[test]
    fn hardware_cpr_sits_between() {
        let params = p();
        let sw = params.checkpoint_penalty(Scheme::CprSoftware);
        let hw = params.checkpoint_penalty(Scheme::CprHardware);
        let gprs = params.checkpoint_penalty(Scheme::Gprs);
        assert!(hw < sw);
        assert!(gprs < hw);
    }

    #[test]
    fn tipping_rates_scale_as_claimed() {
        let params = p();
        let tr = params.restart_delay();
        assert!((params.max_exception_rate(Scheme::CprSoftware) - 1.0 / tr).abs() < 1e-9);
        assert!((params.max_exception_rate(Scheme::Gprs) - 24.0 / tr).abs() < 1e-9);
        assert!((params.gprs_tolerance_factor() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn cpr_tipping_is_flat_in_contexts_gprs_scales() {
        let base = p();
        let cpr1 = base.with_contexts(1).max_exception_rate(Scheme::CprSoftware);
        let cpr24 = base.with_contexts(24).max_exception_rate(Scheme::CprSoftware);
        assert!((cpr1 - cpr24).abs() < 1e-12, "CPR tipping must not scale");
        let g1 = base.with_contexts(1).max_exception_rate(Scheme::Gprs);
        let g24 = base.with_contexts(24).max_exception_rate(Scheme::Gprs);
        assert!((g24 / g1 - 24.0).abs() < 1e-9, "GPRS tipping scales with n");
        // At n = 1 the two schemes coincide (Figure 11(c), first row).
        assert!((g1 - cpr1).abs() < 1e-12);
    }

    #[test]
    fn slowdown_grows_with_rate_and_diverges_at_tipping() {
        let params = p();
        let s0 = params.predicted_slowdown(Scheme::Gprs, 0.0);
        let s5 = params.predicted_slowdown(Scheme::Gprs, 5.0);
        assert!(s0 >= 1.0);
        assert!(s5 > s0);
        let past = params.max_exception_rate(Scheme::CprSoftware) * 30.0;
        assert!(params
            .predicted_slowdown(Scheme::CprSoftware, past)
            .is_infinite());
    }

    #[test]
    fn completes_matches_bound() {
        let params = p();
        let limit = params.max_exception_rate(Scheme::CprSoftware);
        assert!(params.completes(Scheme::CprSoftware, limit * 0.99));
        assert!(!params.completes(Scheme::CprSoftware, limit * 1.01));
        assert!(params.completes(Scheme::Gprs, limit * 1.01));
    }

    #[test]
    fn smaller_subthreads_cut_restart_but_raise_checkpoint_cost() {
        let coarse = p().with_interval(0.1);
        let fine = p().with_interval(0.01);
        assert!(
            fine.restart_penalty(Scheme::Gprs, 1.0) < coarse.restart_penalty(Scheme::Gprs, 1.0)
        );
        assert!(
            fine.checkpoint_penalty(Scheme::Gprs) > coarse.checkpoint_penalty(Scheme::Gprs)
        );
    }

    #[test]
    fn communicating_is_clamped() {
        let mut params = p();
        params.communicating = 100; // > contexts
        let hw = params.max_exception_rate(Scheme::CprHardware);
        let sw = params.max_exception_rate(Scheme::CprSoftware);
        assert!((hw - sw).abs() < 1e-12); // nc clamps to n
    }

    #[test]
    fn scheme_displays() {
        assert_eq!(Scheme::CprSoftware.to_string(), "P-CPR");
        assert_eq!(Scheme::Gprs.to_string(), "GPRS");
    }
}
