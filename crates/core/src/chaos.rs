//! Deterministic chaos-injection plans.
//!
//! A [`ChaosPlan`] replaces one-shot, wall-clock exception injection with a
//! *plan*: a list of events keyed to deterministic progress counters of the
//! executing engine (grant count, recovery-session ordinal) rather than to
//! host time. Both real executors (`gprs-runtime`'s GPRS engine and its CPR
//! baseline) consume plans directly; the simulator expresses the same
//! scenarios through [`crate::exception::ScriptedArrival`]s, which are keyed
//! to virtual cycles. The `gprs-chaos` crate generates seeded plans, runs
//! campaigns over them, and minimizes failures into regression fixtures
//! serialized with [`ChaosPlan::to_text`] / [`ChaosPlan::parse`].
//!
//! Trigger semantics on the runtime engine:
//!
//! * [`ChaosTrigger::AtGrant`]`(n)` fires under the engine lock immediately
//!   after the `n`-th grant — while that grant's deferred-checksum WAL
//!   record is still unsealed, so [`VictimSelector::Newest`] victimizes a
//!   sub-thread **mid-WAL-append**, and [`VictimSelector::Holder`] one
//!   inside a critical section.
//! * [`ChaosTrigger::MidRecovery`]`(n)` fires after the `n`-th recovery
//!   session completes its plan but **before the recovery pass drains** —
//!   the injected exception is handled in the same quiesced recovery pass,
//!   producing genuinely overlapping DEX→REX recovery.
//!
//! Grant *order* is deterministic on the runtime (it is the determinism
//! contract), so grant-keyed triggers fire at reproducible points of
//! progress; which sub-threads are in flight at that instant is
//! timing-dependent, so runtime victim choice is deterministic only up to
//! the in-flight set. The invariant oracle in `gprs-chaos` therefore checks
//! timing-robust invariants (retired-order hash and count, WAL balance,
//! output equality); bit-identical replay is claimed only for the
//! simulator, which is a pure function of its inputs.

use crate::exception::{ExceptionKind, ExceptionScope};
use std::fmt;

/// When a [`ChaosEvent`] fires (see the module docs for exact semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosTrigger {
    /// After the `n`-th grant (1-based; 0 fires before any grant).
    AtGrant(u64),
    /// After the `n`-th recovery session (1-based), while recovery is still
    /// in flight.
    MidRecovery(u64),
}

/// How a [`ChaosEvent`] picks its victim sub-thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VictimSelector {
    /// The oldest candidate in program order.
    Oldest,
    /// The youngest candidate — at a grant trigger this is the sub-thread
    /// granted that very cycle, whose WAL record is still unsealed.
    Newest,
    /// A sub-thread currently holding a lock (falls back to oldest when no
    /// lock is held).
    Holder,
    /// Whatever runs on the given hardware context (ignored when idle, as
    /// the paper's emulation does).
    Context(u32),
}

/// One injection event of a [`ChaosPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEvent {
    /// When the event fires.
    pub trigger: ChaosTrigger,
    /// Kind stamped on the injected exception(s).
    pub kind: ExceptionKind,
    /// Local exceptions are counted but handled precisely on the victim
    /// context (no global recovery); global ones start recovery.
    pub scope: ExceptionScope,
    /// Victim choice; burst members pick successive distinct candidates.
    pub victim: VictimSelector,
    /// Number of exceptions delivered at this trigger (an exception storm).
    /// `0` is read as `1`.
    pub burst: u32,
}

impl ChaosEvent {
    /// A single global soft-fault on the oldest in-flight sub-thread.
    pub fn at_grant(n: u64) -> Self {
        ChaosEvent {
            trigger: ChaosTrigger::AtGrant(n),
            kind: ExceptionKind::SoftFault,
            scope: ExceptionScope::Global,
            victim: VictimSelector::Oldest,
            burst: 1,
        }
    }

    /// A single global soft-fault injected while the `n`-th recovery
    /// session is still in flight.
    pub fn mid_recovery(n: u64) -> Self {
        ChaosEvent {
            trigger: ChaosTrigger::MidRecovery(n),
            ..Self::at_grant(0)
        }
    }

    /// Sets the kind.
    pub fn kind(mut self, kind: ExceptionKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the scope.
    pub fn scope(mut self, scope: ExceptionScope) -> Self {
        self.scope = scope;
        self
    }

    /// Sets the victim selector.
    pub fn victim(mut self, victim: VictimSelector) -> Self {
        self.victim = victim;
        self
    }

    /// Sets the burst size.
    pub fn burst(mut self, n: u32) -> Self {
        self.burst = n.max(1);
        self
    }
}

/// A deterministic injection plan: the full fault schedule of one chaos run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    /// The events; order is irrelevant (engines sort by trigger).
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event.
    pub fn push(&mut self, ev: ChaosEvent) -> &mut Self {
        self.events.push(ev);
        self
    }

    /// Builder-style [`Self::push`].
    pub fn with(mut self, ev: ChaosEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Grant-triggered events, sorted by grant count.
    pub fn grant_events(&self) -> Vec<ChaosEvent> {
        let mut v: Vec<ChaosEvent> = self
            .events
            .iter()
            .filter(|e| matches!(e.trigger, ChaosTrigger::AtGrant(_)))
            .cloned()
            .collect();
        v.sort_by_key(|e| match e.trigger {
            ChaosTrigger::AtGrant(n) => n,
            ChaosTrigger::MidRecovery(_) => unreachable!("filtered"),
        });
        v
    }

    /// Recovery-triggered events, sorted by session ordinal.
    pub fn recovery_events(&self) -> Vec<ChaosEvent> {
        let mut v: Vec<ChaosEvent> = self
            .events
            .iter()
            .filter(|e| matches!(e.trigger, ChaosTrigger::MidRecovery(_)))
            .cloned()
            .collect();
        v.sort_by_key(|e| match e.trigger {
            ChaosTrigger::MidRecovery(n) => n,
            ChaosTrigger::AtGrant(_) => unreachable!("filtered"),
        });
        v
    }

    /// Total exceptions the plan delivers (bursts included).
    pub fn total_exceptions(&self) -> u64 {
        self.events.iter().map(|e| e.burst.max(1) as u64).sum()
    }

    /// Serializes the plan to the fixture text format (one event per line):
    ///
    /// ```text
    /// grant 12 kind=soft-fault scope=global victim=holder burst=3
    /// mid-recovery 1 kind=thermal scope=global victim=oldest burst=1
    /// ```
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            let (word, n) = match e.trigger {
                ChaosTrigger::AtGrant(n) => ("grant", n),
                ChaosTrigger::MidRecovery(n) => ("mid-recovery", n),
            };
            s.push_str(&format!(
                "{word} {n} kind={} scope={} victim={} burst={}\n",
                kind_word(e.kind),
                match e.scope {
                    ExceptionScope::Global => "global",
                    ExceptionScope::Local => "local",
                },
                victim_word(e.victim),
                e.burst.max(1),
            ));
        }
        s
    }

    /// Parses the fixture text format (see [`Self::to_text`]). Blank lines
    /// and `#` comments are skipped; unknown directives are errors.
    pub fn parse(text: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let word = it.next().expect("non-empty line");
            let n: u64 = it
                .next()
                .ok_or_else(|| format!("line {}: missing trigger count", ln + 1))?
                .parse()
                .map_err(|_| format!("line {}: bad trigger count", ln + 1))?;
            let trigger = match word {
                "grant" => ChaosTrigger::AtGrant(n),
                "mid-recovery" => ChaosTrigger::MidRecovery(n),
                other => return Err(format!("line {}: unknown directive {other:?}", ln + 1)),
            };
            let mut ev = ChaosEvent {
                trigger,
                ..ChaosEvent::at_grant(0)
            };
            for field in it {
                let (key, val) = field
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: bad field {field:?}", ln + 1))?;
                match key {
                    "kind" => ev.kind = parse_kind(val).ok_or_else(|| {
                        format!("line {}: unknown kind {val:?}", ln + 1)
                    })?,
                    "scope" => {
                        ev.scope = match val {
                            "global" => ExceptionScope::Global,
                            "local" => ExceptionScope::Local,
                            _ => return Err(format!("line {}: bad scope {val:?}", ln + 1)),
                        }
                    }
                    "victim" => ev.victim = parse_victim(val).ok_or_else(|| {
                        format!("line {}: bad victim {val:?}", ln + 1)
                    })?,
                    "burst" => {
                        ev.burst = val
                            .parse()
                            .map_err(|_| format!("line {}: bad burst {val:?}", ln + 1))?
                    }
                    _ => return Err(format!("line {}: unknown field {key:?}", ln + 1)),
                }
            }
            plan.events.push(ev);
        }
        Ok(plan)
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.to_text().trim_end())
    }
}

fn kind_word(k: ExceptionKind) -> String {
    match k {
        ExceptionKind::SoftFault => "soft-fault".into(),
        ExceptionKind::VoltageEmergency => "voltage".into(),
        ExceptionKind::ThermalEmergency => "thermal".into(),
        ExceptionKind::ApproximationError => "approx".into(),
        ExceptionKind::ResourceRevocation => "revocation".into(),
        ExceptionKind::DataRace => "data-race".into(),
        ExceptionKind::RuntimeFault => "runtime-fault".into(),
        ExceptionKind::Custom(t) => format!("custom:{t}"),
    }
}

fn parse_kind(s: &str) -> Option<ExceptionKind> {
    Some(match s {
        "soft-fault" => ExceptionKind::SoftFault,
        "voltage" => ExceptionKind::VoltageEmergency,
        "thermal" => ExceptionKind::ThermalEmergency,
        "approx" => ExceptionKind::ApproximationError,
        "revocation" => ExceptionKind::ResourceRevocation,
        "data-race" => ExceptionKind::DataRace,
        "runtime-fault" => ExceptionKind::RuntimeFault,
        _ => ExceptionKind::Custom(s.strip_prefix("custom:")?.parse().ok()?),
    })
}

fn victim_word(v: VictimSelector) -> String {
    match v {
        VictimSelector::Oldest => "oldest".into(),
        VictimSelector::Newest => "newest".into(),
        VictimSelector::Holder => "holder".into(),
        VictimSelector::Context(c) => format!("ctx:{c}"),
    }
}

fn parse_victim(s: &str) -> Option<VictimSelector> {
    Some(match s {
        "oldest" => VictimSelector::Oldest,
        "newest" => VictimSelector::Newest,
        "holder" => VictimSelector::Holder,
        _ => VictimSelector::Context(s.strip_prefix("ctx:")?.parse().ok()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_text() {
        let plan = ChaosPlan::new()
            .with(
                ChaosEvent::at_grant(12)
                    .kind(ExceptionKind::ThermalEmergency)
                    .victim(VictimSelector::Holder)
                    .burst(3),
            )
            .with(
                ChaosEvent::mid_recovery(1)
                    .kind(ExceptionKind::Custom(9))
                    .victim(VictimSelector::Context(4))
                    .scope(ExceptionScope::Local),
            );
        let text = plan.to_text();
        let parsed = ChaosPlan::parse(&text).expect("roundtrip");
        assert_eq!(parsed, plan);
    }

    #[test]
    fn parse_skips_comments_and_rejects_junk() {
        let plan = ChaosPlan::parse("# a comment\n\ngrant 3 burst=2\n").expect("valid");
        assert_eq!(plan.events.len(), 1);
        assert_eq!(plan.total_exceptions(), 2);
        assert!(ChaosPlan::parse("frobnicate 3\n").is_err());
        assert!(ChaosPlan::parse("grant x\n").is_err());
        assert!(ChaosPlan::parse("grant 1 victim=??\n").is_err());
    }

    #[test]
    fn event_lists_sort_by_trigger() {
        let plan = ChaosPlan::new()
            .with(ChaosEvent::at_grant(9))
            .with(ChaosEvent::mid_recovery(2))
            .with(ChaosEvent::at_grant(3))
            .with(ChaosEvent::mid_recovery(1));
        let grants: Vec<u64> = plan
            .grant_events()
            .iter()
            .map(|e| match e.trigger {
                ChaosTrigger::AtGrant(n) => n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(grants, vec![3, 9]);
        let recs: Vec<u64> = plan
            .recovery_events()
            .iter()
            .map(|e| match e.trigger {
                ChaosTrigger::MidRecovery(n) => n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(recs, vec![1, 2]);
    }
}
