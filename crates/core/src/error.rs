//! Error types for the GPRS core model.

use crate::ids::{Lsn, ResourceId, SubThreadId, ThreadId};
use std::error::Error;
use std::fmt;

/// Errors raised by the core bookkeeping structures.
///
/// These indicate *protocol violations* by a runtime embedding the model
/// (inserting out of order, retiring an in-flight sub-thread, …) or detected
/// corruption of recovery state. They are distinct from the program-level
/// [`crate::exception::Exception`]s the model exists to recover from.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GprsError {
    /// A sub-thread was inserted into the reorder list out of order.
    OutOfOrderInsert {
        /// Id of the offending insert.
        inserted: SubThreadId,
        /// Newest id already present.
        newest: SubThreadId,
    },
    /// An operation referenced a sub-thread the reorder list does not hold.
    UnknownSubThread(SubThreadId),
    /// An operation referenced an unregistered thread.
    UnknownThread(ThreadId),
    /// A thread was registered twice with the order enforcer.
    DuplicateThread(ThreadId),
    /// Attempted to retire the reorder-list head before it completed.
    RetireIncomplete(SubThreadId),
    /// A write-ahead-log record failed its integrity check.
    WalCorruption {
        /// Sequence number of the corrupt record.
        lsn: Lsn,
    },
    /// A WAL undo walk referenced a pruned (already-retired) record.
    WalPruned {
        /// First sequence number still retained.
        oldest_retained: Lsn,
        /// The requested, already-pruned sequence number.
        requested: Lsn,
    },
    /// A lock/unlock pairing was violated (e.g. unlock of a lock not held).
    LockStateViolation {
        /// The resource whose state was violated.
        resource: ResourceId,
        /// Human-readable description of the violation.
        detail: &'static str,
    },
    /// A thread was registered with the order enforcer with weight 0, which
    /// would starve its whole group.
    InvalidWeight(ThreadId),
    /// A registration tried to change the established weight of a
    /// balance-aware group.
    GroupWeightConflict {
        /// The thread whose registration conflicted.
        thread: ThreadId,
        /// The group's established weight.
        established: u32,
        /// The weight the conflicting registration requested.
        requested: u32,
    },
    /// The ordering policy has no registered threads but a turn was requested.
    NoRunnableThreads,
    /// A recovery plan was requested for a sub-thread that is not excepted.
    NotExcepted(SubThreadId),
}

impl fmt::Display for GprsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GprsError::OutOfOrderInsert { inserted, newest } => write!(
                f,
                "sub-thread {inserted} inserted out of order (newest is {newest})"
            ),
            GprsError::UnknownSubThread(id) => write!(f, "unknown sub-thread {id}"),
            GprsError::UnknownThread(id) => write!(f, "unknown thread {id}"),
            GprsError::DuplicateThread(id) => write!(f, "thread {id} registered twice"),
            GprsError::RetireIncomplete(id) => {
                write!(f, "cannot retire incomplete sub-thread {id}")
            }
            GprsError::WalCorruption { lsn } => {
                write!(f, "write-ahead log record {lsn} failed integrity check")
            }
            GprsError::WalPruned {
                oldest_retained,
                requested,
            } => write!(
                f,
                "write-ahead log record {requested} was pruned (oldest retained is {oldest_retained})"
            ),
            GprsError::LockStateViolation { resource, detail } => {
                write!(f, "lock state violation on {resource}: {detail}")
            }
            GprsError::InvalidWeight(id) => {
                write!(f, "thread {id} registered with weight 0")
            }
            GprsError::GroupWeightConflict {
                thread,
                established,
                requested,
            } => write!(
                f,
                "thread {thread} requested group weight {requested}, but the group's weight is {established}"
            ),
            GprsError::NoRunnableThreads => write!(f, "no runnable threads registered"),
            GprsError::NotExcepted(id) => {
                write!(f, "sub-thread {id} is not excepted; no recovery needed")
            }
        }
    }
}

impl Error for GprsError {}

/// Convenience result alias for core operations.
pub type Result<T> = std::result::Result<T, GprsError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LockId;

    #[test]
    fn errors_display_meaningfully() {
        let e = GprsError::OutOfOrderInsert {
            inserted: SubThreadId::new(3),
            newest: SubThreadId::new(7),
        };
        assert_eq!(
            e.to_string(),
            "sub-thread ST3 inserted out of order (newest is ST7)"
        );
        let e = GprsError::LockStateViolation {
            resource: ResourceId::Lock(LockId::new(1)),
            detail: "unlock without lock",
        };
        assert!(e.to_string().contains("L1"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GprsError>();
    }
}
