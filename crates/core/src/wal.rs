//! The write-ahead log protecting GPRS's *own* state (`§3.2`, "Managing the
//! Runtime State"; inspired by ARIES).
//!
//! The runtime's work queues, lock queues, allocator lists and the ROL itself
//! are mutated at very fine granularity; checkpointing them would re-create
//! the very problem GPRS solves. Instead, each runtime operation — performed
//! on behalf of some sub-thread and therefore carrying that sub-thread's
//! order — is logged with enough information to undo it. Recovery walks the
//! log in reverse and undoes the operations performed for squashed
//! sub-threads; retirement prunes the log to keep it bounded.
//!
//! The log is generic over the operation payload: the threaded runtime and
//! the simulator define their own operation vocabularies.

use crate::error::{GprsError, Result};
use crate::ids::{Lsn, SubThreadId};
use std::collections::{BTreeSet, VecDeque};
use std::fmt::Debug;
use std::hash::{Hash, Hasher};

/// One log record: an operation performed on behalf of a sub-thread.
#[derive(Debug, Clone)]
pub struct WalRecord<Op> {
    /// Log sequence number (append order).
    pub lsn: Lsn,
    /// The sub-thread whose execution caused the operation; squashing it
    /// requires undoing this record.
    pub subthread: SubThreadId,
    /// The logged operation (must describe its own undo).
    pub op: Op,
    checksum: u64,
}

impl<Op: Debug> WalRecord<Op> {
    /// The integrity checksum of a record with the given fields. Public so
    /// a runtime can compute it *off* its critical section (the `Debug`
    /// serialization dominates append cost) and attach it later with
    /// [`WriteAheadLog::seal`].
    ///
    /// The `Debug` rendering of `op` streams straight into the hasher —
    /// no intermediate `String` — so an append costs no heap allocation.
    pub fn checksum_of(lsn: Lsn, subthread: SubThreadId, op: &Op) -> u64 {
        struct HashWriter<'a, H: Hasher>(&'a mut H);
        impl<H: Hasher> std::fmt::Write for HashWriter<'_, H> {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                self.0.write(s.as_bytes());
                Ok(())
            }
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        lsn.raw().hash(&mut h);
        subthread.raw().hash(&mut h);
        let _ = std::fmt::Write::write_fmt(&mut HashWriter(&mut h), format_args!("{op:?}"));
        h.finish()
    }

    /// Whether the record's integrity check passes.
    pub fn is_intact(&self) -> bool {
        Self::checksum_of(self.lsn, self.subthread, &self.op) == self.checksum
    }
}

/// An append-only, prunable write-ahead log on emulated stable storage.
///
/// # Examples
/// ```
/// use gprs_core::wal::WriteAheadLog;
/// use gprs_core::ids::SubThreadId;
///
/// #[derive(Debug, Clone, PartialEq)]
/// enum Op { Enqueue(u32), Dequeue(u32) }
///
/// let mut wal = WriteAheadLog::new();
/// wal.append(SubThreadId::new(0), Op::Enqueue(7));
/// wal.append(SubThreadId::new(1), Op::Dequeue(7));
/// // Squash ST1: its operations come back newest-first for undoing.
/// let mut squashed = std::collections::BTreeSet::new();
/// squashed.insert(SubThreadId::new(1));
/// let undo: Vec<_> = wal.undo_records(&squashed).map(|r| r.op.clone()).collect();
/// assert_eq!(undo, [Op::Dequeue(7)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteAheadLog<Op> {
    records: VecDeque<WalRecord<Op>>,
    next_lsn: Lsn,
    appended: u64,
    pruned: u64,
}

impl<Op: Clone + Debug + Send> WriteAheadLog<Op> {
    /// Creates an empty log.
    pub fn new() -> Self {
        WriteAheadLog {
            records: VecDeque::new(),
            next_lsn: Lsn::new(0),
            appended: 0,
            pruned: 0,
        }
    }

    /// Appends an operation performed on behalf of `subthread`, returning
    /// the record's sequence number.
    ///
    /// Write-ahead discipline: callers must append *before* mutating the
    /// structure the operation describes.
    pub fn append(&mut self, subthread: SubThreadId, op: Op) -> Lsn {
        let lsn = self.next_lsn;
        let checksum = WalRecord::checksum_of(lsn, subthread, &op);
        self.records.push_back(WalRecord {
            lsn,
            subthread,
            op,
            checksum,
        });
        self.next_lsn = self.next_lsn.next();
        self.appended += 1;
        lsn
    }

    /// Appends an operation *without* computing its checksum (stored as 0,
    /// an unsealed sentinel). The caller computes
    /// [`WalRecord::checksum_of`] off the critical section — the `Debug`
    /// formatting is the expensive part of an append — and attaches it with
    /// [`WriteAheadLog::seal`] before the record can be verified.
    ///
    /// The write-ahead discipline is unchanged: the record (LSN, sub-thread,
    /// op) is durable immediately; only the integrity hash arrives late.
    pub fn append_deferred(&mut self, subthread: SubThreadId, op: Op) -> Lsn {
        let lsn = self.next_lsn;
        self.records.push_back(WalRecord {
            lsn,
            subthread,
            op,
            checksum: 0,
        });
        self.next_lsn = self.next_lsn.next();
        self.appended += 1;
        lsn
    }

    /// Attaches the checksum computed off the critical section to a record
    /// appended with [`WriteAheadLog::append_deferred`]. Returns `false`
    /// when the record was already pruned or undone — a sealed-too-late
    /// no-op, not an error (its content was consumed or discarded whole).
    pub fn seal(&mut self, lsn: Lsn, checksum: u64) -> bool {
        // Records are kept in LSN order (append order, prunes preserve it),
        // so a binary search finds the slot without a scan.
        match self.records.binary_search_by_key(&lsn.raw(), |r| r.lsn.raw()) {
            Ok(ix) => {
                self.records[ix].checksum = checksum;
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates, newest-first, over the records of the squashed sub-threads —
    /// the reverse undo walk of `§3.4`.
    pub fn undo_records<'a>(
        &'a self,
        squashed: &'a BTreeSet<SubThreadId>,
    ) -> impl Iterator<Item = &'a WalRecord<Op>> + 'a {
        self.records
            .iter()
            .rev()
            .filter(move |r| squashed.contains(&r.subthread))
    }

    /// Removes the records of the squashed sub-threads (after their undo has
    /// been applied), returning them newest-first.
    pub fn take_undo_records(&mut self, squashed: &BTreeSet<SubThreadId>) -> Vec<WalRecord<Op>> {
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(self.records.len());
        for r in self.records.drain(..) {
            if squashed.contains(&r.subthread) {
                taken.push(r);
            } else {
                kept.push_back(r);
            }
        }
        self.records = kept;
        taken.reverse();
        taken
    }

    /// Prunes the records of a retired sub-thread ("the logs are pruned as
    /// the sub-threads retire to keep their sizes bounded"). Returns the
    /// number of records removed.
    pub fn prune_retired(&mut self, subthread: SubThreadId) -> u64 {
        let before = self.records.len();
        self.records.retain(|r| r.subthread != subthread);
        let removed = (before - self.records.len()) as u64;
        self.pruned += removed;
        removed
    }

    /// Prunes the records of a whole batch of retired sub-threads in one
    /// pass — batched retirement's amortization of the per-sub-thread
    /// `retain` scan. Returns the number of records removed.
    pub fn prune_retired_batch(&mut self, retired: &BTreeSet<SubThreadId>) -> u64 {
        if retired.is_empty() {
            return 0;
        }
        let before = self.records.len();
        self.records.retain(|r| !retired.contains(&r.subthread));
        let removed = (before - self.records.len()) as u64;
        self.pruned += removed;
        removed
    }

    /// Verifies the integrity of every retained record.
    ///
    /// # Errors
    /// Returns [`GprsError::WalCorruption`] naming the first corrupt record.
    pub fn verify(&self) -> Result<()> {
        for r in &self.records {
            if !r.is_intact() {
                return Err(GprsError::WalCorruption { lsn: r.lsn });
            }
        }
        Ok(())
    }

    /// Deliberately corrupts a record's payload hash — fault injection for
    /// testing the runtime's self-recovery path (`§3.2`: GPRS "can handle
    /// exceptions … as well as itself").
    ///
    /// Returns `true` if the record existed.
    pub fn corrupt_for_testing(&mut self, lsn: Lsn) -> bool {
        for r in self.records.iter_mut() {
            if r.lsn == lsn {
                r.checksum ^= 0xdead_beef;
                return true;
            }
        }
        false
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &WalRecord<Op>> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever appended.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Total records pruned by retirement.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// The sequence number the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum TestOp {
        Push(u32),
        Pop(u32),
        Alloc(u32),
    }

    fn set(ids: &[u64]) -> BTreeSet<SubThreadId> {
        ids.iter().copied().map(SubThreadId::new).collect()
    }

    #[test]
    fn lsns_are_contiguous_and_monotone() {
        let mut wal = WriteAheadLog::new();
        let a = wal.append(SubThreadId::new(0), TestOp::Push(1));
        let b = wal.append(SubThreadId::new(0), TestOp::Pop(1));
        assert_eq!(a, Lsn::new(0));
        assert_eq!(b, Lsn::new(1));
        assert_eq!(wal.next_lsn(), Lsn::new(2));
    }

    #[test]
    fn undo_walk_is_newest_first_and_filtered() {
        let mut wal = WriteAheadLog::new();
        wal.append(SubThreadId::new(0), TestOp::Push(1));
        wal.append(SubThreadId::new(1), TestOp::Push(2));
        wal.append(SubThreadId::new(1), TestOp::Alloc(3));
        wal.append(SubThreadId::new(2), TestOp::Push(4));
        let ops: Vec<_> = wal.undo_records(&set(&[1])).map(|r| r.op.clone()).collect();
        assert_eq!(ops, [TestOp::Alloc(3), TestOp::Push(2)]);
    }

    #[test]
    fn take_undo_records_removes_them() {
        let mut wal = WriteAheadLog::new();
        wal.append(SubThreadId::new(0), TestOp::Push(1));
        wal.append(SubThreadId::new(1), TestOp::Push(2));
        let taken = wal.take_undo_records(&set(&[0]));
        assert_eq!(taken.len(), 1);
        assert_eq!(wal.len(), 1);
        assert!(wal.iter().all(|r| r.subthread == SubThreadId::new(1)));
    }

    #[test]
    fn prune_keeps_log_bounded() {
        let mut wal = WriteAheadLog::new();
        for i in 0..100u64 {
            wal.append(SubThreadId::new(i % 4), TestOp::Push(i as u32));
        }
        for i in 0..4u64 {
            wal.prune_retired(SubThreadId::new(i));
        }
        assert!(wal.is_empty());
        assert_eq!(wal.appended(), 100);
        assert_eq!(wal.pruned(), 100);
    }

    #[test]
    fn verify_detects_corruption() {
        let mut wal = WriteAheadLog::new();
        let lsn = wal.append(SubThreadId::new(0), TestOp::Push(1));
        wal.verify().unwrap();
        assert!(wal.corrupt_for_testing(lsn));
        assert_eq!(wal.verify(), Err(GprsError::WalCorruption { lsn }));
        assert!(!wal.corrupt_for_testing(Lsn::new(99)));
    }

    #[test]
    fn records_know_their_integrity() {
        let mut wal = WriteAheadLog::new();
        wal.append(SubThreadId::new(0), TestOp::Pop(9));
        assert!(wal.iter().next().unwrap().is_intact());
    }

    #[test]
    fn deferred_append_seals_later() {
        let mut wal = WriteAheadLog::new();
        let lsn = wal.append_deferred(SubThreadId::new(0), TestOp::Push(1));
        assert!(!wal.iter().next().unwrap().is_intact(), "unsealed");
        let sum = WalRecord::checksum_of(lsn, SubThreadId::new(0), &TestOp::Push(1));
        assert!(wal.seal(lsn, sum));
        assert!(wal.iter().next().unwrap().is_intact());
        wal.verify().unwrap();
    }

    #[test]
    fn seal_after_prune_is_a_noop() {
        let mut wal = WriteAheadLog::new();
        let lsn = wal.append_deferred(SubThreadId::new(3), TestOp::Pop(2));
        wal.prune_retired(SubThreadId::new(3));
        assert!(!wal.seal(lsn, 42));
    }

    #[test]
    fn seal_finds_records_after_interior_prunes() {
        let mut wal = WriteAheadLog::new();
        wal.append(SubThreadId::new(0), TestOp::Push(1));
        let lsn = wal.append_deferred(SubThreadId::new(1), TestOp::Push(2));
        wal.append(SubThreadId::new(0), TestOp::Push(3));
        wal.prune_retired(SubThreadId::new(0));
        let sum = WalRecord::checksum_of(lsn, SubThreadId::new(1), &TestOp::Push(2));
        assert!(wal.seal(lsn, sum));
        wal.verify().unwrap();
    }

    #[test]
    fn batch_prune_matches_per_id_prunes() {
        let mut a = WriteAheadLog::new();
        let mut b = WriteAheadLog::new();
        for i in 0..40u64 {
            a.append(SubThreadId::new(i % 5), TestOp::Push(i as u32));
            b.append(SubThreadId::new(i % 5), TestOp::Push(i as u32));
        }
        let removed_a = a.prune_retired(SubThreadId::new(1)) + a.prune_retired(SubThreadId::new(3));
        let removed_b = b.prune_retired_batch(&set(&[1, 3]));
        assert_eq!(removed_a, removed_b);
        assert_eq!(a.pruned(), b.pruned());
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x.lsn == y.lsn));
        assert_eq!(b.prune_retired_batch(&BTreeSet::new()), 0);
    }

    #[test]
    fn undo_with_no_matching_subthreads_is_empty() {
        let mut wal = WriteAheadLog::new();
        wal.append(SubThreadId::new(0), TestOp::Push(1));
        assert_eq!(wal.undo_records(&set(&[5])).count(), 0);
        assert!(wal.take_undo_records(&set(&[5])).is_empty());
        assert_eq!(wal.len(), 1);
    }
}
