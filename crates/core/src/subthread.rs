//! Sub-threads and the sub-thread generator (`§3.2`, "Creating Sub-threads").
//!
//! GPRS logically divides each program thread into fine-grained *sub-threads*
//! at its synchronization points: thread creation and termination, critical
//! sections, atomic operations, barriers and condition waits. Each sub-thread
//! is the unit of ordering, checkpointing and restart.
//!
//! The generator implements the paper's two boundary optimizations:
//!
//! * **No split at unlock** — critical sections in real programs are small,
//!   so the critical section and the code following it share one sub-thread.
//! * **Nested critical sections are flattened** — a lock acquired before the
//!   matching unlock of an enclosing lock is subsumed into the outermost
//!   critical section and creates no new sub-thread.

use crate::ids::{BarrierId, ChannelId, GroupId, LockId, ResourceId, SubThreadId, ThreadId};
use crate::ids::AtomicId;
use crate::error::{GprsError, Result};
use std::fmt;

/// A dynamic synchronization event observed in a thread's execution.
///
/// These are the GPRS interception points: the paper's runtime interposes on
/// the Pthreads APIs and gcc atomics; this reproduction's runtime observes
/// the same events through its own synchronization API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncOp {
    /// `pthread_create`, extended with the child's balance-aware group and
    /// weight (`§3.2`, "the pthread_create API was extended to pass a group
    /// ID").
    Fork {
        /// The newly created thread.
        child: ThreadId,
        /// Scheduling group of the child.
        group: GroupId,
        /// Weight of the child's group (1 = basic balance-aware scheme).
        weight: u32,
    },
    /// `pthread_join`.
    Join {
        /// The thread being joined.
        child: ThreadId,
    },
    /// `pthread_mutex_lock` — begins a critical section.
    LockAcquire(LockId),
    /// `pthread_mutex_unlock` — ends a critical section. Never a boundary.
    Unlock(LockId),
    /// A gcc/g++-style atomic read-modify-write operation.
    Atomic(AtomicId),
    /// `pthread_barrier_wait`.
    BarrierWait(BarrierId),
    /// Push into a runtime-managed lock-protected FIFO (producer side of the
    /// paper's pipeline programs).
    ChanPush(ChannelId),
    /// Pop from a runtime-managed FIFO; blocks (deterministically re-polls)
    /// while empty — the conditional wait-signaling of `§3.2`.
    ChanPop(ChannelId),
    /// Thread termination.
    Exit,
}

impl SyncOp {
    /// The dependence alias this operation contributes, if any (`§3.4`).
    pub fn resource(&self) -> Option<ResourceId> {
        match *self {
            SyncOp::LockAcquire(l) | SyncOp::Unlock(l) => Some(ResourceId::Lock(l)),
            SyncOp::Atomic(a) => Some(ResourceId::Atomic(a)),
            SyncOp::BarrierWait(b) => Some(ResourceId::Barrier(b)),
            SyncOp::ChanPush(c) | SyncOp::ChanPop(c) => Some(ResourceId::Channel(c)),
            SyncOp::Fork { .. } | SyncOp::Join { .. } | SyncOp::Exit => None,
        }
    }
}

impl fmt::Display for SyncOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncOp::Fork { child, group, .. } => write!(f, "fork({child} in {group})"),
            SyncOp::Join { child } => write!(f, "join({child})"),
            SyncOp::LockAcquire(l) => write!(f, "lock({l})"),
            SyncOp::Unlock(l) => write!(f, "unlock({l})"),
            SyncOp::Atomic(a) => write!(f, "atomic({a})"),
            SyncOp::BarrierWait(b) => write!(f, "barrier({b})"),
            SyncOp::ChanPush(c) => write!(f, "push({c})"),
            SyncOp::ChanPop(c) => write!(f, "pop({c})"),
            SyncOp::Exit => write!(f, "exit"),
        }
    }
}

/// Why a sub-thread begins where it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubThreadKind {
    /// The first sub-thread of the program ("the start of the program
    /// initiates the first sub-thread").
    Initial,
    /// First sub-thread of a newly forked thread.
    ForkChild,
    /// Continuation of a parent thread after it forked a child.
    ForkContinuation,
    /// Continuation after a join.
    JoinContinuation,
    /// Begins at a critical-section entry (and, by the subsumption
    /// optimization, extends past the unlock until the next boundary).
    CriticalSection,
    /// Begins at an atomic operation.
    AtomicOp,
    /// Continuation after a barrier.
    BarrierContinuation,
    /// Begins at a FIFO access (pipeline communication point).
    ChannelAccess,
    /// A user-delimited conventional-CPR region (`start_cpr`/`end_cpr`,
    /// `§3.4` hybrid recovery); executes as a single sub-thread.
    CprRegion,
    /// A function with unknown mod set, executed strictly serialized
    /// (`§3.2`, "Third Party, I/O, and OS Functions").
    Serialized,
}

impl SubThreadKind {
    /// A stable small integer identifying this kind, used by telemetry's
    /// retired-order hash. Values are part of the digest definition: do not
    /// renumber existing variants.
    pub fn tag(self) -> u8 {
        match self {
            SubThreadKind::Initial => 0,
            SubThreadKind::ForkChild => 1,
            SubThreadKind::ForkContinuation => 2,
            SubThreadKind::JoinContinuation => 3,
            SubThreadKind::CriticalSection => 4,
            SubThreadKind::AtomicOp => 5,
            SubThreadKind::BarrierContinuation => 6,
            SubThreadKind::ChannelAccess => 7,
            SubThreadKind::CprRegion => 8,
            SubThreadKind::Serialized => 9,
        }
    }
}

/// Immutable descriptor of one dynamic sub-thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubThread {
    /// Position in the deterministic total order.
    pub id: SubThreadId,
    /// The logical thread this sub-thread is a fragment of.
    pub thread: ThreadId,
    /// Scheduling group of that thread.
    pub group: GroupId,
    /// Why this sub-thread begins where it does.
    pub kind: SubThreadKind,
    /// The synchronization event at which the sub-thread begins, if any.
    pub opening_op: Option<SyncOp>,
}

impl SubThread {
    /// Creates a descriptor.
    pub fn new(
        id: SubThreadId,
        thread: ThreadId,
        group: GroupId,
        kind: SubThreadKind,
        opening_op: Option<SyncOp>,
    ) -> Self {
        SubThread {
            id,
            thread,
            group,
            kind,
            opening_op,
        }
    }
}

impl fmt::Display for SubThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} of {} ({:?})", self.id, self.thread, self.kind)
    }
}

/// Decision made by the generator for one observed [`SyncOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// The current sub-thread ends; a new one of the given kind begins at the
    /// operation.
    Split(SubThreadKind),
    /// The operation is subsumed into the current sub-thread (unlocks, and
    /// anything inside a flattened nested critical section).
    Subsume,
}

/// Per-thread state machine deciding sub-thread boundaries.
///
/// One generator exists per live program thread. Feed it the thread's
/// synchronization events in program order via [`Self::on_sync`]; it answers
/// whether each event starts a new sub-thread, while tracking critical-section
/// nesting for the flattening optimization and validating lock pairing.
///
/// # Examples
/// ```
/// use gprs_core::subthread::{Boundary, SubThreadGenerator, SubThreadKind, SyncOp};
/// use gprs_core::ids::LockId;
/// let mut g = SubThreadGenerator::new();
/// let (a, b) = (LockId::new(1), LockId::new(2));
/// // Entering a critical section splits...
/// assert_eq!(g.on_sync(SyncOp::LockAcquire(a)).unwrap(),
///            Boundary::Split(SubThreadKind::CriticalSection));
/// // ...a nested acquire is flattened, and unlocks never split.
/// assert_eq!(g.on_sync(SyncOp::LockAcquire(b)).unwrap(), Boundary::Subsume);
/// assert_eq!(g.on_sync(SyncOp::Unlock(b)).unwrap(), Boundary::Subsume);
/// assert_eq!(g.on_sync(SyncOp::Unlock(a)).unwrap(), Boundary::Subsume);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SubThreadGenerator {
    /// Stack of currently held locks (for pairing validation + flattening).
    held: Vec<LockId>,
    /// Total boundaries produced, for statistics.
    splits: u64,
    /// Total subsumed events, for statistics.
    subsumed: u64,
}

impl SubThreadGenerator {
    /// Creates a generator for a thread holding no locks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes the next synchronization event of this thread and decides
    /// whether it opens a new sub-thread.
    ///
    /// # Errors
    ///
    /// Returns [`GprsError::LockStateViolation`] if an unlock does not match
    /// a held lock, or if the thread exits or blocks on a channel/barrier
    /// while holding locks (all of which the paper's data-race-free,
    /// standard-API programs never do).
    pub fn on_sync(&mut self, op: SyncOp) -> Result<Boundary> {
        let in_cs = !self.held.is_empty();
        let decision = match op {
            SyncOp::LockAcquire(l) => {
                if self.held.contains(&l) {
                    return Err(GprsError::LockStateViolation {
                        resource: ResourceId::Lock(l),
                        detail: "recursive acquire of a held lock",
                    });
                }
                self.held.push(l);
                if in_cs {
                    // Nested: flattened into the outermost critical section.
                    Boundary::Subsume
                } else {
                    Boundary::Split(SubThreadKind::CriticalSection)
                }
            }
            SyncOp::Unlock(l) => {
                match self.held.iter().rposition(|&h| h == l) {
                    Some(ix) => {
                        self.held.remove(ix);
                    }
                    None => {
                        return Err(GprsError::LockStateViolation {
                            resource: ResourceId::Lock(l),
                            detail: "unlock of a lock not held",
                        })
                    }
                }
                Boundary::Subsume
            }
            SyncOp::Atomic(_) => {
                if in_cs {
                    Boundary::Subsume
                } else {
                    Boundary::Split(SubThreadKind::AtomicOp)
                }
            }
            SyncOp::Fork { .. } => {
                self.check_unlocked(op, "fork inside a critical section")?;
                Boundary::Split(SubThreadKind::ForkContinuation)
            }
            SyncOp::Join { .. } => {
                self.check_unlocked(op, "join inside a critical section")?;
                Boundary::Split(SubThreadKind::JoinContinuation)
            }
            SyncOp::BarrierWait(_) => {
                self.check_unlocked(op, "barrier wait inside a critical section")?;
                Boundary::Split(SubThreadKind::BarrierContinuation)
            }
            SyncOp::ChanPush(_) | SyncOp::ChanPop(_) => {
                if in_cs {
                    Boundary::Subsume
                } else {
                    Boundary::Split(SubThreadKind::ChannelAccess)
                }
            }
            SyncOp::Exit => {
                self.check_unlocked(op, "thread exit while holding locks")?;
                Boundary::Split(SubThreadKind::JoinContinuation)
            }
        };
        match decision {
            Boundary::Split(_) => self.splits += 1,
            Boundary::Subsume => self.subsumed += 1,
        }
        Ok(decision)
    }

    /// Locks currently held by the thread (outermost first).
    pub fn held_locks(&self) -> &[LockId] {
        &self.held
    }

    /// Whether the thread is inside a (possibly flattened) critical section.
    pub fn in_critical_section(&self) -> bool {
        !self.held.is_empty()
    }

    /// Number of boundary decisions so far: `(splits, subsumed)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.splits, self.subsumed)
    }

    fn check_unlocked(&self, op: SyncOp, detail: &'static str) -> Result<()> {
        if let Some(&l) = self.held.first() {
            let _ = op;
            return Err(GprsError::LockStateViolation {
                resource: ResourceId::Lock(l),
                detail,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock(n: u64) -> SyncOp {
        SyncOp::LockAcquire(LockId::new(n))
    }
    fn unlock(n: u64) -> SyncOp {
        SyncOp::Unlock(LockId::new(n))
    }

    #[test]
    fn lock_splits_unlock_subsumes() {
        let mut g = SubThreadGenerator::new();
        assert_eq!(
            g.on_sync(lock(1)).unwrap(),
            Boundary::Split(SubThreadKind::CriticalSection)
        );
        assert!(g.in_critical_section());
        assert_eq!(g.on_sync(unlock(1)).unwrap(), Boundary::Subsume);
        assert!(!g.in_critical_section());
        // After the unlock the succeeding code stays in the same sub-thread:
        // the *next* acquire splits again.
        assert_eq!(
            g.on_sync(lock(1)).unwrap(),
            Boundary::Split(SubThreadKind::CriticalSection)
        );
    }

    #[test]
    fn nested_critical_sections_flatten() {
        let mut g = SubThreadGenerator::new();
        assert_eq!(
            g.on_sync(lock(1)).unwrap(),
            Boundary::Split(SubThreadKind::CriticalSection)
        );
        assert_eq!(g.on_sync(lock(2)).unwrap(), Boundary::Subsume);
        assert_eq!(g.on_sync(lock(3)).unwrap(), Boundary::Subsume);
        assert_eq!(g.held_locks().len(), 3);
        assert_eq!(g.on_sync(unlock(3)).unwrap(), Boundary::Subsume);
        assert_eq!(g.on_sync(unlock(2)).unwrap(), Boundary::Subsume);
        assert_eq!(g.on_sync(unlock(1)).unwrap(), Boundary::Subsume);
        assert!(!g.in_critical_section());
        assert_eq!(g.stats(), (1, 5));
    }

    #[test]
    fn out_of_order_unlock_is_allowed_if_held() {
        // Hand-over-hand locking releases the outer lock first.
        let mut g = SubThreadGenerator::new();
        g.on_sync(lock(1)).unwrap();
        g.on_sync(lock(2)).unwrap();
        assert_eq!(g.on_sync(unlock(1)).unwrap(), Boundary::Subsume);
        assert_eq!(g.held_locks(), &[LockId::new(2)]);
        g.on_sync(unlock(2)).unwrap();
    }

    #[test]
    fn unmatched_unlock_errors() {
        let mut g = SubThreadGenerator::new();
        let err = g.on_sync(unlock(9)).unwrap_err();
        assert!(matches!(err, GprsError::LockStateViolation { .. }));
    }

    #[test]
    fn recursive_acquire_errors() {
        let mut g = SubThreadGenerator::new();
        g.on_sync(lock(1)).unwrap();
        assert!(g.on_sync(lock(1)).is_err());
    }

    #[test]
    fn atomic_splits_outside_cs_subsumes_inside() {
        let mut g = SubThreadGenerator::new();
        assert_eq!(
            g.on_sync(SyncOp::Atomic(AtomicId::new(1))).unwrap(),
            Boundary::Split(SubThreadKind::AtomicOp)
        );
        g.on_sync(lock(1)).unwrap();
        assert_eq!(
            g.on_sync(SyncOp::Atomic(AtomicId::new(1))).unwrap(),
            Boundary::Subsume
        );
    }

    #[test]
    fn channel_ops_split_outside_cs() {
        let mut g = SubThreadGenerator::new();
        assert_eq!(
            g.on_sync(SyncOp::ChanPush(ChannelId::new(0))).unwrap(),
            Boundary::Split(SubThreadKind::ChannelAccess)
        );
        assert_eq!(
            g.on_sync(SyncOp::ChanPop(ChannelId::new(0))).unwrap(),
            Boundary::Split(SubThreadKind::ChannelAccess)
        );
    }

    #[test]
    fn structural_ops_split_and_require_no_held_locks() {
        let mut g = SubThreadGenerator::new();
        let fork = SyncOp::Fork {
            child: ThreadId::new(1),
            group: GroupId::new(0),
            weight: 1,
        };
        assert_eq!(
            g.on_sync(fork).unwrap(),
            Boundary::Split(SubThreadKind::ForkContinuation)
        );
        assert_eq!(
            g.on_sync(SyncOp::BarrierWait(BarrierId::new(0))).unwrap(),
            Boundary::Split(SubThreadKind::BarrierContinuation)
        );
        g.on_sync(lock(1)).unwrap();
        assert!(g.on_sync(SyncOp::Exit).is_err());
        assert!(g
            .on_sync(SyncOp::Join {
                child: ThreadId::new(1)
            })
            .is_err());
    }

    #[test]
    fn sync_op_resources() {
        assert_eq!(
            lock(3).resource(),
            Some(ResourceId::Lock(LockId::new(3)))
        );
        assert_eq!(SyncOp::Exit.resource(), None);
        assert_eq!(
            SyncOp::ChanPop(ChannelId::new(7)).resource(),
            Some(ResourceId::Channel(ChannelId::new(7)))
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(lock(2).to_string(), "lock(L2)");
        let st = SubThread::new(
            SubThreadId::new(5),
            ThreadId::new(1),
            GroupId::new(0),
            SubThreadKind::CriticalSection,
            Some(lock(2)),
        );
        assert!(st.to_string().contains("ST5"));
    }
}
