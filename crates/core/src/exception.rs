//! The exception model of `§2.2` and the injector used in `§4`.
//!
//! The paper divides exceptions into *local* (handled by one context using
//! ordinary precise interrupts) and *global* (whose effects may have
//! propagated to other threads before detection). GPRS exists to recover from
//! global exceptions; this module defines their descriptions, their sources
//! ("discretionary exceptions"), the detection-latency model of Figure 2(a),
//! and a seeded Poisson injector reproducing the paper's signal-thread
//! emulation ("the thread uses Pthreads signals to periodically signal GPRS
//! and randomly designate one hardware context as excepted").

use crate::ids::ContextId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Detection latency assumed throughout the paper's evaluation, in cycles.
///
/// "We conservatively assumed an exception detection latency of 400,000
/// cycles (as have others) to amplify the GPRS overheads." (`§4`)
pub const DEFAULT_DETECTION_LATENCY_CYCLES: u64 = 400_000;

/// The source category of a discretionary exception (`§2.1`–`§2.2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ExceptionKind {
    /// Transient (soft) hardware fault.
    SoftFault,
    /// Voltage emergency from aggressive margin management.
    VoltageEmergency,
    /// Thermal emergency.
    ThermalEmergency,
    /// An egregious error detected by an approximate-computing QoS framework.
    ApproximationError,
    /// A shared/mobile platform revoked resources (EC2 spot, Android kill).
    ResourceRevocation,
    /// A dynamic data race detected by a race-detector integration (`§3.5`).
    DataRace,
    /// A fault inside the GPRS runtime's own mechanisms (`§3.2`).
    RuntimeFault,
    /// Application-defined discretionary exception.
    Custom(u32),
}

impl ExceptionKind {
    /// Whether this kind may corrupt GPRS-internal structures and therefore
    /// requires write-ahead-log recovery in addition to program-state
    /// rollback.
    pub fn affects_runtime(self) -> bool {
        matches!(self, ExceptionKind::RuntimeFault)
    }
}

impl fmt::Display for ExceptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ExceptionKind::SoftFault => "soft fault",
            ExceptionKind::VoltageEmergency => "voltage emergency",
            ExceptionKind::ThermalEmergency => "thermal emergency",
            ExceptionKind::ApproximationError => "approximation error",
            ExceptionKind::ResourceRevocation => "resource revocation",
            ExceptionKind::DataRace => "data race",
            ExceptionKind::RuntimeFault => "runtime fault",
            ExceptionKind::Custom(tag) => return write!(f, "custom exception #{tag}"),
        };
        f.write_str(name)
    }
}

/// Scope of an exception's impact (Figure 2(b)–(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionScope {
    /// Impacts only the raising thread (e.g. a page fault); handled with
    /// ordinary precise interrupts, no global recovery needed.
    Local,
    /// May impact multiple threads through inter-thread communication before
    /// it is reported; requires globally precise recovery.
    Global,
}

/// A dynamic exception event attributed to a hardware context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exception {
    /// Source category.
    pub kind: ExceptionKind,
    /// Scope of impact.
    pub scope: ExceptionScope,
    /// Context on which the exception occurred.
    pub victim: ContextId,
    /// Virtual cycle at which the exception physically occurred.
    pub raised_at: u64,
    /// Cycles between occurrence and report (Figure 2(a)).
    pub detection_latency: u64,
}

impl Exception {
    /// Creates a global exception with the paper's default detection latency.
    ///
    /// # Examples
    /// ```
    /// use gprs_core::exception::{Exception, ExceptionKind};
    /// use gprs_core::ids::ContextId;
    /// let e = Exception::global(ExceptionKind::SoftFault, ContextId::new(3), 1_000);
    /// assert_eq!(e.reported_at(), 1_000 + 400_000);
    /// ```
    pub fn global(kind: ExceptionKind, victim: ContextId, raised_at: u64) -> Self {
        Exception {
            kind,
            scope: ExceptionScope::Global,
            victim,
            raised_at,
            detection_latency: DEFAULT_DETECTION_LATENCY_CYCLES,
        }
    }

    /// Creates a local exception (no global recovery required).
    pub fn local(kind: ExceptionKind, victim: ContextId, raised_at: u64) -> Self {
        Exception {
            kind,
            scope: ExceptionScope::Local,
            victim,
            raised_at,
            detection_latency: 0,
        }
    }

    /// Sets a non-default detection latency.
    pub fn with_detection_latency(mut self, cycles: u64) -> Self {
        self.detection_latency = cycles;
        self
    }

    /// The virtual cycle at which the exception becomes visible to REX.
    pub fn reported_at(&self) -> u64 {
        self.raised_at.saturating_add(self.detection_latency)
    }

    /// Whether the report arrives late enough that instruction-precise
    /// attribution inside the victim sub-thread is impossible and only
    /// sub-thread-precise restart can be performed (`§3.4`).
    pub fn is_imprecise(&self) -> bool {
        self.detection_latency > 0
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} at cycle {} (reported at {})",
            self.kind,
            self.victim,
            self.raised_at,
            self.reported_at()
        )
    }
}

/// A scripted exception arrival, merged with the Poisson stream by the
/// [`ExceptionInjector`].
///
/// Scripts let a chaos campaign place exceptions *precisely* in virtual
/// time — storms (bursts across many contexts), back-to-back arrivals whose
/// reports land inside an earlier exception's recovery window, and
/// local/global mixes — while keeping the whole stream deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptedArrival {
    /// Virtual cycle of the (first) arrival.
    pub at: u64,
    /// Context of the (first) victim; burst victims cycle from here.
    pub victim: u32,
    /// Number of exceptions delivered, at consecutive cycles starting at
    /// `at`, victims cycling across contexts (a storm). `0` is read as `1`.
    pub burst: u32,
    /// Kind override; `None` uses the injector's kind cycle.
    pub kind: Option<ExceptionKind>,
    /// Scope of every exception in the burst.
    pub scope: ExceptionScope,
    /// Detection-latency override; `None` uses the injector's latency.
    pub detection_latency: Option<u64>,
}

impl ScriptedArrival {
    /// A global burst of `burst` exceptions starting at cycle `at`.
    pub fn storm(at: u64, victim: u32, burst: u32) -> Self {
        ScriptedArrival {
            at,
            victim,
            burst,
            kind: None,
            scope: ExceptionScope::Global,
            detection_latency: None,
        }
    }

    /// A single global arrival at cycle `at` on context `victim`.
    pub fn single(at: u64, victim: u32) -> Self {
        Self::storm(at, victim, 1)
    }

    /// Sets the scope.
    pub fn with_scope(mut self, scope: ExceptionScope) -> Self {
        self.scope = scope;
        self
    }

    /// Sets an explicit kind.
    pub fn with_kind(mut self, kind: ExceptionKind) -> Self {
        self.kind = Some(kind);
        self
    }
}

/// Configuration for the Poisson exception injector.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectorConfig {
    /// Mean exception rate, events per second (the paper's `e`).
    pub rate_per_sec: f64,
    /// Virtual cycles per second; converts the rate into cycle space.
    pub cycles_per_sec: u64,
    /// Number of hardware contexts among which victims are drawn.
    pub contexts: u32,
    /// Detection latency applied to every injected exception.
    pub detection_latency: u64,
    /// Kind stamped on injected exceptions (see also [`Self::kind_mix`]).
    pub kind: ExceptionKind,
    /// RNG seed, for reproducible experiments.
    pub seed: u64,
    /// Scripted arrivals merged (by raised-at cycle) with the Poisson
    /// stream. Need not be sorted; the injector sorts them.
    pub script: Vec<ScriptedArrival>,
    /// When non-empty, emitted exceptions cycle deterministically through
    /// these kinds (scripted arrivals with an explicit kind are exempt);
    /// when empty, every exception gets [`Self::kind`].
    pub kind_mix: Vec<ExceptionKind>,
    /// When `n > 0`, every `n`-th emitted Poisson exception is *local*
    /// (handled by ordinary precise interrupts, no global recovery) — the
    /// paper's local/global mix of `§2.2`. `0` keeps them all global.
    pub local_every: u32,
}

impl InjectorConfig {
    /// A configuration matching the paper's setup: the given rate on an
    /// `n`-context machine, 400 k-cycle detection latency, soft faults.
    pub fn paper(rate_per_sec: f64, contexts: u32, cycles_per_sec: u64) -> Self {
        InjectorConfig {
            rate_per_sec,
            cycles_per_sec,
            contexts,
            detection_latency: DEFAULT_DETECTION_LATENCY_CYCLES,
            kind: ExceptionKind::SoftFault,
            seed: 0x9e37_79b9_7f4a_7c15,
            script: Vec::new(),
            kind_mix: Vec::new(),
            local_every: 0,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the detection latency.
    pub fn with_detection_latency(mut self, cycles: u64) -> Self {
        self.detection_latency = cycles;
        self
    }

    /// Adds scripted arrivals (merged with the Poisson stream).
    pub fn with_script(mut self, script: Vec<ScriptedArrival>) -> Self {
        self.script = script;
        self
    }

    /// Cycles emitted kinds through `kinds` (see [`Self::kind_mix`]).
    pub fn with_kind_mix(mut self, kinds: Vec<ExceptionKind>) -> Self {
        self.kind_mix = kinds;
        self
    }

    /// Makes every `n`-th Poisson exception local (see [`Self::local_every`]).
    pub fn with_local_every(mut self, n: u32) -> Self {
        self.local_every = n;
        self
    }

    /// Every exception-kind variant, in a fixed order — the chaos campaign's
    /// default kind cycle.
    pub fn all_kinds() -> Vec<ExceptionKind> {
        vec![
            ExceptionKind::SoftFault,
            ExceptionKind::VoltageEmergency,
            ExceptionKind::ThermalEmergency,
            ExceptionKind::ApproximationError,
            ExceptionKind::ResourceRevocation,
            ExceptionKind::DataRace,
            ExceptionKind::RuntimeFault,
            ExceptionKind::Custom(7),
        ]
    }
}

/// One expanded scripted arrival: `(raise cycle, victim context, kind
/// override, scope, latency override)`.
type ScriptedPoint = (u64, u32, Option<ExceptionKind>, ExceptionScope, Option<u64>);

/// Seeded Poisson process generating [`Exception`]s in virtual time.
///
/// Inter-arrival times are exponential with mean `1/rate`; victims are drawn
/// uniformly from the configured contexts — exactly the paper's emulation,
/// which "stress-tested GPRS under various exception rates, without
/// emphasizing the probability distribution of the exceptions".
///
/// Scripted arrivals ([`InjectorConfig::script`]) are merged into the
/// stream by raised-at cycle (scripted wins ties), so a chaos campaign can
/// overlay precisely placed storms and overlapping exceptions on a Poisson
/// background while the whole stream stays a pure function of the config.
#[derive(Debug, Clone)]
pub struct ExceptionInjector {
    config: InjectorConfig,
    rng: SmallRng,
    next_at: u64,
    /// Expanded scripted stream, sorted by raised-at cycle; `script_ix`
    /// indexes the next unemitted entry.
    scripted: Vec<ScriptedPoint>,
    script_ix: usize,
    /// Total exceptions emitted — drives the kind cycle and the local mix.
    emitted: u64,
}

impl ExceptionInjector {
    /// Creates an injector and schedules the first arrival after cycle 0.
    ///
    /// A rate of `0.0` with an empty script produces no exceptions
    /// ([`Self::next_before`] always returns `None`).
    pub fn new(config: InjectorConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let first = if config.rate_per_sec > 0.0 {
            exp_sample(&mut rng, config.rate_per_sec, config.cycles_per_sec)
        } else {
            u64::MAX
        };
        let contexts = config.contexts.max(1);
        let mut scripted = Vec::new();
        for arr in &config.script {
            for b in 0..arr.burst.max(1) as u64 {
                scripted.push((
                    arr.at.saturating_add(b),
                    (arr.victim + b as u32) % contexts,
                    arr.kind,
                    arr.scope,
                    arr.detection_latency,
                ));
            }
        }
        scripted.sort_by_key(|s| s.0);
        ExceptionInjector {
            config,
            rng,
            next_at: first,
            scripted,
            script_ix: 0,
            emitted: 0,
        }
    }

    /// The cycle of the next scheduled arrival (Poisson or scripted), if any.
    pub fn peek_next(&self) -> Option<u64> {
        let scripted = self.scripted.get(self.script_ix).map(|s| s.0);
        let poisson = (self.next_at != u64::MAX).then_some(self.next_at);
        match (scripted, poisson) {
            (Some(s), Some(p)) => Some(s.min(p)),
            (s, p) => s.or(p),
        }
    }

    /// The kind for the `emitted`-th exception absent an explicit override.
    fn cycled_kind(&self) -> ExceptionKind {
        if self.config.kind_mix.is_empty() {
            self.config.kind
        } else {
            self.config.kind_mix[(self.emitted % self.config.kind_mix.len() as u64) as usize]
        }
    }

    /// Returns the next exception raised strictly before `cycle`, advancing
    /// the process, or `None` if the next arrival is at or after `cycle`.
    pub fn next_before(&mut self, cycle: u64) -> Option<Exception> {
        let next = self.peek_next()?;
        if next >= cycle {
            return None;
        }
        // Scripted arrivals win ties so a placed storm is never perturbed
        // by a coincident Poisson draw.
        if self
            .scripted
            .get(self.script_ix)
            .is_some_and(|s| s.0 <= self.next_at || self.next_at == u64::MAX)
        {
            let (at, victim, kind, scope, latency) = self.scripted[self.script_ix];
            self.script_ix += 1;
            let kind = kind.unwrap_or_else(|| self.cycled_kind());
            self.emitted += 1;
            let e = match scope {
                ExceptionScope::Global => Exception::global(kind, ContextId::new(victim), at)
                    .with_detection_latency(latency.unwrap_or(self.config.detection_latency)),
                ExceptionScope::Local => {
                    let e = Exception::local(kind, ContextId::new(victim), at);
                    match latency {
                        Some(l) => e.with_detection_latency(l),
                        None => e,
                    }
                }
            };
            return Some(e);
        }
        let raised_at = self.next_at;
        let victim = ContextId::new(self.rng.gen_range(0..self.config.contexts.max(1)));
        let step = exp_sample(
            &mut self.rng,
            self.config.rate_per_sec,
            self.config.cycles_per_sec,
        );
        self.next_at = self.next_at.saturating_add(step.max(1));
        let kind = self.cycled_kind();
        self.emitted += 1;
        let local = self.config.local_every > 0
            && self.emitted.is_multiple_of(self.config.local_every as u64);
        Some(if local {
            // Local exceptions are precise: report == raise (`§2.2`).
            Exception::local(kind, victim, raised_at)
        } else {
            Exception::global(kind, victim, raised_at)
                .with_detection_latency(self.config.detection_latency)
        })
    }

    /// Drains every exception raised before `cycle`.
    pub fn drain_before(&mut self, cycle: u64) -> Vec<Exception> {
        let mut out = Vec::new();
        while let Some(e) = self.next_before(cycle) {
            out.push(e);
        }
        out
    }

    /// The injector's configuration.
    pub fn config(&self) -> &InjectorConfig {
        &self.config
    }
}

/// Draws an exponential inter-arrival time in cycles for the given rate.
fn exp_sample(rng: &mut SmallRng, rate_per_sec: f64, cycles_per_sec: u64) -> u64 {
    // Inverse-CDF sampling; clamp the uniform away from 0 to keep ln finite.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let secs = -u.ln() / rate_per_sec;
    let cycles = secs * cycles_per_sec as f64;
    if cycles >= u64::MAX as f64 {
        u64::MAX
    } else {
        cycles as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(rate: f64) -> InjectorConfig {
        InjectorConfig::paper(rate, 24, 1_000_000_000).with_seed(42)
    }

    #[test]
    fn reported_at_adds_latency() {
        let e = Exception::global(ExceptionKind::SoftFault, ContextId::new(0), 100)
            .with_detection_latency(50);
        assert_eq!(e.reported_at(), 150);
        assert!(e.is_imprecise());
        let p = e.with_detection_latency(0);
        assert!(!p.is_imprecise());
    }

    #[test]
    fn local_exceptions_have_zero_latency() {
        let e = Exception::local(ExceptionKind::SoftFault, ContextId::new(1), 7);
        assert_eq!(e.scope, ExceptionScope::Local);
        assert_eq!(e.reported_at(), 7);
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mut inj = ExceptionInjector::new(test_config(0.0));
        assert_eq!(inj.peek_next(), None);
        assert!(inj.next_before(u64::MAX - 1).is_none());
    }

    #[test]
    fn injector_is_deterministic_for_seed() {
        let mut a = ExceptionInjector::new(test_config(10.0));
        let mut b = ExceptionInjector::new(test_config(10.0));
        let ea = a.drain_before(3_000_000_000);
        let eb = b.drain_before(3_000_000_000);
        assert_eq!(ea, eb);
        assert!(!ea.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ExceptionInjector::new(test_config(10.0));
        let mut b = ExceptionInjector::new(test_config(10.0).with_seed(43));
        assert_ne!(a.drain_before(5_000_000_000), b.drain_before(5_000_000_000));
    }

    #[test]
    fn mean_rate_is_roughly_honored() {
        // 100 exceptions/s over 10 virtual seconds => expect ~1000 events.
        let mut inj = ExceptionInjector::new(test_config(100.0));
        let horizon = 10 * 1_000_000_000u64;
        let n = inj.drain_before(horizon).len() as f64;
        assert!((800.0..1200.0).contains(&n), "got {n} events");
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut inj = ExceptionInjector::new(test_config(1000.0));
        let events = inj.drain_before(1_000_000_000);
        for w in events.windows(2) {
            assert!(w[0].raised_at < w[1].raised_at);
        }
    }

    #[test]
    fn victims_cover_multiple_contexts() {
        let mut inj = ExceptionInjector::new(test_config(1000.0));
        let victims: std::collections::HashSet<_> = inj
            .drain_before(1_000_000_000)
            .into_iter()
            .map(|e| e.victim)
            .collect();
        assert!(victims.len() > 4, "only {} distinct victims", victims.len());
    }

    #[test]
    fn runtime_fault_affects_runtime() {
        assert!(ExceptionKind::RuntimeFault.affects_runtime());
        assert!(!ExceptionKind::SoftFault.affects_runtime());
    }

    #[test]
    fn scripted_storm_expands_burst_across_contexts() {
        let cfg = test_config(0.0).with_script(vec![ScriptedArrival::storm(1_000, 22, 4)]);
        let mut inj = ExceptionInjector::new(cfg);
        let events = inj.drain_before(u64::MAX - 1);
        assert_eq!(events.len(), 4);
        let at: Vec<u64> = events.iter().map(|e| e.raised_at).collect();
        assert_eq!(at, vec![1_000, 1_001, 1_002, 1_003]);
        // Victims cycle across the 24 configured contexts, wrapping.
        let v: Vec<u32> = events.iter().map(|e| e.victim.raw()).collect();
        assert_eq!(v, vec![22, 23, 0, 1]);
        assert!(events.iter().all(|e| e.scope == ExceptionScope::Global));
    }

    #[test]
    fn scripted_merges_with_poisson_in_cycle_order() {
        let cfg = test_config(50.0).with_script(vec![
            ScriptedArrival::single(5_000_000, 1),
            ScriptedArrival::single(1_000, 2),
        ]);
        let mut inj = ExceptionInjector::new(cfg.clone());
        let merged = inj.drain_before(1_000_000_000);
        for w in merged.windows(2) {
            assert!(w[0].raised_at <= w[1].raised_at, "unsorted merge");
        }
        assert!(merged.iter().any(|e| e.raised_at == 1_000));
        assert!(merged.iter().any(|e| e.raised_at == 5_000_000));
        // Scripted overlays never perturb the Poisson draws: the same
        // config replays identically.
        let mut again = ExceptionInjector::new(cfg);
        assert_eq!(again.drain_before(1_000_000_000), merged);
    }

    #[test]
    fn kind_mix_cycles_and_local_every_mixes_scopes() {
        let cfg = test_config(1000.0)
            .with_kind_mix(InjectorConfig::all_kinds())
            .with_local_every(3);
        let mut inj = ExceptionInjector::new(cfg);
        let events = inj.drain_before(1_000_000_000);
        assert!(events.len() > 16);
        let kinds: std::collections::HashSet<_> = events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds.len(), InjectorConfig::all_kinds().len());
        let locals = events
            .iter()
            .filter(|e| e.scope == ExceptionScope::Local)
            .count();
        assert!(locals > 0, "local mix missing");
        assert!(locals < events.len(), "globals missing");
        // Locals are precise: reported where raised.
        for e in events.iter().filter(|e| e.scope == ExceptionScope::Local) {
            assert_eq!(e.reported_at(), e.raised_at);
        }
    }

    #[test]
    fn scripted_local_and_kind_overrides_stick() {
        let cfg = test_config(0.0).with_script(vec![ScriptedArrival::single(10, 0)
            .with_scope(ExceptionScope::Local)
            .with_kind(ExceptionKind::ThermalEmergency)]);
        let mut inj = ExceptionInjector::new(cfg);
        let e = inj.next_before(100).expect("scripted arrival");
        assert_eq!(e.scope, ExceptionScope::Local);
        assert_eq!(e.kind, ExceptionKind::ThermalEmergency);
        assert_eq!(e.reported_at(), 10);
        assert!(inj.next_before(u64::MAX - 1).is_none());
    }
}
