//! The exception model of `§2.2` and the injector used in `§4`.
//!
//! The paper divides exceptions into *local* (handled by one context using
//! ordinary precise interrupts) and *global* (whose effects may have
//! propagated to other threads before detection). GPRS exists to recover from
//! global exceptions; this module defines their descriptions, their sources
//! ("discretionary exceptions"), the detection-latency model of Figure 2(a),
//! and a seeded Poisson injector reproducing the paper's signal-thread
//! emulation ("the thread uses Pthreads signals to periodically signal GPRS
//! and randomly designate one hardware context as excepted").

use crate::ids::ContextId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Detection latency assumed throughout the paper's evaluation, in cycles.
///
/// "We conservatively assumed an exception detection latency of 400,000
/// cycles (as have others) to amplify the GPRS overheads." (`§4`)
pub const DEFAULT_DETECTION_LATENCY_CYCLES: u64 = 400_000;

/// The source category of a discretionary exception (`§2.1`–`§2.2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ExceptionKind {
    /// Transient (soft) hardware fault.
    SoftFault,
    /// Voltage emergency from aggressive margin management.
    VoltageEmergency,
    /// Thermal emergency.
    ThermalEmergency,
    /// An egregious error detected by an approximate-computing QoS framework.
    ApproximationError,
    /// A shared/mobile platform revoked resources (EC2 spot, Android kill).
    ResourceRevocation,
    /// A dynamic data race detected by a race-detector integration (`§3.5`).
    DataRace,
    /// A fault inside the GPRS runtime's own mechanisms (`§3.2`).
    RuntimeFault,
    /// Application-defined discretionary exception.
    Custom(u32),
}

impl ExceptionKind {
    /// Whether this kind may corrupt GPRS-internal structures and therefore
    /// requires write-ahead-log recovery in addition to program-state
    /// rollback.
    pub fn affects_runtime(self) -> bool {
        matches!(self, ExceptionKind::RuntimeFault)
    }
}

impl fmt::Display for ExceptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ExceptionKind::SoftFault => "soft fault",
            ExceptionKind::VoltageEmergency => "voltage emergency",
            ExceptionKind::ThermalEmergency => "thermal emergency",
            ExceptionKind::ApproximationError => "approximation error",
            ExceptionKind::ResourceRevocation => "resource revocation",
            ExceptionKind::DataRace => "data race",
            ExceptionKind::RuntimeFault => "runtime fault",
            ExceptionKind::Custom(tag) => return write!(f, "custom exception #{tag}"),
        };
        f.write_str(name)
    }
}

/// Scope of an exception's impact (Figure 2(b)–(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionScope {
    /// Impacts only the raising thread (e.g. a page fault); handled with
    /// ordinary precise interrupts, no global recovery needed.
    Local,
    /// May impact multiple threads through inter-thread communication before
    /// it is reported; requires globally precise recovery.
    Global,
}

/// A dynamic exception event attributed to a hardware context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exception {
    /// Source category.
    pub kind: ExceptionKind,
    /// Scope of impact.
    pub scope: ExceptionScope,
    /// Context on which the exception occurred.
    pub victim: ContextId,
    /// Virtual cycle at which the exception physically occurred.
    pub raised_at: u64,
    /// Cycles between occurrence and report (Figure 2(a)).
    pub detection_latency: u64,
}

impl Exception {
    /// Creates a global exception with the paper's default detection latency.
    ///
    /// # Examples
    /// ```
    /// use gprs_core::exception::{Exception, ExceptionKind};
    /// use gprs_core::ids::ContextId;
    /// let e = Exception::global(ExceptionKind::SoftFault, ContextId::new(3), 1_000);
    /// assert_eq!(e.reported_at(), 1_000 + 400_000);
    /// ```
    pub fn global(kind: ExceptionKind, victim: ContextId, raised_at: u64) -> Self {
        Exception {
            kind,
            scope: ExceptionScope::Global,
            victim,
            raised_at,
            detection_latency: DEFAULT_DETECTION_LATENCY_CYCLES,
        }
    }

    /// Creates a local exception (no global recovery required).
    pub fn local(kind: ExceptionKind, victim: ContextId, raised_at: u64) -> Self {
        Exception {
            kind,
            scope: ExceptionScope::Local,
            victim,
            raised_at,
            detection_latency: 0,
        }
    }

    /// Sets a non-default detection latency.
    pub fn with_detection_latency(mut self, cycles: u64) -> Self {
        self.detection_latency = cycles;
        self
    }

    /// The virtual cycle at which the exception becomes visible to REX.
    pub fn reported_at(&self) -> u64 {
        self.raised_at.saturating_add(self.detection_latency)
    }

    /// Whether the report arrives late enough that instruction-precise
    /// attribution inside the victim sub-thread is impossible and only
    /// sub-thread-precise restart can be performed (`§3.4`).
    pub fn is_imprecise(&self) -> bool {
        self.detection_latency > 0
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} at cycle {} (reported at {})",
            self.kind,
            self.victim,
            self.raised_at,
            self.reported_at()
        )
    }
}

/// Configuration for the Poisson exception injector.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectorConfig {
    /// Mean exception rate, events per second (the paper's `e`).
    pub rate_per_sec: f64,
    /// Virtual cycles per second; converts the rate into cycle space.
    pub cycles_per_sec: u64,
    /// Number of hardware contexts among which victims are drawn.
    pub contexts: u32,
    /// Detection latency applied to every injected exception.
    pub detection_latency: u64,
    /// Kind stamped on injected exceptions.
    pub kind: ExceptionKind,
    /// RNG seed, for reproducible experiments.
    pub seed: u64,
}

impl InjectorConfig {
    /// A configuration matching the paper's setup: the given rate on an
    /// `n`-context machine, 400 k-cycle detection latency, soft faults.
    pub fn paper(rate_per_sec: f64, contexts: u32, cycles_per_sec: u64) -> Self {
        InjectorConfig {
            rate_per_sec,
            cycles_per_sec,
            contexts,
            detection_latency: DEFAULT_DETECTION_LATENCY_CYCLES,
            kind: ExceptionKind::SoftFault,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the detection latency.
    pub fn with_detection_latency(mut self, cycles: u64) -> Self {
        self.detection_latency = cycles;
        self
    }
}

/// Seeded Poisson process generating [`Exception`]s in virtual time.
///
/// Inter-arrival times are exponential with mean `1/rate`; victims are drawn
/// uniformly from the configured contexts — exactly the paper's emulation,
/// which "stress-tested GPRS under various exception rates, without
/// emphasizing the probability distribution of the exceptions".
#[derive(Debug, Clone)]
pub struct ExceptionInjector {
    config: InjectorConfig,
    rng: SmallRng,
    next_at: u64,
}

impl ExceptionInjector {
    /// Creates an injector and schedules the first arrival after cycle 0.
    ///
    /// A rate of `0.0` produces no exceptions ([`Self::next_before`] always
    /// returns `None`).
    pub fn new(config: InjectorConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let first = if config.rate_per_sec > 0.0 {
            exp_sample(&mut rng, config.rate_per_sec, config.cycles_per_sec)
        } else {
            u64::MAX
        };
        ExceptionInjector {
            config,
            rng,
            next_at: first,
        }
    }

    /// The cycle of the next scheduled arrival, if any.
    pub fn peek_next(&self) -> Option<u64> {
        (self.next_at != u64::MAX).then_some(self.next_at)
    }

    /// Returns the next exception raised strictly before `cycle`, advancing
    /// the process, or `None` if the next arrival is at or after `cycle`.
    pub fn next_before(&mut self, cycle: u64) -> Option<Exception> {
        if self.next_at == u64::MAX || self.next_at >= cycle {
            return None;
        }
        let raised_at = self.next_at;
        let victim = ContextId::new(self.rng.gen_range(0..self.config.contexts.max(1)));
        let step = exp_sample(
            &mut self.rng,
            self.config.rate_per_sec,
            self.config.cycles_per_sec,
        );
        self.next_at = self.next_at.saturating_add(step.max(1));
        Some(
            Exception::global(self.config.kind, victim, raised_at)
                .with_detection_latency(self.config.detection_latency),
        )
    }

    /// Drains every exception raised before `cycle`.
    pub fn drain_before(&mut self, cycle: u64) -> Vec<Exception> {
        let mut out = Vec::new();
        while let Some(e) = self.next_before(cycle) {
            out.push(e);
        }
        out
    }

    /// The injector's configuration.
    pub fn config(&self) -> &InjectorConfig {
        &self.config
    }
}

/// Draws an exponential inter-arrival time in cycles for the given rate.
fn exp_sample(rng: &mut SmallRng, rate_per_sec: f64, cycles_per_sec: u64) -> u64 {
    // Inverse-CDF sampling; clamp the uniform away from 0 to keep ln finite.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let secs = -u.ln() / rate_per_sec;
    let cycles = secs * cycles_per_sec as f64;
    if cycles >= u64::MAX as f64 {
        u64::MAX
    } else {
        cycles as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(rate: f64) -> InjectorConfig {
        InjectorConfig::paper(rate, 24, 1_000_000_000).with_seed(42)
    }

    #[test]
    fn reported_at_adds_latency() {
        let e = Exception::global(ExceptionKind::SoftFault, ContextId::new(0), 100)
            .with_detection_latency(50);
        assert_eq!(e.reported_at(), 150);
        assert!(e.is_imprecise());
        let p = e.with_detection_latency(0);
        assert!(!p.is_imprecise());
    }

    #[test]
    fn local_exceptions_have_zero_latency() {
        let e = Exception::local(ExceptionKind::SoftFault, ContextId::new(1), 7);
        assert_eq!(e.scope, ExceptionScope::Local);
        assert_eq!(e.reported_at(), 7);
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mut inj = ExceptionInjector::new(test_config(0.0));
        assert_eq!(inj.peek_next(), None);
        assert!(inj.next_before(u64::MAX - 1).is_none());
    }

    #[test]
    fn injector_is_deterministic_for_seed() {
        let mut a = ExceptionInjector::new(test_config(10.0));
        let mut b = ExceptionInjector::new(test_config(10.0));
        let ea = a.drain_before(3_000_000_000);
        let eb = b.drain_before(3_000_000_000);
        assert_eq!(ea, eb);
        assert!(!ea.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ExceptionInjector::new(test_config(10.0));
        let mut b = ExceptionInjector::new(test_config(10.0).with_seed(43));
        assert_ne!(a.drain_before(5_000_000_000), b.drain_before(5_000_000_000));
    }

    #[test]
    fn mean_rate_is_roughly_honored() {
        // 100 exceptions/s over 10 virtual seconds => expect ~1000 events.
        let mut inj = ExceptionInjector::new(test_config(100.0));
        let horizon = 10 * 1_000_000_000u64;
        let n = inj.drain_before(horizon).len() as f64;
        assert!((800.0..1200.0).contains(&n), "got {n} events");
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut inj = ExceptionInjector::new(test_config(1000.0));
        let events = inj.drain_before(1_000_000_000);
        for w in events.windows(2) {
            assert!(w[0].raised_at < w[1].raised_at);
        }
    }

    #[test]
    fn victims_cover_multiple_contexts() {
        let mut inj = ExceptionInjector::new(test_config(1000.0));
        let victims: std::collections::HashSet<_> = inj
            .drain_before(1_000_000_000)
            .into_iter()
            .map(|e| e.victim)
            .collect();
        assert!(victims.len() > 4, "only {} distinct victims", victims.len());
    }

    #[test]
    fn runtime_fault_affects_runtime() {
        assert!(ExceptionKind::RuntimeFault.affects_runtime());
        assert!(!ExceptionKind::SoftFault.affects_runtime());
    }
}
