//! Property-based tests of the core model's invariants.

use gprs_core::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Ordering schedules
// ---------------------------------------------------------------------------

/// Arbitrary (group, weight) assignments for up to 12 threads.
fn thread_specs() -> impl Strategy<Value = Vec<(u32, u32)>> {
    vec((0u32..4, 1u32..4), 1..12)
}

/// A group's weight is a property of the group — conflicting registrations
/// are rejected — so coerce every member to its group's first-drawn weight.
fn normalize(specs: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut per_group = std::collections::HashMap::new();
    specs
        .iter()
        .map(|&(g, w)| (g, *per_group.entry(g).or_insert(w)))
        .collect()
}

proptest! {
    /// Every schedule is deterministic: two identically-driven instances
    /// produce identical holder sequences.
    #[test]
    fn schedules_are_deterministic(specs in thread_specs(), steps in 1usize..200) {
        let specs = normalize(&specs);
        for kind in [ScheduleKind::RoundRobin, ScheduleKind::BalanceBasic,
                     ScheduleKind::BalanceWeighted] {
            let mut a = kind.build();
            let mut b = kind.build();
            for (i, &(g, w)) in specs.iter().enumerate() {
                a.register_thread(ThreadId::new(i as u32), GroupId::new(g), w).unwrap();
                b.register_thread(ThreadId::new(i as u32), GroupId::new(g), w).unwrap();
            }
            for _ in 0..steps {
                prop_assert_eq!(a.holder(), b.holder());
                a.advance();
                b.advance();
            }
        }
    }

    /// Schedules are starvation-free: over enough turns, every registered
    /// thread holds the token at least once.
    #[test]
    fn schedules_are_starvation_free(specs in thread_specs()) {
        let specs = normalize(&specs);
        for kind in [ScheduleKind::RoundRobin, ScheduleKind::BalanceBasic,
                     ScheduleKind::BalanceWeighted] {
            let mut s = kind.build();
            for (i, &(g, w)) in specs.iter().enumerate() {
                s.register_thread(ThreadId::new(i as u32), GroupId::new(g), w).unwrap();
            }
            let mut seen = BTreeSet::new();
            // Max weight 4, max 4 groups => a generous bound on a full cycle.
            for _ in 0..specs.len() * 32 {
                seen.insert(s.holder().unwrap());
                s.advance();
            }
            prop_assert_eq!(seen.len(), specs.len());
        }
    }

    /// The basic balance-aware schedule distributes turns equally across
    /// groups regardless of group sizes.
    #[test]
    fn balance_basic_equalizes_groups(sizes in vec(1usize..5, 2..4)) {
        let mut s = BalanceAware::new();
        let mut next = 0u32;
        for (g, &size) in sizes.iter().enumerate() {
            for _ in 0..size {
                s.register_thread(ThreadId::new(next), GroupId::new(g as u32), 1).unwrap();
                next += 1;
            }
        }
        // Count turns per group over whole cycles.
        let cycles = 60;
        let mut group_turns = std::collections::HashMap::new();
        let mut thread_group = std::collections::HashMap::new();
        let mut id = 0u32;
        for (g, &size) in sizes.iter().enumerate() {
            for _ in 0..size {
                thread_group.insert(ThreadId::new(id), g);
                id += 1;
            }
        }
        let total = cycles * sizes.len();
        for _ in 0..total {
            let h = s.holder().unwrap();
            *group_turns.entry(thread_group[&h]).or_insert(0usize) += 1;
            s.advance();
        }
        for &turns in group_turns.values() {
            prop_assert_eq!(turns, cycles);
        }
    }

    /// The order enforcer assigns a gap-free total order no matter how the
    /// grant requests interleave.
    #[test]
    fn enforcer_total_order_has_no_gaps(specs in thread_specs(), requests in vec(0u32..12, 1..300)) {
        let specs = normalize(&specs);
        let mut e = OrderEnforcer::with_schedule(ScheduleKind::BalanceWeighted);
        for (i, &(g, w)) in specs.iter().enumerate() {
            e.register_thread(ThreadId::new(i as u32), GroupId::new(g), w).unwrap();
        }
        let n = specs.len() as u32;
        let mut granted = Vec::new();
        for r in requests {
            let t = ThreadId::new(r % n);
            if let Some(id) = e.try_grant(t) {
                granted.push(id.raw());
            }
        }
        for (i, &g) in granted.iter().enumerate() {
            prop_assert_eq!(g, i as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Reorder list
// ---------------------------------------------------------------------------

fn make_subthread(id: u64, thread: u32, lock: u64) -> SubThread {
    SubThread::new(
        SubThreadId::new(id),
        ThreadId::new(thread),
        GroupId::new(0),
        SubThreadKind::CriticalSection,
        Some(SyncOp::LockAcquire(LockId::new(lock))),
    )
}

proptest! {
    /// Retirement is exactly FIFO: whatever the completion order, retired
    /// ids come out oldest-first with no gaps.
    #[test]
    fn rol_retires_in_order(completion_order in Just(()).prop_flat_map(|_| {
        (1usize..20).prop_flat_map(|n| {
            (Just(n), proptest::sample::subsequence((0..n).collect::<Vec<_>>(), 0..=n))
        })
    })) {
        let (n, completed) = completion_order;
        let mut rol = ReorderList::new();
        for i in 0..n as u64 {
            rol.insert(make_subthread(i, (i % 4) as u32, i % 3)).unwrap();
        }
        for &c in &completed {
            rol.mark_completed(SubThreadId::new(c as u64)).unwrap();
        }
        let retired = rol.retire_ready();
        // Retired ids are the maximal completed prefix of 0..n.
        let completed_set: BTreeSet<usize> = completed.iter().copied().collect();
        let mut expect = Vec::new();
        for i in 0..n {
            if completed_set.contains(&i) {
                expect.push(i as u64);
            } else {
                break;
            }
        }
        let got: Vec<u64> = retired.iter().map(|e| e.id().raw()).collect();
        prop_assert_eq!(got, expect);
    }

    /// The affected set is sandwiched between the culprit alone and the
    /// basic-recovery suffix, and Direct ⊆ Transitive.
    #[test]
    fn affected_set_bounds(n in 2u64..24, culprit_ix in 0u64..24,
                           locks in vec(0u64..4, 24), threads in vec(0u32..6, 24)) {
        let culprit = culprit_ix % n;
        let mut rol = ReorderList::new();
        for i in 0..n {
            rol.insert(make_subthread(i, threads[i as usize], locks[i as usize])).unwrap();
        }
        rol.mark_excepted(
            SubThreadId::new(culprit),
            Exception::global(ExceptionKind::SoftFault, ContextId::new(0), 0),
        ).unwrap();

        let direct = affected_set(&rol, SubThreadId::new(culprit), DependencePolicy::Direct).unwrap();
        let trans = affected_set(&rol, SubThreadId::new(culprit), DependencePolicy::Transitive).unwrap();
        prop_assert!(direct.is_subset(&trans));
        prop_assert!(direct.contains(&SubThreadId::new(culprit)));
        // Nothing older than the culprit is ever affected.
        for id in &trans {
            prop_assert!(id.raw() >= culprit);
        }
        // Transitive is bounded by the basic-recovery suffix.
        prop_assert!(trans.len() as u64 <= n - culprit);

        // Recovery plans agree with the sets.
        let plan = plan_recovery(&rol, SubThreadId::new(culprit),
            RecoveryMode::Selective(DependencePolicy::Transitive), Precision::SubThread).unwrap();
        prop_assert_eq!(plan.squash_set(), trans);
        let basic = plan_recovery(&rol, SubThreadId::new(culprit),
            RecoveryMode::Basic, Precision::SubThread).unwrap();
        prop_assert_eq!(basic.squash.len() as u64, n - culprit);
        // squash (youngest-first) and restart (oldest-first) mirror each other.
        let mut restart = basic.restart.clone();
        restart.reverse();
        prop_assert_eq!(restart, basic.squash);
    }
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

proptest! {
    /// Undoing a squash set then pruning retirees never loses unrelated
    /// records, and verification holds throughout.
    #[test]
    fn wal_partition_is_exact(ops in vec((0u64..8, 0u32..1000), 0..200),
                              squash in vec(0u64..8, 0..4)) {
        let mut wal = WriteAheadLog::new();
        for &(st, v) in &ops {
            wal.append(SubThreadId::new(st), v);
        }
        wal.verify().unwrap();
        let squash_set: BTreeSet<SubThreadId> =
            squash.iter().map(|&s| SubThreadId::new(s)).collect();
        let taken = wal.take_undo_records(&squash_set);
        // Taken records are exactly those of squashed sub-threads…
        prop_assert!(taken.iter().all(|r| squash_set.contains(&r.subthread)));
        // …newest-first…
        for w in taken.windows(2) {
            prop_assert!(w[0].lsn > w[1].lsn);
        }
        // …and the partition is exact.
        let expected_taken = ops.iter()
            .filter(|(st, _)| squash_set.contains(&SubThreadId::new(*st)))
            .count();
        prop_assert_eq!(taken.len(), expected_taken);
        prop_assert_eq!(wal.len(), ops.len() - expected_taken);
        wal.verify().unwrap();
    }

    /// The sub-thread generator's lock depth never underflows and ends
    /// balanced for balanced input.
    #[test]
    fn generator_tracks_depth(depth in 1usize..6) {
        let mut g = SubThreadGenerator::new();
        // A nest of `depth` critical sections: only the outermost splits.
        let mut splits = 0;
        for i in 0..depth {
            if g.on_sync(SyncOp::LockAcquire(LockId::new(i as u64))).unwrap()
                == Boundary::Split(SubThreadKind::CriticalSection) {
                splits += 1;
            }
        }
        prop_assert_eq!(splits, 1);
        for i in (0..depth).rev() {
            prop_assert_eq!(g.on_sync(SyncOp::Unlock(LockId::new(i as u64))).unwrap(),
                            Boundary::Subsume);
        }
        prop_assert!(!g.in_critical_section());
    }
}

// ---------------------------------------------------------------------------
// Analytic model
// ---------------------------------------------------------------------------

proptest! {
    /// GPRS's tipping bound dominates software CPR's by exactly n, for any
    /// parameters.
    #[test]
    fn gprs_bound_dominates(n in 1u32..64, t in 1e-3f64..1.0, tw in 1e-4f64..0.1) {
        let p = CostParams { contexts: n, interval: t, coord_time: 1e-3,
                             record_time: 1e-4, order_delay: 1e-5,
                             restore_wait: tw, communicating: n.max(2) / 2 };
        let cpr = p.max_exception_rate(Scheme::CprSoftware);
        let hw = p.max_exception_rate(Scheme::CprHardware);
        let gprs = p.max_exception_rate(Scheme::Gprs);
        prop_assert!((gprs / cpr - f64::from(n)).abs() < 1e-6);
        prop_assert!(cpr <= hw + 1e-12);
        prop_assert!(hw <= gprs + 1e-12);
        // Slowdown is monotone in the exception rate.
        let lo = p.predicted_slowdown(Scheme::Gprs, 0.1 * gprs);
        let hi = p.predicted_slowdown(Scheme::Gprs, 0.5 * gprs);
        prop_assert!(lo <= hi);
    }
}
