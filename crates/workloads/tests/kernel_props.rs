//! Property-based tests of the workload kernels' invariants.

use gprs_workloads::kernels::compress::{compress_block, decompress_block};
use gprs_workloads::kernels::dedup::{dedup_stats, fingerprint, Chunker};
use gprs_workloads::kernels::finance::{black_scholes, Option_};
use gprs_workloads::kernels::nbody::{direct_force, generate_bodies, QuadTree};
use gprs_workloads::kernels::text::{
    byte_histogram, count_words, merge_counts, merge_histogram,
};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    /// Compression round-trips arbitrary bytes exactly.
    #[test]
    fn compress_round_trips(data in vec(any::<u8>(), 0..4096)) {
        let packed = compress_block(&data);
        prop_assert_eq!(decompress_block(&packed).unwrap(), data);
    }

    /// Repetition never makes the archive bigger than literals + framing.
    #[test]
    fn compress_bounded_expansion(data in vec(any::<u8>(), 0..2048)) {
        let packed = compress_block(&data);
        // Worst case: all literals in 255-byte runs, 2 bytes framing each.
        prop_assert!(packed.len() <= data.len() + 2 * (data.len() / 255 + 1));
    }

    /// Chunking partitions the input exactly, within size bounds.
    #[test]
    fn chunker_partitions(data in vec(any::<u8>(), 0..20_000)) {
        let c = Chunker::default();
        let chunks = c.chunk(&data);
        let mut pos = 0;
        for r in &chunks {
            prop_assert_eq!(r.start, pos);
            prop_assert!(r.len() <= c.max_size);
            pos = r.end;
        }
        prop_assert_eq!(pos, data.len());
    }

    /// Dedup counts are consistent: unique ≤ total, unique bytes ≤ total.
    #[test]
    fn dedup_counts_consistent(data in vec(any::<u8>(), 0..10_000)) {
        let (unique, total, unique_bytes) = dedup_stats(&data, &Chunker::default());
        prop_assert!(unique <= total);
        prop_assert!(unique_bytes <= data.len());
        if data.is_empty() {
            prop_assert_eq!(total, 0);
        }
    }

    /// Fingerprints are stable and content-sensitive (collision-free on
    /// small distinct inputs with overwhelming probability).
    #[test]
    fn fingerprint_is_pure(a in vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(fingerprint(&a), fingerprint(&a));
    }

    /// Histogram merging is commutative and totals are conserved.
    #[test]
    fn histogram_merge_conserves(a in vec(any::<u8>(), 0..2000),
                                 b in vec(any::<u8>(), 0..2000)) {
        let (ha, hb) = (byte_histogram(&a), byte_histogram(&b));
        let mut ab = ha;
        merge_histogram(&mut ab, &hb);
        let mut ba = hb;
        merge_histogram(&mut ba, &ha);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.iter().sum::<u64>() as usize, a.len() + b.len());
    }

    /// Word-count merging equals counting the concatenation.
    #[test]
    fn wordcount_merge_is_homomorphic(a in "[a-z ]{0,200}", b in "[a-z ]{0,200}") {
        let mut merged = count_words(&a);
        merge_counts(&mut merged, count_words(&b));
        let whole = count_words(&format!("{a} {b}"));
        prop_assert_eq!(merged, whole);
    }

    /// Black-Scholes prices respect the no-arbitrage bounds
    /// `max(S - K·e^{-rT}, 0) ≤ C ≤ S`.
    #[test]
    fn black_scholes_within_bounds(spot in 10.0f64..200.0, strike in 10.0f64..200.0,
                                   rate in 0.0f64..0.1, vol in 0.05f64..0.8,
                                   expiry in 0.1f64..3.0) {
        let c = black_scholes(&Option_ { spot, strike, rate, vol, expiry, call: true });
        let intrinsic = (spot - strike * (-rate * expiry).exp()).max(0.0);
        prop_assert!(c >= intrinsic - 1e-6, "C {c} < intrinsic {intrinsic}");
        prop_assert!(c <= spot + 1e-6, "C {c} > spot {spot}");
    }

    /// The Barnes-Hut approximation stays close to the direct sum on
    /// random discs — measured as aggregate error normalized by the mean
    /// force magnitude (per-body relative error is ill-conditioned where
    /// forces nearly cancel).
    #[test]
    fn quadtree_force_error_bounded(seed in 0u64..1000) {
        let bodies = generate_bodies(150, seed);
        let tree = QuadTree::build(&bodies);
        let mut err2 = 0.0f64;
        let mut mag2 = 0.0f64;
        for k in 0..10 {
            let i = ((seed as usize).wrapping_mul(7) + k * 15) % 150;
            let (ax, ay) = tree.force_on(i);
            let (ex, ey) = direct_force(&bodies, i);
            err2 += (ax - ex).powi(2) + (ay - ey).powi(2);
            mag2 += ex * ex + ey * ey;
        }
        let err = (err2 / mag2.max(1e-18)).sqrt();
        prop_assert!(err < 0.08, "aggregate relative error {err} at seed {seed}");
    }
}
