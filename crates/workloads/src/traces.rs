//! Simulator trace generators for the ten benchmark programs of Table 2.
//!
//! Each generator reproduces the program's *parallelism pattern* — the
//! computation sizes, synchronization-operation frequency and critical-
//! section sizes of Table 2's columns 2–4 — scaled so that the 24-context
//! Pthreads baseline lands on the paper's column-5 execution time. Sub-thread
//! counts in the fine-grained configuration match column 7.
//!
//! | program | pattern |
//! |---|---|
//! | Barnes-Hut | iterative data-parallel with barriers, mild imbalance |
//! | Blackscholes | one-shot data-parallel, huge thread count when fine |
//! | Canneal | small computations with frequent small atomic-swap sections |
//! | Swaptions | few very large data-parallel computations |
//! | Histogram | tiny one-shot data-parallel |
//! | Pbzip2 | read → compress × N → write pipeline, uneven block costs |
//! | Dedup | five-stage pipeline dominated by a sequential writer |
//! | RE | medium computations with medium critical sections |
//! | WordCount | small map + atomic reduce |
//! | ReverseIndex | many tiny computations with small critical sections |

use gprs_core::ids::{AtomicId, BarrierId, ChannelId, GroupId, LockId, ThreadId};
use gprs_sim::costs::secs_to_cycles;
use gprs_sim::workload::{PlainKind, Segment, SimOp, ThreadSpec, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters controlling trace generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceParams {
    /// Hardware contexts the run targets (the paper's machine has 24).
    pub contexts: u32,
    /// Work scale factor: 1.0 reproduces the paper's "large inputs";
    /// tests use small fractions to keep runs fast.
    pub scale: f64,
    /// Fine-grained configuration (`§4`, Figure 8(b)/9): more threads for
    /// the data-parallel programs; pipelines are already fine-grained.
    pub fine: bool,
}

impl TraceParams {
    /// The paper's configuration: 24 contexts, full inputs, coarse grain.
    pub fn paper() -> Self {
        TraceParams {
            contexts: 24,
            scale: 1.0,
            fine: false,
        }
    }

    /// Fine-grained variant.
    pub fn fine(mut self) -> Self {
        self.fine = true;
        self
    }

    /// Scaled-down variant for tests.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Contexts override.
    pub fn with_contexts(mut self, contexts: u32) -> Self {
        self.contexts = contexts;
        self
    }

    fn cycles(&self, secs: f64) -> u64 {
        secs_to_cycles(secs * self.scale).max(1)
    }
}

impl Default for TraceParams {
    fn default() -> Self {
        Self::paper()
    }
}

fn tid(i: usize) -> ThreadId {
    ThreadId::new(i as u32)
}

/// Deterministic per-thread imbalance factor in `[1-amp, 1+amp]`.
fn jitter(rng: &mut SmallRng, amp: f64) -> f64 {
    1.0 + rng.gen_range(-amp..amp)
}

/// Iterative data-parallel program with per-iteration barriers:
/// `threads × iters` compute segments of `per_seg_secs` each, with
/// per-thread imbalance `amp`.
#[allow(clippy::too_many_arguments)]
fn iterative_barrier(
    name: &str,
    threads: usize,
    iters: usize,
    per_seg_secs: f64,
    amp: f64,
    ckpt_bytes: u64,
    seed: u64,
    p: &TraceParams,
) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let bar = BarrierId::new(0);
    let specs = (0..threads)
        .map(|i| {
            let j = jitter(&mut rng, amp);
            let segs = (0..iters)
                .map(|k| {
                    let work = p.cycles(per_seg_secs * j);
                    let op = if k + 1 == iters {
                        SimOp::End
                    } else {
                        SimOp::Barrier { barrier: bar }
                    };
                    Segment::new(work, op).with_ckpt_bytes(ckpt_bytes)
                })
                .collect();
            ThreadSpec::new(tid(i), GroupId::new(0), 1, segs)
        })
        .collect();
    Workload::new(name, specs)
}

/// One-shot data-parallel program: `threads` segments, one each.
fn one_shot(
    name: &str,
    threads: usize,
    per_thread_secs: f64,
    amp: f64,
    ckpt_bytes: u64,
    seed: u64,
    p: &TraceParams,
) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let specs = (0..threads)
        .map(|i| {
            let work = p.cycles(per_thread_secs * jitter(&mut rng, amp));
            ThreadSpec::new(
                tid(i),
                GroupId::new(0),
                1,
                vec![Segment::new(work, SimOp::End).with_ckpt_bytes(ckpt_bytes)],
            )
        })
        .collect();
    Workload::new(name, specs)
}

/// Critical-section program: each thread loops `ops` times over
/// (compute `per_op_secs`, lock one of `locks` for `cs_secs`).
#[allow(clippy::too_many_arguments)]
fn critical_sections(
    name: &str,
    threads: usize,
    ops: usize,
    per_op_secs: f64,
    cs_secs: f64,
    locks: usize,
    use_atomics: bool,
    ckpt_bytes: u64,
    seed: u64,
    p: &TraceParams,
) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let specs = (0..threads)
        .map(|i| {
            let j = jitter(&mut rng, 0.2);
            let mut segs: Vec<Segment> = (0..ops)
                .map(|k| {
                    let work = p.cycles(per_op_secs * j);
                    let which = (i + k) % locks;
                    let op = if use_atomics {
                        SimOp::Atomic {
                            atomic: AtomicId::new(which as u64),
                        }
                    } else {
                        SimOp::Lock {
                            lock: LockId::new(which as u64),
                            cs_work: p.cycles(cs_secs),
                        }
                    };
                    Segment::new(work, op).with_ckpt_bytes(ckpt_bytes)
                })
                .collect();
            segs.push(Segment::new(0, SimOp::End));
            ThreadSpec::new(tid(i), GroupId::new(0), 1, segs)
        })
        .collect();
    Workload::new(name, specs)
}

/// Barnes-Hut: large computations, low sync frequency; iterative with
/// barriers (tree build + force phases folded into one segment per
/// iteration). 41.70 s on 24 contexts; 75 076 fine-grained sub-threads.
pub fn barnes_hut(p: &TraceParams) -> Workload {
    // The 1.24 divisor folds the simulated imbalance straggler effect into
    // the budget so the *imbalanced* wall time lands on Table 2 column 5.
    let total_cpu_secs = 41.70 * 24.0 / 1.24;
    if p.fine {
        // 192 threads × 391 iterations = 75 072 sub-threads ≈ Table 2's 75 076.
        let (threads, iters) = (192, 391);
        let per_seg = total_cpu_secs / (threads * iters) as f64;
        iterative_barrier("barnes-hut", threads, iters, per_seg, 0.25, 4096, 0xBA51, p)
    } else {
        let threads = p.contexts as usize;
        let iters = 20;
        let per_seg = total_cpu_secs / (threads * iters) as f64;
        iterative_barrier("barnes-hut", threads, iters, per_seg, 0.25, 65536, 0xBA51, p)
    }
}

/// Blackscholes: large, embarrassingly parallel. 112.89 s on 24 contexts;
/// the fine configuration launches 100 000 threads (Table 2: 100 002
/// sub-threads) — which is what makes the fine-grained *Pthreads* run DNC
/// in Figure 9.
pub fn blackscholes(p: &TraceParams) -> Workload {
    let total_cpu_secs = 112.89 * 24.0 / 1.12;
    if p.fine {
        let threads = 100_000;
        one_shot(
            "blackscholes",
            threads,
            total_cpu_secs / threads as f64,
            0.05,
            512,
            0xB5C0,
            p,
        )
    } else {
        // Coarse configuration: each thread prices its option block in
        // rounds, synchronizing a progress counter — the sync points where
        // the paper inserts CPR checkpoint code.
        let threads = p.contexts as usize;
        let rounds = 280;
        let per_seg = total_cpu_secs / (threads * rounds) as f64;
        let mut rng = SmallRng::seed_from_u64(0xB5C0);
        let specs = (0..threads)
            .map(|i| {
                let j = jitter(&mut rng, 0.15);
                let mut segs: Vec<Segment> = (0..rounds)
                    .map(|_| {
                        Segment::new(p.cycles(per_seg * j), SimOp::Atomic {
                            atomic: AtomicId::new(4),
                        })
                        .with_ckpt_bytes(262_144)
                    })
                    .collect();
                segs.push(Segment::new(0, SimOp::End));
                ThreadSpec::new(tid(i), GroupId::new(0), 1, segs)
            })
            .collect();
        Workload::new("blackscholes", specs)
    }
}

/// Canneal: small computations, medium sync frequency, small critical
/// sections (synthetic-annealing element swaps via atomics — the paper
/// notes Canneal's "non-standard APIs", handled with hybrid recovery).
/// 6.93 s on 24 contexts; 6 272 sub-threads.
pub fn canneal(p: &TraceParams) -> Workload {
    let total_cpu_secs = 6.93 * 24.0 / 1.14;
    let threads = if p.fine { 96 } else { p.contexts as usize };
    // threads × ops ≈ 6 272 sub-threads (Table 2 column 7).
    let ops = (6_272 / threads).max(1);
    let per_op = total_cpu_secs / (threads * ops) as f64;
    critical_sections(
        "canneal", threads, ops, per_op, 25e-6, 8, true, 2048, 0xCA41, p,
    )
}

/// Swaptions: very large computations, minimal sync. 57.27 s on 24
/// contexts; only 130 sub-threads even when fine (128 worker threads).
pub fn swaptions(p: &TraceParams) -> Workload {
    let total_cpu_secs = 57.27 * 24.0 / 1.09;
    let threads = if p.fine { 128 } else { p.contexts as usize };
    one_shot(
        "swaptions",
        threads,
        total_cpu_secs / threads as f64,
        0.10,
        8192,
        0x54A9,
        p,
    )
}

/// Histogram: tiny one-shot data-parallel. 0.22 s on 24 contexts;
/// 26 sub-threads. Already fine-grained.
pub fn histogram(p: &TraceParams) -> Workload {
    let total_cpu_secs = 0.22 * 24.0;
    let threads = p.contexts as usize;
    one_shot(
        "histogram",
        threads,
        total_cpu_secs / threads as f64,
        0.10,
        1_048_576, // checkpoints relatively large data (bin arrays)
        0x4157,
        p,
    )
}

/// Histogram with a seeded synchronization bug: every worker counts its
/// processed pieces in a shared progress cell with a plain read-modify-write
/// instead of an atomic — the data race `gprs_core::racecheck` detects.
/// Sub-thread boundaries come from each worker's *private* progress atomic
/// (`AtomicId(1 + i)`), which creates no cross-thread happens-before edges,
/// so every cross-thread pair of updates races; the final merge happens
/// under a shared mutex, safely, after the damage is done. The racy cell
/// aliases `AtomicId(0)` — the same id the runtime-level
/// `build_racy_histogram` registers first — so the deterministic first-race
/// report names the same resource in both engines.
pub fn histogram_racy(p: &TraceParams) -> Workload {
    let threads = p.contexts.max(2) as usize;
    let pieces = 4usize;
    let total_cpu_secs = 0.22 * 24.0;
    let piece = p.cycles(total_cpu_secs / threads as f64 / pieces as f64);
    let racy = AtomicId::new(0);
    let merge = LockId::new(0);
    Workload::new(
        "histogram-racy",
        (0..threads)
            .map(|i| {
                let private = AtomicId::new(1 + i as u64);
                let mut segs: Vec<Segment> = (0..pieces)
                    .map(|_| {
                        Segment::new(piece, SimOp::Atomic { atomic: private })
                            .with_plain(racy, PlainKind::Update)
                    })
                    .collect();
                segs.push(Segment::new(0, SimOp::Lock {
                    lock: merge,
                    cs_work: piece / 8,
                }));
                ThreadSpec::new(ThreadId::new(i as u32), GroupId::new(0), 1, segs)
            })
            .collect(),
    )
}

/// A seeded deadlock hazard: two workers repeatedly take the same pair of
/// locks in *opposite* nesting order (`a` outer / `b` nested on one thread,
/// `b` outer / `a` nested on the other) — the textbook hold-and-wait cycle
/// `gprs-analyze`'s lock-order pass warns about. Like `histogram_racy`,
/// this is a lint fixture, not one of Table 2's programs: GPRS's
/// token-ordered engine serializes the critical sections deterministically
/// and the trace completes, but a free-running execution of the same
/// structure could interleave into a deadlock.
pub fn deadlock_hazard(p: &TraceParams) -> Workload {
    let (a, b) = (LockId::new(0), LockId::new(1));
    let piece = p.cycles(0.05);
    let rounds = 8usize;
    let spec = |i: usize, outer: LockId, nested: LockId| {
        let private = AtomicId::new(1 + i as u64);
        ThreadSpec::new(
            tid(i),
            GroupId::new(0),
            1,
            (0..rounds)
                .flat_map(|_| {
                    [
                        Segment::new(piece, SimOp::Lock {
                            lock: outer,
                            cs_work: piece / 4,
                        }),
                        Segment::new(piece, SimOp::Atomic { atomic: private })
                            .with_nested(nested),
                    ]
                })
                .collect(),
        )
    };
    Workload::new("deadlock-hazard", vec![spec(0, a, b), spec(1, b, a)])
}

/// Pbzip2: the read → compress × N → write pipeline of Figure 6, with
/// uneven block costs. 17.89 s on 24 contexts; ≈ 42 269 sub-threads.
/// Thread groups: 0 = read, 1 = compress, 2 = write, weighted 4:4:1.
pub fn pbzip2(p: &TraceParams) -> Workload {
    pbzip2_with(p, p.contexts.saturating_sub(2).max(1) as usize)
}

/// Pbzip2 with an explicit compressor count (used by the Figure 11 sweep,
/// which runs 1–24 contexts).
pub fn pbzip2_with(p: &TraceParams, compressors: usize) -> Workload {
    let in_chan = ChannelId::new(0);
    let out_chan = ChannelId::new(1);
    // ≈ 42 269 sub-threads ≈ blocks × (1 push + 2 per compress + 1 pop).
    let blocks_f = 10_500.0 * p.scale;
    let blocks = (blocks_f as usize).max(compressors * 2);
    // 17.89 s × 24 ctx of CPU work, ~90 % of it compression. Per-block
    // costs are independent of `scale` (scaling shrinks the block count).
    let total_cpu = 17.89 * 24.0;
    // Reader and writer must stay below the compress cadence
    // (compress_secs / compressors) or they, not compression, set the
    // pipeline rate — the paper's Pbzip2 is compression-bound.
    let compress_secs = total_cpu * 0.955 / 10_500.0;
    let read_secs = total_cpu * 0.020 / 10_500.0;
    let write_secs = total_cpu * 0.015 / 10_500.0;
    let mut rng = SmallRng::seed_from_u64(0xB212);

    let mut threads = Vec::new();
    // Reader: group 0, weight 4.
    threads.push(ThreadSpec::new(
        tid(0),
        GroupId::new(0),
        4,
        (0..blocks)
            .map(|_| {
                Segment::new(secs_to_cycles(read_secs), SimOp::Push { chan: in_chan })
                    .with_ckpt_bytes(1024)
            })
            .collect(),
    ));
    // Compressors: group 1, weight 4. Blocks statically dealt round-robin;
    // costs uneven (±50 %), reproducing Pbzip2's "tasks of uneven sizes".
    let per = blocks / compressors;
    let extra = blocks % compressors;
    for c in 0..compressors {
        let mine = per + usize::from(c < extra);
        let segs = (0..mine)
            .flat_map(|_| {
                let cost = secs_to_cycles(compress_secs * rng.gen_range(0.5..1.5));
                [
                    Segment::new(0, SimOp::Pop { chan: in_chan }).with_ckpt_bytes(512),
                    Segment::new(cost, SimOp::Push { chan: out_chan }).with_ckpt_bytes(2048),
                ]
            })
            .collect();
        threads.push(ThreadSpec::new(tid(1 + c), GroupId::new(1), 4, segs));
    }
    // Writer: group 2, weight 1.
    threads.push(ThreadSpec::new(
        tid(1 + compressors),
        GroupId::new(2),
        1,
        (0..blocks)
            .flat_map(|_| {
                [
                    Segment::new(0, SimOp::Pop { chan: out_chan }).with_ckpt_bytes(512),
                    Segment::new(secs_to_cycles(write_secs), SimOp::Atomic {
                        atomic: AtomicId::new(9),
                    })
                    .with_ckpt_bytes(512),
                ]
            })
            .collect(),
    ));
    Workload::new("pbzip2", threads)
}

/// Dedup: five-stage pipeline (read → chunk → dedup → compress → write)
/// whose sequential output stage dominates, so it scales poorly (`§4`).
/// 73.71 s on 24 contexts; ≈ 1.38 M sub-threads from very small chunks.
pub fn dedup(p: &TraceParams) -> Workload {
    let c_blocks = ChannelId::new(0);
    let c_chunks = ChannelId::new(1);
    let c_unique = ChannelId::new(2);
    let c_out = ChannelId::new(3);
    // ≈ 230 k chunks → ~1.38 M grants across the pipeline.
    let chunks = ((230_000.0 * p.scale) as usize).max(64);
    let chunks_per_block = 250;
    let blocks = chunks / chunks_per_block + usize::from(!chunks.is_multiple_of(chunks_per_block));
    let unique_every = 2; // 50 % duplicate chunks skip compression
    let unique = chunks / unique_every;
    let mid_threads = ((p.contexts.saturating_sub(3)).max(2) / 2) as usize;

    // Per-item costs are independent of `scale` (scaling shrinks counts).
    // The writer's sequential time dominates: 230 k × 0.3 ms ≈ 69 s.
    let write_secs = 69.0 / 230_000.0;
    let hash_secs = 2.0 * 24.0 / 230_000.0; // cheap fingerprinting
    let compress_secs = 20.0 * 24.0 / 115_000.0;
    let read_secs = 1.0 / 920.0;

    let mut threads = Vec::new();
    // Stage 1: reader.
    threads.push(ThreadSpec::new(
        tid(0),
        GroupId::new(0),
        2,
        (0..blocks)
            .map(|_| {
                Segment::new(secs_to_cycles(read_secs), SimOp::Push { chan: c_blocks })
                    .with_ckpt_bytes(4096)
            })
            .collect(),
    ));
    // Stage 2: chunker — pops a block, pushes its chunks.
    let mut chunker_segs = Vec::new();
    let mut remaining = chunks;
    for _ in 0..blocks {
        chunker_segs.push(Segment::new(0, SimOp::Pop { chan: c_blocks }).with_ckpt_bytes(512));
        let n = remaining.min(chunks_per_block);
        remaining -= n;
        for _ in 0..n {
            chunker_segs
                .push(Segment::new(secs_to_cycles(1e-6), SimOp::Push { chan: c_chunks })
                    .with_ckpt_bytes(128));
        }
    }
    threads.push(ThreadSpec::new(tid(1), GroupId::new(1), 2, chunker_segs));
    // Stage 3: dedup threads — pop chunk, hash, forward unique ones.
    let mut next = 2;
    let per_dedup = chunks / mid_threads;
    let mut uniq_assigned = 0;
    for d in 0..mid_threads {
        let mine = if d + 1 == mid_threads {
            chunks - per_dedup * (mid_threads - 1)
        } else {
            per_dedup
        };
        let mut segs = Vec::new();
        for k in 0..mine {
            segs.push(Segment::new(0, SimOp::Pop { chan: c_chunks }).with_ckpt_bytes(128));
            let is_unique = (d * per_dedup + k).is_multiple_of(unique_every) && uniq_assigned < unique;
            if is_unique {
                uniq_assigned += 1;
                segs.push(
                    Segment::new(secs_to_cycles(hash_secs), SimOp::Push { chan: c_unique })
                        .with_ckpt_bytes(256),
                );
            } else {
                segs.push(Segment::new(secs_to_cycles(hash_secs), SimOp::Atomic {
                    atomic: AtomicId::new(7),
                })
                .with_ckpt_bytes(128));
            }
        }
        threads.push(ThreadSpec::new(tid(next), GroupId::new(2), 2, segs));
        next += 1;
    }
    let unique = uniq_assigned;
    // Stage 4: compress threads — pop unique chunk, compress, forward.
    let per_comp = unique / mid_threads;
    for c in 0..mid_threads {
        let mine = if c + 1 == mid_threads {
            unique - per_comp * (mid_threads - 1)
        } else {
            per_comp
        };
        let segs = (0..mine)
            .flat_map(|_| {
                [
                    Segment::new(0, SimOp::Pop { chan: c_unique }).with_ckpt_bytes(128),
                    Segment::new(secs_to_cycles(compress_secs), SimOp::Push { chan: c_out })
                        .with_ckpt_bytes(512),
                ]
            })
            .collect();
        threads.push(ThreadSpec::new(tid(next), GroupId::new(3), 2, segs));
        next += 1;
    }
    // Stage 5: sequential writer — the scaling bottleneck.
    let segs = (0..unique)
        .flat_map(|_| {
            [
                Segment::new(0, SimOp::Pop { chan: c_out }).with_ckpt_bytes(128),
                Segment::new(secs_to_cycles(write_secs * 2.0), SimOp::Atomic {
                    atomic: AtomicId::new(8),
                })
                .with_ckpt_bytes(256),
            ]
        })
        .collect();
    threads.push(ThreadSpec::new(tid(next), GroupId::new(4), 1, segs));
    Workload::new("dedup", threads)
}

/// RE (redundancy elimination): medium computations with medium critical
/// sections protecting a shared fingerprint cache. 7.70 s on 24 contexts;
/// only 102 sub-threads (coarse sections).
pub fn re(p: &TraceParams) -> Workload {
    let total_cpu_secs = 7.70 * 24.0 / 1.1;
    let threads = p.contexts as usize;
    let ops = (102 / threads).max(1); // ≈ 102 sub-threads
    // Medium critical sections: ~8 ms each on the shared fingerprint-cache
    // lock (vs Canneal's ~25 µs), still far from serializing the run.
    let cs = 0.008;
    let per_op = total_cpu_secs / (threads * ops) as f64 - cs;
    critical_sections("re", threads, ops, per_op, cs, 1, false, 16_384, 0x0BE1, p)
}

/// WordCount: small map phase plus an atomic reduce. 1.44 s on 24
/// contexts; 54 sub-threads.
pub fn wordcount(p: &TraceParams) -> Workload {
    let total_cpu_secs = 1.44 * 24.0;
    let threads = p.contexts as usize;
    // map + reduce ≈ 2 sub-threads per thread + main ≈ 54 (Table 2).
    critical_sections(
        "wordcount",
        threads,
        2,
        total_cpu_secs / (threads * 2) as f64 / 1.25,
        0.0,
        4,
        true,
        131_072,
        0x30C7,
        p,
    )
}

/// ReverseIndex: many tiny computations with small critical sections on a
/// shared index. 3.37 s on 24 contexts; 78 430 sub-threads.
pub fn reverse_index(p: &TraceParams) -> Workload {
    let total_cpu_secs = 3.37 * 24.0;
    let threads = p.contexts as usize;
    // 78 430 ops across the machine regardless of scale (scale shrinks the
    // per-op cost): ~0.8 ms compute + small critical section each.
    let ops = (78_430 / threads).max(1);
    let per_op = total_cpu_secs * 0.8 / 78_430.0;
    let cs = total_cpu_secs * 0.2 / 78_430.0;
    critical_sections(
        "reverse-index",
        threads,
        ops,
        per_op,
        cs,
        64,
        false,
        1024,
        0x9E71,
        p,
    )
}

/// Per-program experiment parameters from `§4`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramInfo {
    /// Program name (Table 2, column 1).
    pub name: &'static str,
    /// The paper's 24-context Pthreads baseline time (Table 2, column 5).
    pub paper_baseline_secs: f64,
    /// Fine-grained sub-thread count (Table 2, column 7).
    pub paper_subthreads: u64,
    /// Coordinated-CPR checkpoint interval (the paper matches GPRS's
    /// frequency except Pbzip2 at 1/s and Dedup at 5/s).
    pub cpr_interval_secs: f64,
    /// Figure 10 "low" exception rate (exceptions/sec).
    pub fig10_low_rate: f64,
    /// Figure 10 "high" exception rate.
    pub fig10_high_rate: f64,
    /// Whether Figure 8(b)/9/10 use the fine-grained configuration.
    pub fine_in_fig10: bool,
    /// Incremental state recorded per coordinated-CPR checkpoint, in ms
    /// of simulated time (application-level record at the barrier).
    pub cpr_record_ms: f64,
    /// Full-state reload on a CPR rollback, in ms — typically far larger
    /// than the incremental record, and what drives CPR's tipping.
    pub cpr_restore_ms: f64,
}

/// All ten programs with their §4 experiment parameters.
pub const PROGRAMS: [ProgramInfo; 10] = [
    ProgramInfo {
        name: "barnes-hut",
        paper_baseline_secs: 41.70,
        paper_subthreads: 75_076,
        cpr_interval_secs: 1.0,
        fig10_low_rate: 1.0,
        fig10_high_rate: 5.0,
        fine_in_fig10: true,
        cpr_record_ms: 50.0,
        cpr_restore_ms: 150.0,
    },
    ProgramInfo {
        name: "blackscholes",
        paper_baseline_secs: 112.89,
        paper_subthreads: 100_002,
        cpr_interval_secs: 0.4,
        fig10_low_rate: 1.0,
        fig10_high_rate: 5.0,
        fine_in_fig10: true,
        cpr_record_ms: 20.0,
        cpr_restore_ms: 250.0,
    },
    ProgramInfo {
        name: "canneal",
        paper_baseline_secs: 6.93,
        paper_subthreads: 6_272,
        cpr_interval_secs: 0.05,
        fig10_low_rate: 5.0,
        fig10_high_rate: 10.0,
        fine_in_fig10: true,
        cpr_record_ms: 1.3,
        cpr_restore_ms: 50.0,
    },
    ProgramInfo {
        name: "swaptions",
        paper_baseline_secs: 57.27,
        paper_subthreads: 130,
        cpr_interval_secs: 10.0,
        fig10_low_rate: 0.02,
        fig10_high_rate: 0.033,
        fine_in_fig10: true,
        cpr_record_ms: 30.0,
        cpr_restore_ms: 530.0,
    },
    ProgramInfo {
        name: "histogram",
        paper_baseline_secs: 0.22,
        paper_subthreads: 26,
        cpr_interval_secs: 0.1,
        fig10_low_rate: 5.0,
        fig10_high_rate: 10.0,
        fine_in_fig10: false,
        cpr_record_ms: 32.0,
        cpr_restore_ms: 40.0,
    },
    ProgramInfo {
        name: "pbzip2",
        paper_baseline_secs: 17.89,
        paper_subthreads: 42_269,
        cpr_interval_secs: 1.0,
        fig10_low_rate: 1.0,
        fig10_high_rate: 2.0,
        fine_in_fig10: false,
        cpr_record_ms: 240.0,
        cpr_restore_ms: 200.0,
    },
    ProgramInfo {
        name: "dedup",
        paper_baseline_secs: 73.71,
        paper_subthreads: 1_377_855,
        cpr_interval_secs: 0.2,
        fig10_low_rate: 5.0,
        fig10_high_rate: 10.0,
        fine_in_fig10: false,
        cpr_record_ms: 30.0,
        cpr_restore_ms: 30.0,
    },
    ProgramInfo {
        name: "re",
        paper_baseline_secs: 7.70,
        paper_subthreads: 102,
        cpr_interval_secs: 0.075,
        fig10_low_rate: 2.0,
        fig10_high_rate: 4.0,
        fine_in_fig10: false,
        cpr_record_ms: 5.3,
        cpr_restore_ms: 220.0,
    },
    ProgramInfo {
        name: "wordcount",
        paper_baseline_secs: 1.44,
        paper_subthreads: 54,
        cpr_interval_secs: 0.6,
        fig10_low_rate: 1.0,
        fig10_high_rate: 3.0,
        fine_in_fig10: false,
        cpr_record_ms: 42.0,
        cpr_restore_ms: 300.0,
    },
    ProgramInfo {
        name: "reverse-index",
        paper_baseline_secs: 3.37,
        paper_subthreads: 78_430,
        cpr_interval_secs: 0.02,
        fig10_low_rate: 5.0,
        fig10_high_rate: 10.0,
        fine_in_fig10: false,
        cpr_record_ms: 0.5,
        cpr_restore_ms: 80.0,
    },
];

/// Builds the named program's workload.
///
/// # Panics
/// Panics on an unknown name (the registry is fixed; callers use
/// [`PROGRAMS`]).
pub fn build(name: &str, p: &TraceParams) -> Workload {
    match try_build(name, p) {
        Some(w) => w,
        None => panic!("unknown program {name}"),
    }
}

/// Non-panicking [`build`]: `None` for an unknown name. Replay tooling
/// rebuilding a workload from a recording header uses this to turn a
/// corrupted or foreign workload name into a named error instead of a
/// crash.
pub fn try_build(name: &str, p: &TraceParams) -> Option<Workload> {
    Some(match name {
        "barnes-hut" => barnes_hut(p),
        "blackscholes" => blackscholes(p),
        "canneal" => canneal(p),
        "swaptions" => swaptions(p),
        "histogram" => histogram(p),
        "histogram-racy" => histogram_racy(p),
        "deadlock-hazard" => deadlock_hazard(p),
        "pbzip2" => pbzip2(p),
        "dedup" => dedup(p),
        "re" => re(p),
        "wordcount" => wordcount(p),
        "reverse-index" => reverse_index(p),
        _ => return None,
    })
}

/// Looks up a program's §4 parameters by name.
pub fn info(name: &str) -> &'static ProgramInfo {
    PROGRAMS
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("unknown program {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprs_sim::free::{run_free, FreeRunConfig};
    use gprs_sim::gprs::{run_gprs, GprsSimConfig};

    fn small() -> TraceParams {
        TraceParams::paper().scaled(0.01)
    }

    #[test]
    fn all_programs_build_and_balance() {
        for prog in &PROGRAMS {
            let w = build(prog.name, &small());
            assert!(
                w.check_channel_balance().is_ok(),
                "{}: channel imbalance",
                prog.name
            );
            assert!(w.threads.len() >= 2, "{}", prog.name);
        }
    }

    #[test]
    fn traces_are_deterministic() {
        for prog in &PROGRAMS {
            let a = build(prog.name, &small());
            let b = build(prog.name, &small());
            assert_eq!(a, b, "{} trace not deterministic", prog.name);
        }
    }

    #[test]
    fn all_programs_complete_under_pthreads_and_gprs() {
        for prog in &PROGRAMS {
            let w = build(prog.name, &small());
            let pt = run_free(&w, &FreeRunConfig::pthreads(24));
            assert!(pt.completed, "{} pthreads DNC", prog.name);
            let g = run_gprs(&w, &GprsSimConfig::balance_aware(24));
            assert!(g.completed, "{} gprs DNC", prog.name);
        }
    }

    #[test]
    fn full_scale_baselines_match_paper_times() {
        // Column 5 of Table 2, within 30 %. (Only the cheap-to-simulate
        // programs here; the pipelines are covered by the figure harness.)
        for name in ["barnes-hut", "blackscholes", "swaptions", "histogram", "wordcount"] {
            let info = info(name);
            let w = build(name, &TraceParams::paper());
            let r = run_free(&w, &FreeRunConfig::pthreads(24));
            assert!(r.completed);
            let rel = r.finish_secs() / info.paper_baseline_secs;
            assert!(
                (0.7..1.3).contains(&rel),
                "{name}: simulated {} vs paper {}",
                r.finish_secs(),
                info.paper_baseline_secs
            );
        }
    }

    #[test]
    fn fine_subthread_counts_match_table2() {
        for name in ["barnes-hut", "blackscholes", "swaptions", "canneal"] {
            let info = info(name);
            let w = build(name, &TraceParams::paper().fine());
            let n = w.total_segments() as f64;
            // Segments ≈ sub-threads; within 20 % of column 7.
            let rel = n / info.paper_subthreads as f64;
            assert!(
                (0.8..1.3).contains(&rel),
                "{name}: {n} segments vs paper {}",
                info.paper_subthreads
            );
        }
    }

    #[test]
    fn pbzip2_subthread_count_scales() {
        let w = pbzip2(&TraceParams::paper());
        // blocks(1 push + 1 pop + 1 push + 1 pop…) ≈ 4 × 10 500 = 42 000.
        let n = w.total_segments();
        assert!(
            (35_000..55_000).contains(&n),
            "pbzip2 segments {n} vs paper 42 269"
        );
    }

    #[test]
    fn pbzip2_groups_are_staged() {
        let w = pbzip2(&small());
        assert_eq!(w.threads[0].group, GroupId::new(0));
        assert_eq!(w.threads[0].weight, 4);
        assert_eq!(w.threads.last().unwrap().group, GroupId::new(2));
        assert_eq!(w.threads.last().unwrap().weight, 1);
    }

    #[test]
    fn dedup_writer_dominates() {
        let w = dedup(&small());
        let writer = w.threads.last().unwrap();
        let writer_work = writer.total_work();
        let reader_work = w.threads[0].total_work();
        assert!(writer_work > reader_work * 5, "writer must dominate");
    }

    #[test]
    fn info_matches_programs() {
        for p in &PROGRAMS {
            assert_eq!(info(p.name).name, p.name);
        }
        assert_eq!(PROGRAMS.len(), 10);
    }

    #[test]
    #[should_panic(expected = "unknown program")]
    fn unknown_program_panics() {
        let _ = build("quake", &small());
    }
}
