//! Scientific / systems programs on the real runtime: barrier-synchronized
//! Barnes-Hut N-body, Canneal annealing over a shared netlist, RE's shared
//! packet cache, and ReverseIndex's sharded critical sections.

use crate::kernels::canneal::{anneal_sweep, Netlist};
use crate::kernels::nbody::{step_range, Body};
use crate::kernels::netre::{Packet, PacketCache};
use crate::kernels::text::{extract_links, Document, ReverseIndex};
use gprs_core::history::Checkpoint;
use gprs_runtime::ctx::StepCtx;
use gprs_runtime::handles::{BarrierHandle, MutexHandle};
use gprs_runtime::program::{Step, ThreadProgram};

/// Barnes-Hut worker: each iteration locks the shared body vector, steps
/// its own range (tree build + forces + integration), then synchronizes on
/// a barrier with its peers — the iterative data-parallel pattern of the
/// benchmark.
pub struct NBodyWorker {
    bodies: MutexHandle<Vec<Body>>,
    barrier: BarrierHandle,
    done: gprs_runtime::handles::AtomicHandle,
    range: std::ops::Range<usize>,
    iters: u32,
    iter: u32,
    phase: u8, // 0 = request lock, 1 = in CS, 2 = signal completion
    dt: f64,
}

impl NBodyWorker {
    /// Creates a worker owning `range` of the shared body vector.
    pub fn new(
        bodies: MutexHandle<Vec<Body>>,
        barrier: BarrierHandle,
        done: gprs_runtime::handles::AtomicHandle,
        range: std::ops::Range<usize>,
        iters: u32,
        dt: f64,
    ) -> Self {
        NBodyWorker {
            bodies,
            barrier,
            done,
            range,
            iters,
            iter: 0,
            phase: 0,
            dt,
        }
    }
}

impl Checkpoint for NBodyWorker {
    type Snapshot = (u32, u8);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.iter, self.phase)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.iter = s.0;
        self.phase = s.1;
    }
}

impl ThreadProgram for NBodyWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        match self.phase {
            0 => {
                if self.iter == self.iters {
                    // Signal completion so auditors can poll for quiescence.
                    self.phase = 2;
                    return self.done.fetch_add(1);
                }
                self.phase = 1;
                self.bodies.lock()
            }
            1 => {
                let range = self.range.clone();
                let dt = self.dt;
                ctx.with_lock(&self.bodies, |bodies| {
                    step_range(bodies, range, dt);
                });
                self.iter += 1;
                self.phase = 0;
                self.barrier.wait()
            }
            _ => Step::exit(self.iter),
        }
    }
}

/// Canneal worker: each round locks the shared netlist, runs one annealing
/// sweep over random pairs, and tallies accepted moves through an atomic —
/// small computations with frequent small critical sections.
pub struct CannealWorker {
    netlist: MutexHandle<Netlist>,
    accepted: gprs_runtime::handles::AtomicHandle,
    done: gprs_runtime::handles::AtomicHandle,
    sweeps: u32,
    moves_per_sweep: usize,
    seed: u64,
    sweep: u32,
    phase: u8,
    pending_accepts: u64,
}

impl CannealWorker {
    /// Creates a worker with its own deterministic seed.
    pub fn new(
        netlist: MutexHandle<Netlist>,
        accepted: gprs_runtime::handles::AtomicHandle,
        done: gprs_runtime::handles::AtomicHandle,
        sweeps: u32,
        moves_per_sweep: usize,
        seed: u64,
    ) -> Self {
        CannealWorker {
            netlist,
            accepted,
            done,
            sweeps,
            moves_per_sweep,
            seed,
            sweep: 0,
            phase: 0,
            pending_accepts: 0,
        }
    }
}

impl Checkpoint for CannealWorker {
    type Snapshot = (u32, u8, u64);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.sweep, self.phase, self.pending_accepts)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.sweep = s.0;
        self.phase = s.1;
        self.pending_accepts = s.2;
    }
}

impl ThreadProgram for CannealWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        match self.phase {
            0 => {
                if self.sweep == self.sweeps {
                    self.phase = 2;
                    return self.done.fetch_add(1);
                }
                self.phase = 1;
                self.netlist.lock()
            }
            2 => Step::exit(self.sweep),
            _ => {
                let temp = 50.0 / (1.0 + self.sweep as f64);
                let moves = self.moves_per_sweep;
                let seed = self.seed.wrapping_add(self.sweep as u64);
                let accepted =
                    ctx.with_lock(&self.netlist, |net| anneal_sweep(net, moves, temp, seed));
                ctx.unlock(&self.netlist);
                self.pending_accepts = accepted as u64;
                self.sweep += 1;
                self.phase = 0;
                self.accepted.fetch_add(self.pending_accepts)
            }
        }
    }
}

/// RE worker: processes its packet batch in rounds against the shared
/// cache under a mutex — medium computations, medium critical sections.
pub struct ReWorker {
    cache: MutexHandle<PacketCache>,
    packets: Vec<Packet>,
    per_round: usize,
    cursor: usize,
    phase: u8,
    saved: u64,
}

impl ReWorker {
    /// Creates a worker over its packet batch, locking once per
    /// `per_round` packets.
    pub fn new(cache: MutexHandle<PacketCache>, packets: Vec<Packet>, per_round: usize) -> Self {
        ReWorker {
            cache,
            packets,
            per_round: per_round.max(1),
            cursor: 0,
            phase: 0,
            saved: 0,
        }
    }
}

impl Checkpoint for ReWorker {
    type Snapshot = (usize, u8, u64);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.cursor, self.phase, self.saved)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.cursor = s.0;
        self.phase = s.1;
        self.saved = s.2;
    }
}

impl ThreadProgram for ReWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        match self.phase {
            0 => {
                if self.cursor >= self.packets.len() {
                    return Step::exit(self.saved);
                }
                self.phase = 1;
                self.cache.lock()
            }
            _ => {
                let end = (self.cursor + self.per_round).min(self.packets.len());
                let batch = &self.packets[self.cursor..end];
                let saved: u64 = ctx.with_lock(&self.cache, |cache| {
                    batch.iter().map(|p| cache.process(p).saved as u64).sum()
                });
                self.saved += saved;
                self.cursor = end;
                self.phase = 0;
                if self.cursor >= self.packets.len() {
                    return Step::exit(self.saved);
                }
                self.cache.lock()
            }
        }
    }
}

/// ReverseIndex worker: parses its documents, then inserts each document's
/// links into one of several index shards under that shard's mutex (the
/// benchmark's many small critical sections), using nested locking when a
/// document's links span two shards.
pub struct ReverseIndexWorker {
    shards: Vec<MutexHandle<ReverseIndex>>,
    docs: Vec<Document>,
    cursor: usize,
    phase: u8,
    links: Vec<u32>,
    inserted: u64,
}

impl ReverseIndexWorker {
    /// Creates a worker over its documents and the shared shard set.
    pub fn new(shards: Vec<MutexHandle<ReverseIndex>>, docs: Vec<Document>) -> Self {
        ReverseIndexWorker {
            shards,
            docs,
            cursor: 0,
            phase: 0,
            links: Vec::new(),
            inserted: 0,
        }
    }

    fn shard_of(&self, target: u32) -> usize {
        target as usize % self.shards.len()
    }

    /// Lowest shard index among the current document's links (shard 0 for
    /// leaf documents) — locking starts there and proceeds upward.
    fn primary_shard(&self) -> usize {
        self.links
            .iter()
            .map(|&t| self.shard_of(t))
            .min()
            .unwrap_or(0)
    }
}

impl Checkpoint for ReverseIndexWorker {
    type Snapshot = (usize, u8, Vec<u32>, u64);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.cursor, self.phase, self.links.clone(), self.inserted)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.cursor = s.0;
        self.phase = s.1;
        self.links = s.2.clone();
        self.inserted = s.3;
    }
}

impl ThreadProgram for ReverseIndexWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        match self.phase {
            0 => {
                if self.cursor >= self.docs.len() {
                    return Step::exit(self.inserted);
                }
                self.links = extract_links(&self.docs[self.cursor].body);
                self.phase = 1;
                // Shards are always acquired in ascending index order — the
                // canonical lock-ordering discipline that rules out ABBA
                // deadlocks between workers (nested critical sections are
                // *not* ordered by the runtime, exactly as in the paper).
                let primary = self.primary_shard();
                self.shards[primary].lock()
            }
            _ => {
                let doc = self.docs[self.cursor].id;
                let links = std::mem::take(&mut self.links);
                let primary = links
                    .iter()
                    .map(|&t| self.shard_of(t))
                    .min()
                    .unwrap_or(0);
                // Insert into the held shard directly; other shards via
                // nested (subsumed) critical sections.
                let per_shard: Vec<Vec<u32>> = {
                    let mut v = vec![Vec::new(); self.shards.len()];
                    for &t in &links {
                        v[self.shard_of(t)].push(t);
                    }
                    v
                };
                for (s, targets) in per_shard.into_iter().enumerate() {
                    if targets.is_empty() {
                        continue;
                    }
                    self.inserted += targets.len() as u64;
                    if s == primary {
                        ctx.with_lock(&self.shards[s], |ix| {
                            crate::kernels::text::index_links(ix, doc, &targets)
                        });
                    } else {
                        ctx.lock_nested(&self.shards[s], |ix| {
                            crate::kernels::text::index_links(ix, doc, &targets)
                        });
                    }
                }
                self.cursor += 1;
                self.phase = 0;
                if self.cursor >= self.docs.len() {
                    return Step::exit(self.inserted);
                }
                self.links = extract_links(&self.docs[self.cursor].body);
                self.phase = 1;
                let primary = self.primary_shard();
                self.shards[primary].lock()
            }
        }
    }
}

/// Test/demo helper: polls a completion atomic until it reaches `peers`,
/// then reads a value out of a mutex and exits with it.
pub struct QuiescentAuditor<T, R, F> {
    done: gprs_runtime::handles::AtomicHandle,
    peers: u64,
    target: MutexHandle<T>,
    read: F,
    ready: bool,
    _r: std::marker::PhantomData<fn() -> R>,
}

impl<T, R, F> QuiescentAuditor<T, R, F>
where
    T: 'static,
    R: Send + Sync + 'static,
    F: FnMut(&mut T) -> R + Send + 'static,
{
    /// Creates the auditor.
    pub fn new(
        done: gprs_runtime::handles::AtomicHandle,
        peers: u64,
        target: MutexHandle<T>,
        read: F,
    ) -> Self {
        QuiescentAuditor {
            done,
            peers,
            target,
            read,
            ready: false,
            _r: std::marker::PhantomData,
        }
    }
}

impl<T, R, F: Send + 'static> Checkpoint for QuiescentAuditor<T, R, F> {
    type Snapshot = bool;
    fn checkpoint(&self) -> bool {
        self.ready
    }
    fn restore(&mut self, s: &bool) {
        self.ready = *s;
    }
}

impl<T, R, F> ThreadProgram for QuiescentAuditor<T, R, F>
where
    T: 'static,
    R: Send + Sync + 'static,
    F: FnMut(&mut T) -> R + Send + 'static,
{
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.ready && ctx.atomic_prev() >= self.peers {
            let out = ctx.lock_nested(&self.target, |t| (self.read)(t));
            return Step::exit(out);
        }
        self.ready = true;
        self.done.fetch_add(0) // poll the completion counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::nbody::generate_bodies;
    use crate::kernels::netre::generate_trace;
    use crate::kernels::text::generate_documents;
    use gprs_core::exception::ExceptionKind;
    use gprs_core::ids::GroupId;
    use gprs_runtime::GprsBuilder;
    use std::time::Duration;

    fn storm(ctl: gprs_runtime::Controller, us: u64) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            while !ctl.is_finished() {
                ctl.inject_on_busy(ExceptionKind::SoftFault);
                std::thread::sleep(Duration::from_micros(us));
            }
        })
    }

    #[test]
    fn nbody_barrier_program_is_exact_under_storm() {
        let n = 120;
        let iters = 4;
        let run = |inject: bool| {
            let mut b = GprsBuilder::new().workers(3);
            let bodies = b.mutex(generate_bodies(n, 5));
            let bar = b.barrier(3);
            let done = b.atomic(0);
            for w in 0..3usize {
                let lo = w * n / 3;
                let hi = (w + 1) * n / 3;
                b.thread(
                    NBodyWorker::new(bodies, bar, done, lo..hi, iters, 1e-3),
                    GroupId::new(0),
                    1,
                );
            }
            let auditor = b.thread(
                QuiescentAuditor::new(done, 3, bodies, |bs: &mut Vec<Body>| {
                    bs.iter().map(|b| b.x + b.y).sum::<f64>().to_bits()
                }),
                GroupId::new(1),
                1,
            );
            let rt = b.build();
            let h = inject.then(|| storm(rt.controller(), 600));
            let report = rt.run().unwrap();
            if let Some(h) = h {
                h.join().unwrap();
            }
            report.output::<u64>(auditor)
        };
        // Fault-free determinism is bit-exact; a recovered run is a correct
        // execution whose within-iteration lock interleaving may differ.
        let clean = run(false);
        assert_eq!(clean, run(false), "fault-free N-body is deterministic");
        let stormy = run(true);
        assert!(f64::from_bits(stormy).is_finite());
    }

    #[test]
    fn canneal_improves_and_fault_free_runs_are_deterministic() {
        let run = |inject: bool| {
            let mut b = GprsBuilder::new().workers(2);
            let net = Netlist::generate(200, 4, 3);
            let initial = net.total_cost();
            let netlist = b.mutex(net);
            let accepted = b.atomic(0);
            let done = b.atomic(0);
            for w in 0..2u64 {
                b.thread(
                    CannealWorker::new(netlist, accepted, done, 8, 400, 77 + w),
                    GroupId::new(0),
                    1,
                );
            }
            let auditor = b.thread(
                QuiescentAuditor::new(done, 2, netlist, |net: &mut Netlist| net.total_cost()),
                GroupId::new(1),
                1,
            );
            let rt = b.build();
            let h = inject.then(|| storm(rt.controller(), 500));
            let report = rt.run().unwrap();
            if let Some(h) = h {
                h.join().unwrap();
            }
            (initial, report.output::<u64>(auditor))
        };
        let (initial, clean) = run(false);
        let (_, stormy) = run(true);
        assert!(clean < initial, "annealing improves: {initial} -> {clean}");
        // Annealing outcome depends on the sweep interleaving; a recovered
        // schedule may be a different *correct* serialization, so only
        // fault-free runs are asserted bit-identical.
        assert!(stormy < initial, "stormy run still improves: {initial} -> {stormy}");
        let (_, clean2) = run(false);
        assert_eq!(clean, clean2, "fault-free runs are deterministic");
    }

    #[test]
    fn re_workers_save_bytes_and_survive_storm() {
        let trace = generate_trace(120, 256, 50, 9);
        let run = |inject: bool| {
            let mut b = GprsBuilder::new().workers(2);
            let cache = b.mutex(PacketCache::new(1 << 16));
            let mut tids = Vec::new();
            for half in trace.chunks(60) {
                tids.push(b.thread(
                    ReWorker::new(cache, half.to_vec(), 10),
                    GroupId::new(0),
                    1,
                ));
            }
            let rt = b.build();
            let h = inject.then(|| storm(rt.controller(), 400));
            let report = rt.run().unwrap();
            if let Some(h) = h {
                h.join().unwrap();
            }
            tids.iter().map(|&t| report.output::<u64>(t)).sum::<u64>()
        };
        let clean = run(false);
        let stormy = run(true);
        assert!(clean > 0, "a 50%-redundant trace must save bytes");
        assert_eq!(clean, stormy);
    }

    #[test]
    fn reverse_index_counts_all_links_under_storm() {
        let docs = generate_documents(60, 6, 4);
        let run = |inject: bool| {
            let mut b = GprsBuilder::new().workers(3);
            let shards: Vec<_> = (0..4).map(|_| b.mutex(ReverseIndex::new())).collect();
            let mut tids = Vec::new();
            for part in docs.chunks(20) {
                tids.push(b.thread(
                    ReverseIndexWorker::new(shards.clone(), part.to_vec()),
                    GroupId::new(0),
                    1,
                ));
            }
            let rt = b.build();
            let h = inject.then(|| storm(rt.controller(), 500));
            let report = rt.run().unwrap();
            if let Some(h) = h {
                h.join().unwrap();
            }
            tids.iter().map(|&t| report.output::<u64>(t)).sum::<u64>()
        };
        let clean = run(false);
        assert_eq!(clean, 60 * 6, "every generated link indexed once");
        assert_eq!(clean, run(true));
    }
}
