//! Map-reduce style programs: Histogram and WordCount workers that merge
//! into a shared mutex-protected accumulator — plus a deliberately racy
//! histogram variant exercising the `gprs_core::racecheck` detector.

use crate::kernels::text::{byte_histogram, count_words, merge_counts};
use gprs_core::history::Checkpoint;
use gprs_runtime::ctx::StepCtx;
use gprs_runtime::handles::{AtomicHandle, ChannelHandle, MutexHandle};
use gprs_runtime::program::{Step, ThreadProgram};
use std::collections::BTreeMap;

/// Histogram worker: histograms an owned chunk, merges into the shared
/// accumulator under a mutex, exits with its chunk length.
pub struct HistogramWorker {
    chunk: Vec<u8>,
    acc: MutexHandle<Vec<u64>>,
    stage: u8,
    local: Option<Vec<u64>>,
}

impl HistogramWorker {
    /// Creates the worker over its private chunk.
    pub fn new(chunk: Vec<u8>, acc: MutexHandle<Vec<u64>>) -> Self {
        HistogramWorker {
            chunk,
            acc,
            stage: 0,
            local: None,
        }
    }
}

impl Checkpoint for HistogramWorker {
    type Snapshot = (u8, Option<Vec<u64>>);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.stage, self.local.clone())
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.stage = s.0;
        self.local = s.1.clone();
    }
}

impl ThreadProgram for HistogramWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        match self.stage {
            0 => {
                self.local = Some(byte_histogram(&self.chunk).to_vec());
                self.stage = 1;
                self.acc.lock()
            }
            _ => {
                let local = self.local.take().expect("map phase ran");
                ctx.with_lock(&self.acc, |bins| {
                    for (b, l) in bins.iter_mut().zip(local.iter()) {
                        *b += l;
                    }
                });
                Step::exit(self.chunk.len() as u64)
            }
        }
    }
}

/// Histogram worker with a seeded synchronization bug: it counts processed
/// pieces in a *shared* progress cell using plain load/store instead of an
/// atomic fetch-add — the classic lost-update data race. The histogram
/// itself stays correct (accumulated locally, merged under the mutex); only
/// the progress cell is corrupted, which is exactly the kind of silent wart
/// the racecheck subsystem exists to flag before selective restart trusts
/// the lock/atomic alias trail.
///
/// Sub-thread boundaries between pieces come from a *private* per-worker
/// ticket atomic, which creates no cross-thread happens-before edges, so
/// every cross-thread pair of progress updates races.
pub struct RacyHistogramWorker {
    chunk: Vec<u8>,
    acc: MutexHandle<Vec<u64>>,
    /// Shared progress cell, accessed with plain (racy) load/store.
    probe: AtomicHandle,
    /// Private boundary atomic: ends each piece's sub-thread without
    /// ordering against other workers.
    ticket: AtomicHandle,
    /// Merge-completion token channel consumed by the collector.
    done: ChannelHandle<u64>,
    pieces: u64,
    ix: u64,
    stage: u8,
    local: Vec<u64>,
}

impl RacyHistogramWorker {
    /// Creates the worker over its private chunk. `probe` must be shared
    /// across workers; `ticket` must be private to this worker.
    pub fn new(
        chunk: Vec<u8>,
        acc: MutexHandle<Vec<u64>>,
        probe: AtomicHandle,
        ticket: AtomicHandle,
        done: ChannelHandle<u64>,
        pieces: u64,
    ) -> Self {
        RacyHistogramWorker {
            chunk,
            acc,
            probe,
            ticket,
            done,
            pieces: pieces.max(1),
            ix: 0,
            stage: 0,
            local: vec![0; 256],
        }
    }
}

impl Checkpoint for RacyHistogramWorker {
    type Snapshot = (u64, u8, Vec<u64>);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.ix, self.stage, self.local.clone())
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.ix = s.0;
        self.stage = s.1;
        self.local = s.2.clone();
    }
}

impl ThreadProgram for RacyHistogramWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        match self.stage {
            0 => {
                let lo = self.chunk.len() as u64 * self.ix / self.pieces;
                let hi = self.chunk.len() as u64 * (self.ix + 1) / self.pieces;
                let piece = &self.chunk[lo as usize..hi as usize];
                for (b, l) in self.local.iter_mut().zip(byte_histogram(piece)) {
                    *b += l;
                }
                // The bug: a plain read-modify-write of the shared cell.
                let seen = ctx.plain_load(&self.probe);
                ctx.plain_store(&self.probe, seen + 1);
                self.ix += 1;
                if self.ix == self.pieces {
                    self.stage = 1;
                }
                self.ticket.fetch_add(1)
            }
            1 => {
                self.stage = 2;
                self.acc.lock()
            }
            2 => {
                self.stage = 3;
                ctx.with_lock(&self.acc, |bins| {
                    for (b, l) in bins.iter_mut().zip(self.local.iter()) {
                        *b += l;
                    }
                });
                self.done.push(self.chunk.len() as u64)
            }
            _ => Step::exit(self.chunk.len() as u64),
        }
    }
}

/// Collector for the racy histogram: waits for every worker's merge token,
/// then reads the accumulator under its mutex and exits with the final
/// histogram, making end-to-end correctness observable from the report.
pub struct RacyHistogramCollector {
    acc: MutexHandle<Vec<u64>>,
    done: ChannelHandle<u64>,
    workers: u64,
    seen: u64,
    stage: u8,
}

impl RacyHistogramCollector {
    /// Creates the collector expecting `workers` tokens on `done`.
    pub fn new(acc: MutexHandle<Vec<u64>>, done: ChannelHandle<u64>, workers: u64) -> Self {
        RacyHistogramCollector {
            acc,
            done,
            workers,
            seen: 0,
            stage: 0,
        }
    }
}

impl Checkpoint for RacyHistogramCollector {
    type Snapshot = (u64, u8);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.seen, self.stage)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.seen = s.0;
        self.stage = s.1;
    }
}

impl ThreadProgram for RacyHistogramCollector {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        match self.stage {
            0 if self.seen < self.workers => {
                self.seen += 1;
                if self.seen == self.workers {
                    self.stage = 1;
                }
                self.done.pop()
            }
            1 => {
                self.stage = 2;
                self.acc.lock()
            }
            _ => {
                let mut bins = Vec::new();
                ctx.with_lock(&self.acc, |b| bins = b.clone());
                Step::exit(bins)
            }
        }
    }
}

/// Wires `workers` racy histogram workers plus a collector onto a GPRS
/// builder over `input`.
///
/// The racy progress cell is registered *first* so it aliases `AtomicId(0)`
/// — the same id the trace-level `histogram_racy` workload uses — making
/// the deterministic first-race report comparable across the threaded
/// runtime and the virtual-time simulator. Returns the progress cell and
/// the collector's thread id; the collector exits with the final `Vec<u64>`
/// histogram, which equals the byte histogram of `input` despite the race.
pub fn build_racy_histogram(
    b: &mut gprs_runtime::GprsBuilder,
    input: Vec<u8>,
    workers: usize,
    pieces: u64,
) -> (AtomicHandle, gprs_core::ids::ThreadId) {
    use gprs_core::ids::GroupId;
    let probe = b.atomic(0);
    let acc = b.mutex(vec![0u64; 256]);
    let done = b.channel::<u64>();
    let n = workers.max(2);
    for w in 0..n {
        let lo = input.len() * w / n;
        let hi = input.len() * (w + 1) / n;
        let ticket = b.atomic(0);
        b.thread(
            RacyHistogramWorker::new(input[lo..hi].to_vec(), acc, probe, ticket, done, pieces),
            GroupId::new(0),
            1,
        );
    }
    let collector = b.thread(
        RacyHistogramCollector::new(acc, done, n as u64),
        GroupId::new(1),
        1,
    );
    (probe, collector)
}

/// WordCount worker: counts an owned text shard, merges under a mutex,
/// exits with its word total.
pub struct WordCountWorker {
    shard: String,
    acc: MutexHandle<BTreeMap<String, u64>>,
    stage: u8,
    local: Option<BTreeMap<String, u64>>,
}

impl WordCountWorker {
    /// Creates the worker over its text shard.
    pub fn new(shard: String, acc: MutexHandle<BTreeMap<String, u64>>) -> Self {
        WordCountWorker {
            shard,
            acc,
            stage: 0,
            local: None,
        }
    }
}

impl Checkpoint for WordCountWorker {
    type Snapshot = (u8, Option<BTreeMap<String, u64>>);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.stage, self.local.clone())
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.stage = s.0;
        self.local = s.1.clone();
    }
}

impl ThreadProgram for WordCountWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        match self.stage {
            0 => {
                self.local = Some(count_words(&self.shard));
                self.stage = 1;
                self.acc.lock()
            }
            _ => {
                let local = self.local.take().expect("map phase ran");
                let n = local.values().sum::<u64>();
                ctx.with_lock(&self.acc, |acc| merge_counts(acc, local));
                Step::exit(n)
            }
        }
    }
}

