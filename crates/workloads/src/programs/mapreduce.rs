//! Map-reduce style programs: Histogram and WordCount workers that merge
//! into a shared mutex-protected accumulator.

use crate::kernels::text::{byte_histogram, count_words, merge_counts};
use gprs_core::history::Checkpoint;
use gprs_runtime::ctx::StepCtx;
use gprs_runtime::handles::MutexHandle;
use gprs_runtime::program::{Step, ThreadProgram};
use std::collections::BTreeMap;

/// Histogram worker: histograms an owned chunk, merges into the shared
/// accumulator under a mutex, exits with its chunk length.
pub struct HistogramWorker {
    chunk: Vec<u8>,
    acc: MutexHandle<Vec<u64>>,
    stage: u8,
    local: Option<Vec<u64>>,
}

impl HistogramWorker {
    /// Creates the worker over its private chunk.
    pub fn new(chunk: Vec<u8>, acc: MutexHandle<Vec<u64>>) -> Self {
        HistogramWorker {
            chunk,
            acc,
            stage: 0,
            local: None,
        }
    }
}

impl Checkpoint for HistogramWorker {
    type Snapshot = (u8, Option<Vec<u64>>);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.stage, self.local.clone())
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.stage = s.0;
        self.local = s.1.clone();
    }
}

impl ThreadProgram for HistogramWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        match self.stage {
            0 => {
                self.local = Some(byte_histogram(&self.chunk).to_vec());
                self.stage = 1;
                self.acc.lock()
            }
            _ => {
                let local = self.local.take().expect("map phase ran");
                ctx.with_lock(&self.acc, |bins| {
                    for (b, l) in bins.iter_mut().zip(local.iter()) {
                        *b += l;
                    }
                });
                Step::exit(self.chunk.len() as u64)
            }
        }
    }
}

/// WordCount worker: counts an owned text shard, merges under a mutex,
/// exits with its word total.
pub struct WordCountWorker {
    shard: String,
    acc: MutexHandle<BTreeMap<String, u64>>,
    stage: u8,
    local: Option<BTreeMap<String, u64>>,
}

impl WordCountWorker {
    /// Creates the worker over its text shard.
    pub fn new(shard: String, acc: MutexHandle<BTreeMap<String, u64>>) -> Self {
        WordCountWorker {
            shard,
            acc,
            stage: 0,
            local: None,
        }
    }
}

impl Checkpoint for WordCountWorker {
    type Snapshot = (u8, Option<BTreeMap<String, u64>>);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.stage, self.local.clone())
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.stage = s.0;
        self.local = s.1.clone();
    }
}

impl ThreadProgram for WordCountWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        match self.stage {
            0 => {
                self.local = Some(count_words(&self.shard));
                self.stage = 1;
                self.acc.lock()
            }
            _ => {
                let local = self.local.take().expect("map phase ran");
                let n = local.values().sum::<u64>();
                ctx.with_lock(&self.acc, |acc| merge_counts(acc, local));
                Step::exit(n)
            }
        }
    }
}

