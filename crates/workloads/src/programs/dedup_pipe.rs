//! The Dedup five-stage pipeline (`§4`) on the real runtime:
//! read → chunk → dedup → compress → write, with the fingerprint store
//! under a runtime mutex (the critical section the benchmark serializes
//! on) and an ordered, recoverable output file.

use crate::kernels::compress::compress_block;
use crate::kernels::dedup::{Chunker, DedupOutcome, FingerprintStore};
use gprs_core::history::Checkpoint;
use gprs_core::ids::GroupId;
use gprs_runtime::ctx::StepCtx;
use gprs_runtime::handles::{ChannelHandle, FileHandle, MutexHandle};
use gprs_runtime::program::{Step, ThreadProgram};

/// An item flowing between dedup stages: `(sequence, bytes)`.
pub type Chunk = (u64, Vec<u8>);

/// What the writer receives: sequence, and either a fresh compressed chunk
/// or a back-reference to an earlier fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutItem {
    /// First occurrence: store compressed bytes under the fingerprint.
    Fresh(u64, Vec<u8>),
    /// Duplicate of an earlier chunk.
    Ref(u64),
}

/// Stage 1: slices the input into large blocks.
pub struct DedupReader {
    input: Vec<u8>,
    block: usize,
    out: ChannelHandle<Chunk>,
    next: u64,
}

impl DedupReader {
    /// Creates the reader.
    pub fn new(input: Vec<u8>, block: usize, out: ChannelHandle<Chunk>) -> Self {
        DedupReader {
            input,
            block: block.max(1),
            out,
            next: 0,
        }
    }

    /// Number of blocks this reader emits.
    pub fn blocks(&self) -> u64 {
        self.input.len().div_ceil(self.block) as u64
    }
}

impl Checkpoint for DedupReader {
    type Snapshot = u64;
    fn checkpoint(&self) -> u64 {
        self.next
    }
    fn restore(&mut self, s: &u64) {
        self.next = *s;
    }
}

impl ThreadProgram for DedupReader {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        let start = self.next as usize * self.block;
        if start >= self.input.len() {
            return Step::exit_unit();
        }
        let end = (start + self.block).min(self.input.len());
        let seq = self.next;
        self.next += 1;
        self.out.push((seq, self.input[start..end].to_vec()))
    }
}

/// Stage 2: content-defined chunking of each block; emits sub-chunks with
/// composite sequence numbers preserving global order.
pub struct DedupChunker {
    input: ChannelHandle<Chunk>,
    out: ChannelHandle<Chunk>,
    blocks: u64,
    taken: u64,
    holding: bool,
    /// Sub-chunks of the current block still to push.
    backlog: Vec<(u64, Vec<u8>)>,
    /// Total sub-chunks emitted (shared with downstream quota logic).
    emitted: u64,
}

impl DedupChunker {
    /// Creates the chunker; it forwards `blocks` blocks.
    pub fn new(input: ChannelHandle<Chunk>, out: ChannelHandle<Chunk>, blocks: u64) -> Self {
        DedupChunker {
            input,
            out,
            blocks,
            taken: 0,
            holding: false,
            backlog: Vec::new(),
            emitted: 0,
        }
    }
}

impl Checkpoint for DedupChunker {
    type Snapshot = (u64, bool, Vec<(u64, Vec<u8>)>, u64);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.taken, self.holding, self.backlog.clone(), self.emitted)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.taken = s.0;
        self.holding = s.1;
        self.backlog = s.2.clone();
        self.emitted = s.3;
    }
}

impl ThreadProgram for DedupChunker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.holding {
            self.holding = false;
            let (seq, block): Chunk = ctx.popped();
            self.taken += 1;
            let chunker = Chunker {
                avg_size: 512,
                min_size: 64,
                max_size: 4096,
            };
            // Composite sequence: block seq × 2^20 + chunk index keeps
            // global order across blocks.
            for (k, r) in chunker.chunk(&block).into_iter().enumerate() {
                self.backlog
                    .push((seq << 20 | k as u64, block[r].to_vec()));
            }
            self.backlog.reverse(); // pop from the back in order
        }
        if let Some((seq, bytes)) = self.backlog.pop() {
            self.emitted += 1;
            return self.out.push((seq, bytes));
        }
        if self.taken == self.blocks {
            return Step::exit(self.emitted);
        }
        self.holding = true;
        self.input.pop()
    }
}

/// Stage 3: classifies chunks against the shared fingerprint store (the
/// benchmark's critical section) and forwards fresh chunks to compression,
/// duplicates straight to the writer channel.
pub struct DedupClassifier {
    input: ChannelHandle<Chunk>,
    fresh_out: ChannelHandle<Chunk>,
    dup_out: ChannelHandle<OutItem>,
    store: MutexHandle<FingerprintStore>,
    quota: u64,
    done: u64,
    holding: bool,
    /// Chunk popped and awaiting ordered classification under the store
    /// lock.
    current: Option<Chunk>,
}

impl DedupClassifier {
    /// Creates a classifier processing `quota` chunks.
    pub fn new(
        input: ChannelHandle<Chunk>,
        fresh_out: ChannelHandle<Chunk>,
        dup_out: ChannelHandle<OutItem>,
        store: MutexHandle<FingerprintStore>,
        quota: u64,
    ) -> Self {
        DedupClassifier {
            input,
            fresh_out,
            dup_out,
            store,
            quota,
            done: 0,
            holding: false,
            current: None,
        }
    }
}

impl Checkpoint for DedupClassifier {
    type Snapshot = (u64, bool, Option<Chunk>);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.done, self.holding, self.current.clone())
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.done = s.0;
        self.holding = s.1;
        self.current = s.2.clone();
    }
}

impl ThreadProgram for DedupClassifier {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.holding {
            // Just popped: classify under the *ordered* store lock so the
            // unique/duplicate decision sequence is deterministic — this is
            // the benchmark's small, frequent critical section.
            self.holding = false;
            self.current = Some(ctx.popped());
            return self.store.lock();
        }
        if let Some((seq, bytes)) = self.current.take() {
            let outcome = ctx.with_lock(&self.store, |store| store.classify(&bytes));
            ctx.unlock(&self.store);
            self.done += 1;
            return match outcome {
                DedupOutcome::Unique(_) => self.fresh_out.push((seq, bytes)),
                DedupOutcome::Duplicate(fp) => self.dup_out.push(OutItem::Ref(fp)),
            };
        }
        if self.done == self.quota {
            return Step::exit(self.done);
        }
        self.holding = true;
        self.input.pop()
    }
}

/// Stage 4: compresses fresh chunks.
pub struct DedupCompressor {
    input: ChannelHandle<Chunk>,
    out: ChannelHandle<OutItem>,
    quota: u64,
    done: u64,
    holding: bool,
}

impl DedupCompressor {
    /// Creates a compressor processing `quota` fresh chunks.
    pub fn new(input: ChannelHandle<Chunk>, out: ChannelHandle<OutItem>, quota: u64) -> Self {
        DedupCompressor {
            input,
            out,
            quota,
            done: 0,
            holding: false,
        }
    }
}

impl Checkpoint for DedupCompressor {
    type Snapshot = (u64, bool);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.done, self.holding)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.done = s.0;
        self.holding = s.1;
    }
}

impl ThreadProgram for DedupCompressor {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.holding {
            self.holding = false;
            let (seq, bytes): Chunk = ctx.popped();
            self.done += 1;
            return self.out.push(OutItem::Fresh(seq, compress_block(&bytes)));
        }
        if self.done == self.quota {
            return Step::exit(self.done);
        }
        self.holding = true;
        self.input.pop()
    }
}

/// Stage 5: the sequential writer — counts and records output items (the
/// benchmark's scaling bottleneck), appending a framed record per item.
pub struct DedupWriter {
    input: ChannelHandle<OutItem>,
    file: FileHandle,
    total: u64,
    taken: u64,
    fresh: u64,
    holding: bool,
}

impl DedupWriter {
    /// Creates the writer expecting `total` items.
    pub fn new(input: ChannelHandle<OutItem>, file: FileHandle, total: u64) -> Self {
        DedupWriter {
            input,
            file,
            total,
            taken: 0,
            fresh: 0,
            holding: false,
        }
    }
}

impl Checkpoint for DedupWriter {
    type Snapshot = (u64, u64, bool);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.taken, self.fresh, self.holding)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.taken = s.0;
        self.fresh = s.1;
        self.holding = s.2;
    }
}

impl ThreadProgram for DedupWriter {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.holding {
            self.holding = false;
            let item: OutItem = ctx.popped();
            self.taken += 1;
            match item {
                OutItem::Fresh(_, bytes) => {
                    self.fresh += 1;
                    ctx.write_file(self.file, &(bytes.len() as u32).to_le_bytes());
                    ctx.write_file(self.file, &bytes);
                }
                OutItem::Ref(fp) => {
                    ctx.write_file(self.file, &u32::MAX.to_le_bytes());
                    ctx.write_file(self.file, &fp.to_le_bytes());
                }
            }
        }
        if self.taken == self.total {
            return Step::exit(self.fresh);
        }
        self.holding = true;
        self.input.pop()
    }
}

/// Builds the full five-stage Dedup pipeline. The classifier quota equals
/// the chunker's emissions, which depends on content; to keep quotas static
/// the chunker's output count is precomputed here.
///
/// Returns `(file, writer thread, total chunk count, fresh chunk count)`.
pub fn build_dedup_pipeline(
    b: &mut gprs_runtime::GprsBuilder,
    input: Vec<u8>,
    block: usize,
    classifiers: u64,
    compressors: u64,
) -> (FileHandle, gprs_core::ids::ThreadId, u64, u64) {
    // Precompute chunk counts and freshness (deterministic) so every
    // stage's quota is static, as in the trace model.
    let chunker = Chunker {
        avg_size: 512,
        min_size: 64,
        max_size: 4096,
    };
    let mut store = FingerprintStore::new();
    let mut total = 0u64;
    let mut fresh = 0u64;
    for blk in input.chunks(block.max(1)) {
        for r in chunker.chunk(blk) {
            total += 1;
            if matches!(store.classify(&blk[r]), DedupOutcome::Unique(_)) {
                fresh += 1;
            }
        }
    }

    let c_blocks = b.channel::<Chunk>();
    let c_chunks = b.channel::<Chunk>();
    let c_fresh = b.channel::<Chunk>();
    let c_out = b.channel::<OutItem>();
    let file = b.file("dedup.out");
    let shared_store = b.mutex(FingerprintStore::new());

    let reader = DedupReader::new(input, block, c_blocks);
    let blocks = reader.blocks();
    b.thread(reader, GroupId::new(0), 2);
    b.thread(DedupChunker::new(c_blocks, c_chunks, blocks), GroupId::new(1), 2);
    let per = total / classifiers.max(1);
    let extra = total % classifiers.max(1);
    for c in 0..classifiers.max(1) {
        b.thread(
            DedupClassifier::new(
                c_chunks,
                c_fresh,
                c_out,
                shared_store,
                per + u64::from(c < extra),
            ),
            GroupId::new(2),
            2,
        );
    }
    let perf = fresh / compressors.max(1);
    let extraf = fresh % compressors.max(1);
    for c in 0..compressors.max(1) {
        b.thread(
            DedupCompressor::new(c_fresh, c_out, perf + u64::from(c < extraf)),
            GroupId::new(3),
            2,
        );
    }
    let writer = b.thread(DedupWriter::new(c_out, file, total), GroupId::new(4), 1);
    (file, writer, total, fresh)
}

/// The trace-level model of [`build_dedup_pipeline`] with the builder's
/// registration order (`CH0` blocks, `CH1` chunks, `CH2` fresh, `CH3` out;
/// `L0` the fingerprint store) and the same static quotas (`blocks` input
/// blocks, `total` chunks, `fresh` unique chunks). Segment counts are
/// approximate — the interference analysis and the sharded runtime's
/// resource fences consume the *resource sets*, which are exact: the store
/// lock confines the classifiers to one domain, and the shared `CH3`
/// producer end coalesces classifiers and compressors into a single
/// execution domain, leaving a four-domain read → chunk → classify+compress
/// → write pipeline.
pub fn dedup_model(
    blocks: u64,
    total: u64,
    fresh: u64,
    classifiers: u64,
    compressors: u64,
) -> gprs_core::workload::Workload {
    use gprs_core::ids::{ChannelId, LockId, ThreadId};
    use gprs_core::workload::{Segment, SimOp, ThreadSpec, Workload};
    let c_blocks = ChannelId::new(0);
    let c_chunks = ChannelId::new(1);
    let c_fresh = ChannelId::new(2);
    let c_out = ChannelId::new(3);
    let store = LockId::new(0);
    let classifiers = classifiers.max(1);
    let compressors = compressors.max(1);
    let mut threads = Vec::new();
    threads.push(ThreadSpec::new(
        ThreadId::new(0),
        GroupId::new(0),
        2,
        (0..blocks)
            .map(|_| Segment::new(150, SimOp::Push { chan: c_blocks }))
            .collect(),
    ));
    let mut chunker = Vec::with_capacity((blocks + total) as usize);
    chunker.extend((0..blocks).map(|_| Segment::new(300, SimOp::Pop { chan: c_blocks })));
    chunker.extend((0..total).map(|_| Segment::new(50, SimOp::Push { chan: c_chunks })));
    threads.push(ThreadSpec::new(ThreadId::new(1), GroupId::new(1), 2, chunker));
    let per = total / classifiers;
    let extra = total % classifiers;
    for c in 0..classifiers {
        let quota = per + u64::from(c < extra);
        let mut segs = Vec::with_capacity(3 * quota as usize);
        for k in 0..quota {
            segs.push(Segment::new(80, SimOp::Pop { chan: c_chunks }));
            segs.push(Segment::new(
                20,
                SimOp::Lock {
                    lock: store,
                    cs_work: 120,
                },
            ));
            // Unique chunks go to the compressors, duplicates straight to
            // the writer; the exact split is content-dependent, so the
            // model alternates to cover both producer ends.
            let chan = if k % 2 == 0 { c_fresh } else { c_out };
            segs.push(Segment::new(40, SimOp::Push { chan }));
        }
        threads.push(ThreadSpec::new(
            ThreadId::new(2 + c as u32),
            GroupId::new(2),
            2,
            segs,
        ));
    }
    let perf = fresh / compressors;
    let extraf = fresh % compressors;
    for c in 0..compressors {
        let quota = perf + u64::from(c < extraf);
        let mut segs = Vec::with_capacity(2 * quota as usize);
        for _ in 0..quota {
            segs.push(Segment::new(60, SimOp::Pop { chan: c_fresh }));
            segs.push(Segment::new(700, SimOp::Push { chan: c_out }));
        }
        threads.push(ThreadSpec::new(
            ThreadId::new(2 + (classifiers + c) as u32),
            GroupId::new(3),
            2,
            segs,
        ));
    }
    threads.push(ThreadSpec::new(
        ThreadId::new(2 + (classifiers + compressors) as u32),
        GroupId::new(4),
        1,
        (0..total)
            .map(|_| Segment::new(120, SimOp::Pop { chan: c_out }))
            .collect(),
    ));
    Workload::new("dedup", threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::dedup::generate_dedup_corpus;
    use gprs_runtime::GprsBuilder;
    use std::time::Duration;

    #[test]
    fn dedup_pipeline_counts_match_serial_reference() {
        let input = generate_dedup_corpus(60_000, 50, 11);
        let mut b = GprsBuilder::new().workers(3);
        let (_, writer, total, fresh) = build_dedup_pipeline(&mut b, input, 8_192, 2, 2);
        assert!(fresh < total, "the corpus has duplicates");
        let report = b.build().run().unwrap();
        assert_eq!(report.output::<u64>(writer), fresh);
    }

    /// Dedup's unique/duplicate *sets* are order-independent (set
    /// semantics), so the fresh count and total frame count are invariant
    /// under any recovery schedule — the precise-state guarantee. Which
    /// *instance* of a duplicate pair is stored first depends on the
    /// classification interleaving and may legitimately differ between a
    /// fault-free run and a recovered one (both are correct executions).
    #[test]
    fn dedup_pipeline_invariants_hold_under_exceptions() {
        let input = generate_dedup_corpus(40_000, 40, 3);
        let run = |inject: bool| {
            let mut b = GprsBuilder::new().workers(2);
            let (file, writer, total, fresh) =
                build_dedup_pipeline(&mut b, input.clone(), 8_192, 2, 1);
            let rt = b.build();
            let ctl = rt.controller();
            let h = inject.then(|| {
                std::thread::spawn(move || {
                    while !ctl.is_finished() {
                        ctl.inject_on_busy(
                            gprs_core::exception::ExceptionKind::ApproximationError,
                        );
                        std::thread::sleep(Duration::from_micros(500));
                    }
                })
            });
            let report = rt.run().unwrap();
            if let Some(h) = h {
                h.join().unwrap();
            }
            assert_eq!(report.output::<u64>(writer), fresh, "fresh count invariant");
            // Count the framed records in the output: one per chunk.
            let bytes = report.file_contents(file.index());
            let mut frames = 0u64;
            let mut i = 0;
            while i < bytes.len() {
                let len = u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
                i += 4 + if len == u32::MAX { 8 } else { len as usize };
                frames += 1;
            }
            assert_eq!(frames, total, "one frame per chunk");
            report.stats
        };
        let _ = run(false);
        let stats = run(true);
        assert!(stats.exceptions > 0, "the storm must land: {stats:?}");
    }
}
