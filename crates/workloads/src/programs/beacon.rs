//! Beacon workers: independent compute threads that publish per-round
//! progress into private write-only "beacon" cells with plain stores.
//!
//! Nothing ever reads a beacon cell — not another thread, not the writer
//! itself — so the static restartability analysis proves every beacon a
//! *dead cell*: a squash may leave it stale without any execution
//! observing the difference, and deterministic re-execution overwrites it.
//! The workload therefore exists to exercise the prove-then-elide path
//! end to end: built with [`gprs_runtime::GprsBuilder::elide`] and the
//! matching [`beacon_model`], the runtime skips the `PlainStore` WAL undo
//! record for every beacon write (`wal_records_elided` counts them) while
//! the retired order stays bit-identical to an elision-off run.
//!
//! Each worker is fully self-contained (private beacon, private boundary
//! ticket, its own scheduling group), so the interference analysis also
//! partitions the model into one order domain per worker — the workload
//! doubles as the multi-domain `ShardPlan` exemplar.

use gprs_core::history::Checkpoint;
use gprs_core::ids::{AtomicId, GroupId, ThreadId};
use gprs_core::workload::{PlainKind, Segment, SimOp, ThreadSpec, Workload};
use gprs_runtime::ctx::StepCtx;
use gprs_runtime::handles::AtomicHandle;
use gprs_runtime::program::{Step, ThreadProgram};
use gprs_runtime::GprsBuilder;

/// Cycles of modeled computation per beacon round (trace-level only; the
/// real worker's computation is the checksum fold below).
const ROUND_WORK: u64 = 400;

/// One beacon worker: folds a seeded checksum each round, stores its
/// round count into the write-only beacon cell, and ends the sub-thread
/// on its private ticket atomic.
pub struct BeaconWorker {
    beacon: AtomicHandle,
    ticket: AtomicHandle,
    seed: u64,
    rounds: u32,
    done: u32,
    sum: u64,
}

impl BeaconWorker {
    /// Creates a worker over its private `beacon` and `ticket` cells.
    pub fn new(beacon: AtomicHandle, ticket: AtomicHandle, seed: u64, rounds: u32) -> Self {
        BeaconWorker {
            beacon,
            ticket,
            seed,
            rounds: rounds.max(1),
            done: 0,
            sum: 0,
        }
    }
}

impl Checkpoint for BeaconWorker {
    type Snapshot = (u32, u64);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.done, self.sum)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.done = s.0;
        self.sum = s.1;
    }
}

impl ThreadProgram for BeaconWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.done == self.rounds {
            return Step::exit(self.sum);
        }
        // The round's computation: one FNV-1a fold over the seeded stream.
        self.sum = (self.sum ^ self.seed.wrapping_add(u64::from(self.done)))
            .wrapping_mul(0x100000001b3);
        self.done += 1;
        // The dead store: progress published for an observer that never
        // materializes. With elision proven, this store's WAL undo record
        // is skipped.
        ctx.plain_store(&self.beacon, u64::from(self.done));
        self.ticket.fetch_add(1)
    }
}

/// Wires one beacon worker per entry of `rounds` onto a GPRS builder
/// (worker `w` runs `rounds[w]` rounds). Per worker, the beacon cell is
/// registered first and the boundary ticket second, so worker `w` owns
/// `AtomicId(2w)` (beacon) and `AtomicId(2w + 1)` (ticket) — the id
/// mapping [`beacon_model_rounds`] mirrors. Returns the beacon handles.
pub fn build_beacon_rounds(b: &mut GprsBuilder, rounds: &[u32]) -> Vec<AtomicHandle> {
    let mut beacons = Vec::with_capacity(rounds.len());
    for (w, &r) in rounds.iter().enumerate() {
        let beacon = b.atomic(0);
        let ticket = b.atomic(0);
        b.thread(
            BeaconWorker::new(beacon, ticket, 0x9E3779B97F4A7C15 ^ w as u64, r),
            GroupId::new(w as u32),
            1,
        );
        beacons.push(beacon);
    }
    beacons
}

/// [`build_beacon_rounds`] with `workers` uniform workers of `rounds`
/// rounds each — the committed campaign/perfsuite shape.
pub fn build_beacon(b: &mut GprsBuilder, workers: usize, rounds: u32) -> Vec<AtomicHandle> {
    build_beacon_rounds(b, &vec![rounds.max(1); workers.max(1)])
}

/// The trace-level model of [`build_beacon_rounds`] with the same per-
/// worker round counts: per round one segment of [`ROUND_WORK`] cycles
/// closed by the private ticket fetch-add, with a plain write to the
/// private beacon cell in its body. Atomic ids follow the builder's
/// registration order (beacon `2w`, ticket `2w + 1`).
pub fn beacon_model_rounds(rounds: &[u32]) -> Workload {
    let threads = rounds
        .iter()
        .enumerate()
        .map(|(w, &r)| {
            let beacon = AtomicId::new(2 * w as u64);
            let ticket = AtomicId::new(2 * w as u64 + 1);
            let segs = (0..r.max(1))
                .map(|_| {
                    Segment::new(ROUND_WORK, SimOp::Atomic { atomic: ticket })
                        .with_plain(beacon, PlainKind::Write)
                })
                .collect();
            ThreadSpec::new(ThreadId::new(w as u32), GroupId::new(w as u32), 1, segs)
        })
        .collect();
    Workload::new("beacon", threads)
}

/// The trace-level model of [`build_beacon`] (uniform round counts).
pub fn beacon_model(workers: usize, rounds: u32) -> Workload {
    beacon_model_rounds(&vec![rounds.max(1); workers.max(1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_proves_beacons_dead_and_domains_disjoint() {
        let w = beacon_model(4, 8);
        let rep = gprs_analyze::analyze(&w);
        assert!(rep.race_free(), "beacon model must be race-free");
        assert_eq!(
            rep.restart.dead_cells,
            (0..4).map(|i| AtomicId::new(2 * i)).collect::<Vec<_>>(),
            "every beacon cell is dead"
        );
        assert_eq!(rep.shard_plan.domains.len(), 4, "one domain per worker");
        assert!(rep.shard_plan.edges.is_empty());
    }

    #[test]
    fn runtime_and_model_agree_on_registration_order() {
        let mut b = GprsBuilder::new().workers(2);
        let beacons = build_beacon(&mut b, 3, 4);
        for (w, h) in beacons.iter().enumerate() {
            assert_eq!(h.id(), AtomicId::new(2 * w as u64));
        }
        let report = b
            .model(beacon_model(3, 4))
            .elide(true)
            .build()
            .run()
            .unwrap();
        assert_eq!(
            report.telemetry.counter("wal_records_elided"),
            3 * 4,
            "one elided undo record per beacon store"
        );
    }
}
