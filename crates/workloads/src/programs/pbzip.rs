//! The Pbzip2 pipeline (Figure 6) as restartable thread programs:
//! read -> compress x N -> write over runtime-managed FIFOs, with
//! length-framed recoverable file output.

use crate::kernels::compress::{compress_block, decompress_block};
use gprs_core::history::Checkpoint;
use gprs_core::workload::{Segment, SimOp, ThreadSpec, Workload};
use gprs_runtime::ctx::StepCtx;
use gprs_runtime::handles::{ChannelHandle, FileHandle};
use gprs_runtime::program::{Step, ThreadProgram};
use std::collections::BTreeMap;

/// A sequenced data block traveling through the Pbzip2 pipeline.
pub type SeqBlock = (u64, Vec<u8>);

/// Pbzip2's read stage: slices the input into blocks and pushes them.
pub struct PbzipReader {
    input: Vec<u8>,
    block_size: usize,
    chan: ChannelHandle<SeqBlock>,
    next: u64,
}

impl PbzipReader {
    /// Creates the reader over an owned input buffer.
    pub fn new(input: Vec<u8>, block_size: usize, chan: ChannelHandle<SeqBlock>) -> Self {
        PbzipReader {
            input,
            block_size: block_size.max(1),
            chan,
            next: 0,
        }
    }

    /// Blocks this input will produce.
    pub fn block_count(&self) -> u64 {
        self.input.len().div_ceil(self.block_size) as u64
    }
}

impl Checkpoint for PbzipReader {
    type Snapshot = u64;
    fn checkpoint(&self) -> u64 {
        self.next
    }
    fn restore(&mut self, s: &u64) {
        self.next = *s;
    }
}

impl ThreadProgram for PbzipReader {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        let start = self.next as usize * self.block_size;
        if start >= self.input.len() {
            return Step::exit_unit();
        }
        let end = (start + self.block_size).min(self.input.len());
        let block = self.input[start..end].to_vec();
        let seq = self.next;
        self.next += 1;
        self.chan.push((seq, block))
    }
}

/// Pbzip2's compress stage: alternates pop → compress+push for its quota
/// of blocks.
pub struct PbzipCompressor {
    input: ChannelHandle<SeqBlock>,
    output: ChannelHandle<SeqBlock>,
    quota: u64,
    done: u64,
    /// Whether a pop was issued and its value awaits processing.
    holding: bool,
}

impl PbzipCompressor {
    /// A compressor that will process exactly `quota` blocks.
    pub fn new(
        input: ChannelHandle<SeqBlock>,
        output: ChannelHandle<SeqBlock>,
        quota: u64,
    ) -> Self {
        PbzipCompressor {
            input,
            output,
            quota,
            done: 0,
            holding: false,
        }
    }
}

impl Checkpoint for PbzipCompressor {
    type Snapshot = (u64, bool);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.done, self.holding)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.done = s.0;
        self.holding = s.1;
    }
}

impl ThreadProgram for PbzipCompressor {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.holding {
            let (seq, raw): SeqBlock = ctx.popped();
            let packed = compress_block(&raw);
            self.holding = false;
            self.done += 1;
            return self.output.push((seq, packed));
        }
        if self.done == self.quota {
            return Step::exit(self.done);
        }
        self.holding = true;
        self.input.pop()
    }
}

/// Pbzip2's write stage: pops compressed blocks, reorders by sequence and
/// appends length-framed blocks to a recoverable file in order.
pub struct PbzipWriter {
    input: ChannelHandle<SeqBlock>,
    file: FileHandle,
    total: u64,
    next_seq: u64,
    taken: u64,
    pending: BTreeMap<u64, Vec<u8>>,
    holding: bool,
}

impl PbzipWriter {
    /// A writer expecting `total` blocks.
    pub fn new(input: ChannelHandle<SeqBlock>, file: FileHandle, total: u64) -> Self {
        PbzipWriter {
            input,
            file,
            total,
            next_seq: 0,
            taken: 0,
            pending: BTreeMap::new(),
            holding: false,
        }
    }
}

impl Checkpoint for PbzipWriter {
    type Snapshot = (u64, u64, BTreeMap<u64, Vec<u8>>, bool);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.next_seq, self.taken, self.pending.clone(), self.holding)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.next_seq = s.0;
        self.taken = s.1;
        self.pending = s.2.clone();
        self.holding = s.3;
    }
}

impl ThreadProgram for PbzipWriter {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.holding {
            self.holding = false;
            let (seq, packed): SeqBlock = ctx.popped();
            self.taken += 1;
            self.pending.insert(seq, packed);
            while let Some(block) = self.pending.remove(&self.next_seq) {
                let mut framed = (block.len() as u32).to_le_bytes().to_vec();
                framed.extend_from_slice(&block);
                ctx.write_file(self.file, &framed);
                self.next_seq += 1;
            }
        }
        if self.taken == self.total {
            return Step::exit(self.next_seq);
        }
        self.holding = true;
        self.input.pop()
    }
}

/// Decodes a file written by [`PbzipWriter`] back into the original input.
///
/// # Errors
/// Returns a message on framing or decompression failure.
pub fn decode_pbzip_output(file: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < file.len() {
        let len_bytes: [u8; 4] = file
            .get(i..i + 4)
            .ok_or("truncated frame header")?
            .try_into()
            .map_err(|_| "bad frame header")?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        let body = file.get(i + 4..i + 4 + len).ok_or("truncated frame body")?;
        out.extend(decompress_block(body).map_err(|e| e.to_string())?);
        i += 4 + len;
    }
    Ok(out)
}

/// Wires a complete Pbzip2 pipeline onto a GPRS builder with the paper's
/// thread groups (read = 0, compress = 1, write = 2, weighted 4:4:1).
/// Returns the output file handle and the writer's thread id.
pub fn build_pbzip_pipeline(
    b: &mut gprs_runtime::GprsBuilder,
    input: Vec<u8>,
    block_size: usize,
    compressors: u64,
) -> (FileHandle, gprs_core::ids::ThreadId) {
    use gprs_core::ids::GroupId;
    let raw = b.channel::<SeqBlock>();
    let packed = b.channel::<SeqBlock>();
    let file = b.file("pbzip.out");
    let reader = PbzipReader::new(input, block_size, raw);
    let blocks = reader.block_count();
    b.thread(reader, GroupId::new(0), 4);
    let per = blocks / compressors.max(1);
    let extra = blocks % compressors.max(1);
    for c in 0..compressors.max(1) {
        let quota = per + u64::from(c < extra);
        b.thread(PbzipCompressor::new(raw, packed, quota), GroupId::new(1), 4);
    }
    let writer = b.thread(PbzipWriter::new(packed, file, blocks), GroupId::new(2), 1);
    (file, writer)
}

/// The trace-level model of [`build_pbzip_pipeline`] with the same
/// channel/thread registration order (raw = `CH0`, packed = `CH1`; thread 0
/// the reader, then the compressors, then the writer) and the same
/// per-compressor block quotas. The model's resource sets drive the
/// interference analysis and the sharded runtime's order domains: the
/// reader, the compressor pool and the writer partition into three
/// execution domains joined by the two SPSC channel edges.
pub fn pbzip_model(blocks: u64, compressors: u64) -> Workload {
    use gprs_core::ids::{ChannelId, GroupId, ThreadId};
    let raw = ChannelId::new(0);
    let packed = ChannelId::new(1);
    let compressors = compressors.max(1);
    let mut threads = Vec::new();
    threads.push(ThreadSpec::new(
        ThreadId::new(0),
        GroupId::new(0),
        4,
        (0..blocks)
            .map(|_| Segment::new(150, SimOp::Push { chan: raw }))
            .collect(),
    ));
    let per = blocks / compressors;
    let extra = blocks % compressors;
    for c in 0..compressors {
        let quota = per + u64::from(c < extra);
        let mut segs = Vec::with_capacity(2 * quota as usize);
        for _ in 0..quota {
            segs.push(Segment::new(100, SimOp::Pop { chan: raw }));
            segs.push(Segment::new(900, SimOp::Push { chan: packed }));
        }
        threads.push(ThreadSpec::new(
            ThreadId::new(1 + c as u32),
            GroupId::new(1),
            4,
            segs,
        ));
    }
    threads.push(ThreadSpec::new(
        ThreadId::new(1 + compressors as u32),
        GroupId::new(2),
        1,
        (0..blocks)
            .map(|_| Segment::new(200, SimOp::Pop { chan: packed }))
            .collect(),
    ));
    Workload::new("pbzip", threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::compress::generate_corpus;
    use crate::kernels::text::{count_words, generate_text};
    use crate::programs::{HistogramWorker, WordCountWorker};
    use gprs_core::ids::GroupId;
    use gprs_runtime::GprsBuilder;

    #[test]
    fn pbzip_pipeline_round_trips() {
        let input = generate_corpus(40_000, 12);
        let mut b = GprsBuilder::new().workers(3);
        let (file, _) = build_pbzip_pipeline(&mut b, input.clone(), 2048, 3);
        let report = b.build().run().unwrap();
        let decoded = decode_pbzip_output(report.file_contents(file.index())).unwrap();
        assert_eq!(decoded, input);
        assert!(report.file_contents(file.index()).len() < input.len());
    }

    #[test]
    fn pbzip_pipeline_survives_exceptions() {
        let input = generate_corpus(30_000, 5);
        let mut b = GprsBuilder::new().workers(2);
        let (file, _) = build_pbzip_pipeline(&mut b, input.clone(), 1024, 2);
        let gprs = b.build();
        let ctl = gprs.controller();
        let h = std::thread::spawn(move || {
            while !ctl.is_finished() {
                ctl.inject_on_busy(gprs_core::exception::ExceptionKind::SoftFault);
                std::thread::sleep(std::time::Duration::from_micros(400));
            }
        });
        let report = gprs.run().unwrap();
        h.join().unwrap();
        let decoded = decode_pbzip_output(report.file_contents(file.index())).unwrap();
        assert_eq!(decoded, input, "stats: {:?}", report.stats);
    }

    #[test]
    fn histogram_workers_complete_and_report_sizes() {
        let data = generate_corpus(8_000, 3);
        let mut b = GprsBuilder::new().workers(3);
        let acc = b.mutex(vec![0u64; 256]);
        let mut tids = Vec::new();
        for chunk in data.chunks(2_000) {
            tids.push(b.thread(
                HistogramWorker::new(chunk.to_vec(), acc),
                GroupId::new(0),
                1,
            ));
        }
        let report = b.build().run().unwrap();
        let total: u64 = tids.iter().map(|&t| report.output::<u64>(t)).sum();
        assert_eq!(total, data.len() as u64);
        assert_eq!(report.stats.locks_acquired as usize, tids.len());
    }

    #[test]
    fn wordcount_matches_serial_reference() {
        let text = generate_text(2_000, 8);
        let cut = text[..text.len() / 2].rfind(' ').unwrap();
        let shards = [text[..cut].to_string(), text[cut..].to_string()];
        let mut b = GprsBuilder::new().workers(2);
        let acc = b.mutex(BTreeMap::<String, u64>::new());
        let mut expected_total = 0u64;
        let mut tids = Vec::new();
        for s in shards {
            expected_total += count_words(&s).values().sum::<u64>();
            tids.push(b.thread(WordCountWorker::new(s, acc), GroupId::new(0), 1));
        }
        let report = b.build().run().unwrap();
        let sum: u64 = tids.iter().map(|&t| report.output::<u64>(t)).sum();
        assert_eq!(sum, expected_total);
    }

    #[test]
    fn decode_rejects_malformed_files() {
        assert!(decode_pbzip_output(&[1, 2, 3]).is_err());
        assert!(decode_pbzip_output(&[10, 0, 0, 0, 1]).is_err());
        assert_eq!(decode_pbzip_output(&[]).unwrap(), Vec::<u8>::new());
    }
}
