//! [`gprs_runtime::program::ThreadProgram`] wrappers that run the
//! [`crate::kernels`] on the real GPRS runtime (and unmodified on the CPR
//! baseline executor) — the runtime-level counterparts of the paper's
//! Pthreads benchmarks, used by the repository examples and integration
//! tests.

mod beacon;
mod dedup_pipe;
mod mapreduce;
mod pbzip;
mod science;

pub use beacon::*;
pub use dedup_pipe::*;
pub use mapreduce::*;
pub use pbzip::*;
pub use science::*;
