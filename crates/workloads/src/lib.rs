//! The ten benchmark programs of the GPRS evaluation (`§4`, Table 2),
//! provided in two forms:
//!
//! * [`traces`] — trace-level generators for the `gprs-sim` virtual-time
//!   simulator, calibrated to Table 2's characteristics; these regenerate
//!   the paper's figures.
//! * [`kernels`] — real, tested algorithm implementations (compressor,
//!   option pricer, N-body, chunking dedup, packet cache, annealer, …).
//! * [`programs`] — [`gprs_runtime::program::ThreadProgram`] wrappers that
//!   run the kernels on the real GPRS runtime (and the CPR baseline),
//!   used by the repository examples.

#![warn(missing_docs)]

pub mod kernels;
pub mod programs;
pub mod traces;
