//! Block compressor for the Pbzip2 reproduction: LZSS-style back-references
//! with a greedy hash-chain match finder, plus run-length fallback.
//!
//! Pbzip2's role in the evaluation is "CPU-heavy, block-local compression
//! with uneven per-block cost"; any self-contained compressor with those
//! properties preserves the behaviour. Blocks compress independently, so
//! the pipeline can fan out exactly as the paper's Figure 6 describes.

/// Token stream format: `0x00 len byte` literal runs, `0x01 len d_hi d_lo`
/// back-references (length 4..=130, distance 1..=65535).
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 130;
const WINDOW: usize = 65_535;

/// Compresses one block. Deterministic and allocation-friendly.
///
/// # Examples
/// ```
/// use gprs_workloads::kernels::compress::{compress_block, decompress_block};
/// let data = b"abcabcabcabcabcabc-the-end".to_vec();
/// let packed = compress_block(&data);
/// assert!(packed.len() < data.len());
/// assert_eq!(decompress_block(&packed).unwrap(), data);
/// ```
pub fn compress_block(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Hash chains: 16-bit rolling hash of 4 bytes -> most recent position.
    let mut head = vec![usize::MAX; 1 << 16];
    let mut prev = vec![usize::MAX; input.len()];
    let hash = |w: &[u8]| -> usize {
        ((w[0] as usize) << 8 ^ (w[1] as usize) << 5 ^ (w[2] as usize) << 2 ^ w[3] as usize)
            & 0xFFFF
    };

    let mut i = 0;
    let mut lit_start = 0;
    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut s = from;
        while s < to {
            let n = (to - s).min(255);
            out.push(0x00);
            out.push(n as u8);
            out.extend_from_slice(&input[s..s + n]);
            s += n;
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash(&input[i..i + 4]);
        // Find the best match along the chain (bounded probes).
        let mut best_len = 0;
        let mut best_dist = 0;
        let mut cand = head[h];
        let mut probes = 0;
        while cand != usize::MAX && probes < 16 {
            if i - cand <= WINDOW {
                let max = (input.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                }
            } else {
                break;
            }
            cand = prev[cand];
            probes += 1;
        }

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, lit_start, i, input);
            out.push(0x01);
            out.push((best_len - MIN_MATCH) as u8);
            out.push((best_dist >> 8) as u8);
            out.push((best_dist & 0xFF) as u8);
            // Insert the skipped positions into the chains.
            let end = (i + best_len).min(input.len().saturating_sub(MIN_MATCH - 1));
            let mut j = i;
            while j < end {
                let hj = hash(&input[j..j + 4]);
                prev[j] = head[hj];
                head[hj] = j;
                j += 1;
            }
            i += best_len;
            lit_start = i;
        } else {
            prev[i] = head[h];
            head[h] = i;
            i += 1;
        }
    }
    flush_literals(&mut out, lit_start, input.len(), input);
    out
}

/// Errors from [`decompress_block`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// Token stream ended mid-token.
    Truncated,
    /// A back-reference pointed before the output start.
    BadDistance,
    /// Unknown token tag.
    BadTag(u8),
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => f.write_str("token stream truncated"),
            DecompressError::BadDistance => f.write_str("back-reference before block start"),
            DecompressError::BadTag(t) => write!(f, "unknown token tag {t:#x}"),
        }
    }
}

impl std::error::Error for DecompressError {}

/// Decompresses one block produced by [`compress_block`].
///
/// # Errors
/// Returns a [`DecompressError`] on malformed input.
pub fn decompress_block(packed: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(packed.len() * 2);
    let mut i = 0;
    while i < packed.len() {
        match packed[i] {
            0x00 => {
                let n = *packed.get(i + 1).ok_or(DecompressError::Truncated)? as usize;
                let lits = packed
                    .get(i + 2..i + 2 + n)
                    .ok_or(DecompressError::Truncated)?;
                out.extend_from_slice(lits);
                i += 2 + n;
            }
            0x01 => {
                let rest = packed.get(i + 1..i + 4).ok_or(DecompressError::Truncated)?;
                let len = rest[0] as usize + MIN_MATCH;
                let dist = ((rest[1] as usize) << 8) | rest[2] as usize;
                if dist == 0 || dist > out.len() {
                    return Err(DecompressError::BadDistance);
                }
                let from = out.len() - dist;
                for k in 0..len {
                    let b = out[from + k];
                    out.push(b);
                }
                i += 4;
            }
            t => return Err(DecompressError::BadTag(t)),
        }
    }
    Ok(out)
}

/// Generates a deterministic, compressible test corpus with block-to-block
/// variation (so per-block compression cost is uneven, as Pbzip2's is).
pub fn generate_corpus(bytes: usize, seed: u64) -> Vec<u8> {
    let words: &[&[u8]] = &[
        b"exception", b"restart", b"precise", b"subthread", b"deterministic", b"order",
        b"rollback", b"checkpoint", b"barrier", b"pipeline", b" ", b" ", b"\n",
    ];
    let mut out = Vec::with_capacity(bytes);
    let mut state = seed | 1;
    while out.len() < bytes {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let pick = (state >> 33) as usize % words.len();
        out.extend_from_slice(words[pick]);
        // Occasionally inject incompressible noise.
        if state.is_multiple_of(23) {
            out.push((state >> 17) as u8);
        }
    }
    out.truncate(bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_corpus() {
        for seed in [1u64, 7, 42] {
            let data = generate_corpus(20_000, seed);
            let packed = compress_block(&data);
            assert!(packed.len() < data.len(), "should compress text");
            assert_eq!(decompress_block(&packed).unwrap(), data);
        }
    }

    #[test]
    fn round_trip_edge_cases() {
        for data in [
            Vec::new(),
            vec![0u8; 1],
            vec![7u8; 1000],              // long run
            (0..=255u8).collect::<Vec<_>>(), // incompressible ramp
            b"abcd".to_vec(),
        ] {
            let packed = compress_block(&data);
            assert_eq!(decompress_block(&packed).unwrap(), data);
        }
    }

    #[test]
    fn repetitive_input_compresses_hard() {
        let data = vec![b'x'; 10_000];
        let packed = compress_block(&data);
        assert!(packed.len() < data.len() / 20);
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert_eq!(decompress_block(&[0x01]), Err(DecompressError::Truncated));
        assert_eq!(
            decompress_block(&[0x01, 0, 0, 5]),
            Err(DecompressError::BadDistance)
        );
        assert_eq!(decompress_block(&[0x7F]), Err(DecompressError::BadTag(0x7F)));
        assert_eq!(decompress_block(&[0x00, 5, 1]), Err(DecompressError::Truncated));
    }

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(generate_corpus(5000, 9), generate_corpus(5000, 9));
        assert_ne!(generate_corpus(5000, 9), generate_corpus(5000, 10));
    }
}
