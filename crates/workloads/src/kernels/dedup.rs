//! Deduplicating compression kernel (the Dedup benchmark): content-defined
//! chunking with a rolling hash, FNV-1a fingerprinting, and duplicate
//! elimination — the five-stage pipeline's per-stage computations.

use std::collections::BTreeSet;

/// Rolling-hash chunker: emits chunk boundaries where the rolling hash of a
/// 16-byte window hits a mask — content-defined, so duplicate regions align.
#[derive(Debug, Clone, Copy)]
pub struct Chunker {
    /// Average target chunk size (power of two).
    pub avg_size: usize,
    /// Hard bounds.
    pub min_size: usize,
    /// Hard bounds.
    pub max_size: usize,
}

impl Default for Chunker {
    fn default() -> Self {
        Chunker {
            avg_size: 512,
            min_size: 64,
            max_size: 4096,
        }
    }
}

impl Chunker {
    /// Splits `data` into content-defined chunks (returned as ranges).
    ///
    /// # Examples
    /// ```
    /// use gprs_workloads::kernels::dedup::Chunker;
    /// let data = vec![7u8; 10_000];
    /// let chunks = Chunker::default().chunk(&data);
    /// let total: usize = chunks.iter().map(|r| r.len()).sum();
    /// assert_eq!(total, data.len());
    /// ```
    pub fn chunk(&self, data: &[u8]) -> Vec<std::ops::Range<usize>> {
        const W: usize = 16; // sliding-window width
        const B: u64 = 1_000_003;
        // B^W for removing the byte leaving the window, so the hash depends
        // only on the last W bytes — that is what makes the boundaries
        // *content-defined* (shift-invariant).
        let mut bw: u64 = 1;
        for _ in 0..W {
            bw = bw.wrapping_mul(B);
        }
        let mask = (self.avg_size as u64).next_power_of_two() - 1;
        let mut out = Vec::new();
        let mut start = 0;
        let mut hash: u64 = 0;
        for (i, &b) in data.iter().enumerate() {
            hash = hash.wrapping_mul(B).wrapping_add(b as u64 + 1);
            if i >= W {
                hash = hash.wrapping_sub((data[i - W] as u64 + 1).wrapping_mul(bw));
            }
            let len = i + 1 - start;
            let boundary = (hash & mask) == mask && len >= self.min_size;
            if boundary || len >= self.max_size {
                out.push(start..i + 1);
                start = i + 1;
            }
        }
        if start < data.len() {
            out.push(start..data.len());
        }
        out
    }
}

/// 64-bit FNV-1a fingerprint — the dedup stage's chunk identity.
pub fn fingerprint(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Outcome of pushing a chunk through the dedup stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupOutcome {
    /// First sighting: the chunk must be compressed and stored.
    Unique(u64),
    /// Already stored: only a reference is emitted.
    Duplicate(u64),
}

/// The shared fingerprint store (the structure Dedup's critical sections
/// protect).
#[derive(Debug, Default, Clone)]
pub struct FingerprintStore {
    seen: BTreeSet<u64>,
}

impl FingerprintStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies a chunk, recording its fingerprint.
    pub fn classify(&mut self, chunk: &[u8]) -> DedupOutcome {
        let fp = fingerprint(chunk);
        if self.seen.insert(fp) {
            DedupOutcome::Unique(fp)
        } else {
            DedupOutcome::Duplicate(fp)
        }
    }

    /// Distinct chunks seen.
    pub fn unique_count(&self) -> usize {
        self.seen.len()
    }
}

/// End-to-end dedup of a buffer: returns (unique chunks, total chunks,
/// deduplicated bytes).
pub fn dedup_stats(data: &[u8], chunker: &Chunker) -> (usize, usize, usize) {
    let mut store = FingerprintStore::new();
    let mut unique_bytes = 0;
    let chunks = chunker.chunk(data);
    let total = chunks.len();
    for r in &chunks {
        if matches!(store.classify(&data[r.clone()]), DedupOutcome::Unique(_)) {
            unique_bytes += r.len();
        }
    }
    (store.unique_count(), total, unique_bytes)
}

/// Generates data with a controlled duplicate fraction: `dup_percent` of
/// the output repeats one shared template region.
pub fn generate_dedup_corpus(bytes: usize, dup_percent: u32, seed: u64) -> Vec<u8> {
    let template: Vec<u8> = (0..4096u64)
        .map(|i| (i.wrapping_mul(seed | 1) >> 13) as u8)
        .collect();
    let mut out = Vec::with_capacity(bytes);
    let mut state = seed | 1;
    while out.len() < bytes {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        if (state >> 33) % 100 < dup_percent as u64 {
            out.extend_from_slice(&template);
        } else {
            for k in 0..512u64 {
                out.push((state.wrapping_mul(k | 1) >> 21) as u8);
            }
        }
    }
    out.truncate(bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_input_exactly() {
        let data = generate_dedup_corpus(50_000, 30, 3);
        let chunker = Chunker::default();
        let chunks = chunker.chunk(&data);
        let mut pos = 0;
        for r in &chunks {
            assert_eq!(r.start, pos, "chunks must be contiguous");
            assert!(r.len() <= chunker.max_size);
            pos = r.end;
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn chunking_is_content_defined() {
        // Shifting the data by a prefix re-aligns chunk boundaries.
        let body = generate_dedup_corpus(30_000, 0, 9);
        let mut shifted = vec![0xAB; 777];
        shifted.extend_from_slice(&body);
        let c = Chunker::default();
        let a: BTreeSet<u64> = c.chunk(&body).iter().map(|r| fingerprint(&body[r.clone()])).collect();
        let b: BTreeSet<u64> = c
            .chunk(&shifted)
            .iter()
            .map(|r| fingerprint(&shifted[r.clone()]))
            .collect();
        let common = a.intersection(&b).count();
        assert!(
            common * 10 > a.len() * 8,
            "most chunks must survive a shift: {common}/{}",
            a.len()
        );
    }

    #[test]
    fn duplicates_are_detected() {
        let data = generate_dedup_corpus(100_000, 60, 4);
        let (unique, total, unique_bytes) = dedup_stats(&data, &Chunker::default());
        assert!(unique < total, "duplicate template chunks must dedup");
        assert!(unique_bytes < data.len());
        let none = generate_dedup_corpus(100_000, 0, 4);
        let (u2, t2, _) = dedup_stats(&none, &Chunker::default());
        assert!(u2 as f64 > t2 as f64 * 0.95, "random data has few duplicates");
    }

    #[test]
    fn fingerprints_differ_on_content() {
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
    }

    #[test]
    fn store_classifies_in_order() {
        let mut s = FingerprintStore::new();
        assert!(matches!(s.classify(b"x"), DedupOutcome::Unique(_)));
        assert!(matches!(s.classify(b"x"), DedupOutcome::Duplicate(_)));
        assert_eq!(s.unique_count(), 1);
    }
}
