//! Text/map-reduce kernels: Histogram, WordCount and ReverseIndex — the
//! Phoenix-suite programs of Table 2 (small computations, low-to-medium
//! sync frequency).

use std::collections::BTreeMap;

/// 256-bin byte histogram of a slice — the Histogram benchmark's map side.
pub fn byte_histogram(data: &[u8]) -> [u64; 256] {
    let mut bins = [0u64; 256];
    for &b in data {
        bins[b as usize] += 1;
    }
    bins
}

/// Merges a partial histogram into an accumulator — the reduce side.
pub fn merge_histogram(acc: &mut [u64; 256], part: &[u64; 256]) {
    for (a, p) in acc.iter_mut().zip(part.iter()) {
        *a += p;
    }
}

/// Counts words in a text chunk — WordCount's map side.
///
/// # Examples
/// ```
/// use gprs_workloads::kernels::text::count_words;
/// let c = count_words("the cat and the hat");
/// assert_eq!(c["the"], 2);
/// assert_eq!(c["cat"], 1);
/// ```
pub fn count_words(text: &str) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for w in text.split(|c: char| !c.is_ascii_alphanumeric()) {
        if !w.is_empty() {
            *counts.entry(w.to_ascii_lowercase()).or_insert(0) += 1;
        }
    }
    counts
}

/// Merges word counts — WordCount's reduce side.
pub fn merge_counts(acc: &mut BTreeMap<String, u64>, part: BTreeMap<String, u64>) {
    for (w, n) in part {
        *acc.entry(w).or_insert(0) += n;
    }
}

/// A synthetic "web page": id plus outgoing links — ReverseIndex's input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Document id.
    pub id: u32,
    /// Raw pseudo-HTML body.
    pub body: String,
}

/// Extracts `href="doc:N"` link targets from a document body —
/// ReverseIndex's parse step.
pub fn extract_links(body: &str) -> Vec<u32> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(ix) = rest.find("href=\"doc:") {
        rest = &rest[ix + 10..];
        let end = rest.find('"').unwrap_or(rest.len());
        if let Ok(n) = rest[..end].parse() {
            out.push(n);
        }
        rest = &rest[end.min(rest.len())..];
    }
    out
}

/// The reverse index: target document -> documents linking to it.
pub type ReverseIndex = BTreeMap<u32, Vec<u32>>;

/// Inserts one document's links into the index (the critical-section
/// operation the benchmark serializes on).
pub fn index_links(index: &mut ReverseIndex, doc: u32, links: &[u32]) {
    for &target in links {
        index.entry(target).or_default().push(doc);
    }
}

/// Generates a deterministic corpus of cross-linked documents.
pub fn generate_documents(n: u32, links_per_doc: usize, seed: u64) -> Vec<Document> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        (state >> 33) as u32
    };
    (0..n)
        .map(|id| {
            let mut body = format!("<html><!-- doc {id} -->");
            for _ in 0..links_per_doc {
                body.push_str(&format!("<a href=\"doc:{}\">x</a>", next() % n));
            }
            body.push_str("</html>");
            Document { id, body }
        })
        .collect()
}

/// Generates deterministic prose for WordCount/Histogram.
pub fn generate_text(words: usize, seed: u64) -> String {
    const VOCAB: [&str; 12] = [
        "precise", "restart", "global", "exception", "order", "thread", "commit", "log",
        "replay", "fault", "token", "retire",
    ];
    let mut state = seed | 1;
    let mut out = String::with_capacity(words * 8);
    for i in 0..words {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        out.push_str(VOCAB[(state >> 33) as usize % VOCAB.len()]);
        out.push(if i % 11 == 10 { '\n' } else { ' ' });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_every_byte() {
        let data = b"aabbbc";
        let h = byte_histogram(data);
        assert_eq!(h[b'a' as usize], 2);
        assert_eq!(h[b'b' as usize], 3);
        assert_eq!(h[b'c' as usize], 1);
        assert_eq!(h.iter().sum::<u64>(), data.len() as u64);
    }

    #[test]
    fn histogram_merge_is_additive() {
        let a = byte_histogram(b"abc");
        let b = byte_histogram(b"bcd");
        let mut merged = a;
        merge_histogram(&mut merged, &b);
        assert_eq!(merged, byte_histogram(b"abcbcd"));
    }

    #[test]
    fn wordcount_splits_and_normalizes() {
        let c = count_words("The the THE, cat!");
        assert_eq!(c["the"], 3);
        assert_eq!(c["cat"], 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn wordcount_merge_matches_whole() {
        let text = generate_text(500, 5);
        // Split on a word boundary to keep the comparison exact.
        let split = text[..text.len() / 2].rfind(' ').unwrap();
        let (a, b) = (&text[..split], &text[split..]);
        let mut merged = count_words(a);
        merge_counts(&mut merged, count_words(b));
        assert_eq!(merged, count_words(&text));
    }

    #[test]
    fn links_round_trip_through_extraction() {
        let docs = generate_documents(20, 5, 7);
        let mut index = ReverseIndex::new();
        for d in &docs {
            let links = extract_links(&d.body);
            assert_eq!(links.len(), 5, "every generated link parses");
            assert!(links.iter().all(|&t| t < 20));
            index_links(&mut index, d.id, &links);
        }
        let total: usize = index.values().map(Vec::len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn extract_links_handles_malformed_input() {
        assert!(extract_links("no links here").is_empty());
        assert!(extract_links("href=\"doc:notanumber\"").is_empty());
        assert_eq!(extract_links("href=\"doc:7"), vec![7]); // unterminated
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(generate_text(100, 1), generate_text(100, 1));
        assert_eq!(generate_documents(5, 3, 2), generate_documents(5, 3, 2));
    }
}
