//! RE — network packet redundancy elimination (Anand et al., SIGMETRICS'09,
//! the paper's `RE` benchmark): a shared fingerprint cache of recent packet
//! content; incoming packets are scanned for regions already in the cache
//! and encoded as references. The cache is the medium-sized critical
//! section of Table 2.

use std::collections::HashMap;

/// A captured packet payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Fixed-size region fingerprints sampled every `STRIDE` bytes.
const REGION: usize = 32;
const STRIDE: usize = 16;

fn region_fp(w: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in w {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The shared packet cache: fingerprint → (packet id, offset).
#[derive(Debug, Default, Clone)]
pub struct PacketCache {
    map: HashMap<u64, (u64, usize)>,
    next_id: u64,
    capacity: usize,
}

/// Result of processing one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReStats {
    /// Bytes found redundant (covered by cached regions).
    pub saved: usize,
    /// Total payload bytes.
    pub total: usize,
}

impl PacketCache {
    /// A cache bounded to `capacity` fingerprints (FIFO-ish eviction by
    /// clearing when full, as the original uses a circular store).
    pub fn new(capacity: usize) -> Self {
        PacketCache {
            map: HashMap::new(),
            next_id: 0,
            capacity: capacity.max(REGION),
        }
    }

    /// Scans a packet against the cache, then inserts its regions — the
    /// operation RE performs inside its critical section.
    pub fn process(&mut self, p: &Packet) -> ReStats {
        let id = self.next_id;
        self.next_id += 1;
        let mut saved = 0;
        let mut i = 0;
        while i + REGION <= p.payload.len() {
            let fp = region_fp(&p.payload[i..i + REGION]);
            if self.map.contains_key(&fp) {
                saved += REGION;
                i += REGION;
            } else {
                i += STRIDE;
            }
        }
        // Insert this packet's regions for future matches.
        if self.map.len() + p.payload.len() / STRIDE > self.capacity {
            self.map.clear(); // circular-store wraparound
        }
        let mut j = 0;
        while j + REGION <= p.payload.len() {
            self.map.insert(region_fp(&p.payload[j..j + REGION]), (id, j));
            j += STRIDE;
        }
        ReStats {
            saved,
            total: p.payload.len(),
        }
    }

    /// Cached fingerprints.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Generates a deterministic packet trace with tunable content redundancy:
/// `redundancy_percent` of packets repeat earlier payload content — the
/// knob the SIGMETRICS study measures (they found ~15–60 % redundancy in
/// enterprise traces).
pub fn generate_trace(
    packets: usize,
    payload: usize,
    redundancy_percent: u32,
    seed: u64,
) -> Vec<Packet> {
    let mut out: Vec<Packet> = Vec::with_capacity(packets);
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        state
    };
    for _ in 0..packets {
        let r = next() >> 33;
        if !out.is_empty() && r % 100 < redundancy_percent as u64 {
            // Repeat an earlier packet's content (possibly shifted).
            let src = (next() >> 7) as usize % out.len();
            let mut p = out[src].payload.clone();
            let shift = ((next() % 8) as usize).min(p.len().saturating_sub(1));
            p.rotate_left(shift);
            out.push(Packet { payload: p });
        } else {
            let mut p = Vec::with_capacity(payload);
            for k in 0..payload as u64 {
                p.push((next().wrapping_mul(k | 1) >> 29) as u8);
            }
            out.push(Packet { payload: p });
        }
    }
    out
}

/// Runs a whole trace through a cache, returning aggregate savings.
pub fn run_trace(trace: &[Packet], cache_capacity: usize) -> ReStats {
    let mut cache = PacketCache::new(cache_capacity);
    let mut agg = ReStats { saved: 0, total: 0 };
    for p in trace {
        let s = cache.process(p);
        agg.saved += s.saved;
        agg.total += s.total;
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_packets_are_fully_redundant() {
        let mut cache = PacketCache::new(1 << 16);
        let p = Packet {
            payload: generate_trace(1, 512, 0, 1)[0].payload.clone(),
        };
        let first = cache.process(&p);
        assert_eq!(first.saved, 0);
        let second = cache.process(&p);
        assert!(
            second.saved * 10 >= second.total * 8,
            "repeat should be ≥80% redundant: {second:?}"
        );
    }

    #[test]
    fn redundant_traces_save_more() {
        let lo = run_trace(&generate_trace(200, 256, 5, 7), 1 << 16);
        let hi = run_trace(&generate_trace(200, 256, 60, 7), 1 << 16);
        assert!(hi.saved > lo.saved * 2, "hi {hi:?} lo {lo:?}");
    }

    #[test]
    fn random_trace_saves_little() {
        let s = run_trace(&generate_trace(100, 256, 0, 3), 1 << 16);
        assert!(s.saved * 20 < s.total, "{s:?}");
    }

    #[test]
    fn cache_eviction_bounds_memory() {
        let trace = generate_trace(300, 512, 0, 5);
        let mut cache = PacketCache::new(1024);
        for p in &trace {
            cache.process(p);
        }
        assert!(cache.len() <= 1024 + 512 / STRIDE);
    }

    #[test]
    fn trace_generation_is_deterministic() {
        assert_eq!(generate_trace(50, 128, 30, 2), generate_trace(50, 128, 30, 2));
    }
}
