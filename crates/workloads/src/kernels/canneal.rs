//! Canneal kernel: simulated-annealing placement of a netlist — small
//! computations with frequent small element-swap "critical sections"
//! (PARSEC's canneal swaps element locations with non-blocking atomics,
//! the non-standard synchronization the paper handles with hybrid
//! recovery).

/// A netlist: elements on a grid, each wired to a few neighbours.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    /// Grid side length (positions = side × side).
    pub side: usize,
    /// `location[e]` = grid position of element `e`.
    pub location: Vec<usize>,
    /// Adjacency: wires per element.
    pub wires: Vec<Vec<u32>>,
}

impl Netlist {
    /// Generates a deterministic random netlist of `n` elements with
    /// `fanout` wires each.
    pub fn generate(n: usize, fanout: usize, seed: u64) -> Self {
        let side = (n as f64).sqrt().ceil() as usize;
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (state >> 33) as usize
        };
        let wires = (0..n)
            .map(|e| {
                (0..fanout)
                    .map(|_| {
                        let mut t = next() % n;
                        if t == e {
                            t = (t + 1) % n;
                        }
                        t as u32
                    })
                    .collect()
            })
            .collect();
        Netlist {
            side,
            location: (0..n).collect(),
            wires,
        }
    }

    fn pos(&self, e: usize) -> (isize, isize) {
        let p = self.location[e];
        ((p % self.side) as isize, (p / self.side) as isize)
    }

    /// Manhattan wirelength of one element's nets.
    pub fn element_cost(&self, e: usize) -> u64 {
        let (x, y) = self.pos(e);
        self.wires[e]
            .iter()
            .map(|&t| {
                let (tx, ty) = self.pos(t as usize);
                ((x - tx).abs() + (y - ty).abs()) as u64
            })
            .sum()
    }

    /// Total wirelength — the annealing objective.
    pub fn total_cost(&self) -> u64 {
        (0..self.location.len()).map(|e| self.element_cost(e)).sum()
    }

    /// Cost delta of swapping two elements' locations (negative = better).
    pub fn swap_delta(&mut self, a: usize, b: usize) -> i64 {
        let before = (self.element_cost(a) + self.element_cost(b)) as i64;
        self.location.swap(a, b);
        let after = (self.element_cost(a) + self.element_cost(b)) as i64;
        self.location.swap(a, b);
        after - before
    }

    /// Applies a swap.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.location.swap(a, b);
    }
}

/// One annealing sweep over `moves` random pairs at temperature `temp`;
/// returns accepted-move count. Deterministic given the seed.
pub fn anneal_sweep(net: &mut Netlist, moves: usize, temp: f64, seed: u64) -> usize {
    let n = net.location.len();
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        state
    };
    let mut accepted = 0;
    for _ in 0..moves {
        let a = (next() >> 33) as usize % n;
        let b = (next() >> 13) as usize % n;
        if a == b {
            continue;
        }
        let delta = net.swap_delta(a, b);
        let accept = if delta <= 0 {
            true
        } else {
            // Deterministic Metropolis: compare exp(-delta/T) with a
            // uniform drawn from the same generator.
            let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
            (-(delta as f64) / temp.max(1e-9)).exp() > u
        };
        if accept {
            net.swap(a, b);
            accepted += 1;
        }
    }
    accepted
}

/// Runs a full annealing schedule; returns (initial cost, final cost).
pub fn anneal(net: &mut Netlist, sweeps: usize, moves_per_sweep: usize, seed: u64) -> (u64, u64) {
    let initial = net.total_cost();
    let mut temp = (initial as f64 / net.location.len() as f64).max(1.0);
    for s in 0..sweeps {
        anneal_sweep(net, moves_per_sweep, temp, seed.wrapping_add(s as u64));
        temp *= 0.8;
    }
    (initial, net.total_cost())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annealing_reduces_wirelength() {
        let mut net = Netlist::generate(400, 4, 9);
        let (initial, final_) = anneal(&mut net, 12, 2000, 42);
        assert!(
            final_ < initial,
            "annealing should improve placement: {initial} -> {final_}"
        );
    }

    #[test]
    fn swap_delta_matches_actual_swap() {
        let mut net = Netlist::generate(100, 3, 5);
        // delta computed for element-local cost must match when the pair is
        // not mutually wired (local costs double-count shared wires).
        for (a, b) in [(0usize, 50usize), (3, 77), (10, 42)] {
            if net.wires[a].contains(&(b as u32)) || net.wires[b].contains(&(a as u32)) {
                continue;
            }
            let delta = net.swap_delta(a, b);
            let before = net.element_cost(a) as i64 + net.element_cost(b) as i64;
            net.swap(a, b);
            let after = net.element_cost(a) as i64 + net.element_cost(b) as i64;
            net.swap(a, b);
            assert_eq!(delta, after - before);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Netlist::generate(50, 3, 1);
        let b = Netlist::generate(50, 3, 1);
        assert_eq!(a, b);
        assert_eq!(a.location.len(), 50);
        assert!(a.wires.iter().all(|w| w.len() == 3));
    }

    #[test]
    fn no_self_wires() {
        let net = Netlist::generate(64, 4, 7);
        for (e, ws) in net.wires.iter().enumerate() {
            assert!(ws.iter().all(|&t| t as usize != e));
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let mut a = Netlist::generate(100, 3, 2);
        let mut b = Netlist::generate(100, 3, 2);
        let ka = anneal_sweep(&mut a, 500, 10.0, 7);
        let kb = anneal_sweep(&mut b, 500, 10.0, 7);
        assert_eq!(ka, kb);
        assert_eq!(a, b);
    }
}
