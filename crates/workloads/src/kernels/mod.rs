//! Real computational kernels behind the ten benchmark programs — the
//! from-scratch algorithm implementations used by the runtime examples and
//! the `programs` module.
//!
//! | module | benchmark(s) |
//! |---|---|
//! | [`compress`] | Pbzip2 (LZSS block compressor) |
//! | [`finance`] | Blackscholes, Swaptions |
//! | [`text`] | Histogram, WordCount, ReverseIndex |
//! | [`nbody`] | Barnes-Hut (quadtree N-body) |
//! | [`dedup`] | Dedup (content-defined chunking + fingerprints) |
//! | [`netre`] | RE (packet redundancy elimination) |
//! | [`canneal`] | Canneal (netlist annealing) |

pub mod canneal;
pub mod compress;
pub mod dedup;
pub mod finance;
pub mod nbody;
pub mod netre;
pub mod text;
