//! A 2-D Barnes-Hut N-body kernel: quadtree construction and θ-criterion
//! force approximation — the Barnes-Hut benchmark's computation (iterative
//! data-parallel with per-step barriers).

/// A point mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub x: f64,
    /// Position.
    pub y: f64,
    /// Velocity.
    pub vx: f64,
    /// Velocity.
    pub vy: f64,
    /// Mass.
    pub mass: f64,
}

/// Quadtree node over a square region.
#[derive(Debug)]
enum Node {
    Empty,
    Leaf(usize),
    Internal {
        children: Box<[Node; 4]>,
        mass: f64,
        cx: f64,
        cy: f64,
    },
}

/// A quadtree over a set of bodies.
#[derive(Debug)]
pub struct QuadTree<'a> {
    bodies: &'a [Body],
    root: Node,
    min: (f64, f64),
    size: f64,
}

const THETA: f64 = 0.5;
const SOFTENING: f64 = 1e-4;

impl<'a> QuadTree<'a> {
    /// Builds the tree over all bodies.
    pub fn build(bodies: &'a [Body]) -> Self {
        let (mut minx, mut miny) = (f64::INFINITY, f64::INFINITY);
        let (mut maxx, mut maxy) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for b in bodies {
            minx = minx.min(b.x);
            miny = miny.min(b.y);
            maxx = maxx.max(b.x);
            maxy = maxy.max(b.y);
        }
        let size = (maxx - minx).max(maxy - miny).max(1e-9) * 1.0001;
        let mut tree = QuadTree {
            bodies,
            root: Node::Empty,
            min: (minx, miny),
            size,
        };
        for i in 0..bodies.len() {
            let mut root = std::mem::replace(&mut tree.root, Node::Empty);
            tree.insert(&mut root, i, tree.min.0, tree.min.1, tree.size, 0);
            tree.root = root;
        }
        let mut root = std::mem::replace(&mut tree.root, Node::Empty);
        tree.summarize(&mut root);
        tree.root = root;
        tree
    }

    fn insert(&self, node: &mut Node, i: usize, x0: f64, y0: f64, size: f64, depth: usize) {
        match node {
            Node::Empty => *node = Node::Leaf(i),
            Node::Leaf(j) => {
                let j = *j;
                if depth > 48 {
                    // Coincident points: keep as a leaf (mass merged in the
                    // summary pass would lose identity; the force loop
                    // handles the tiny error via softening).
                    return;
                }
                let mut children: Box<[Node; 4]> =
                    Box::new([Node::Empty, Node::Empty, Node::Empty, Node::Empty]);
                let q_j = quadrant(&self.bodies[j], x0, y0, size);
                children[q_j] = Node::Leaf(j);
                *node = Node::Internal {
                    children,
                    mass: 0.0,
                    cx: 0.0,
                    cy: 0.0,
                };
                self.insert(node, i, x0, y0, size, depth);
            }
            Node::Internal { children, .. } => {
                let q = quadrant(&self.bodies[i], x0, y0, size);
                let half = size / 2.0;
                let (cx0, cy0) = child_origin(q, x0, y0, half);
                self.insert(&mut children[q], i, cx0, cy0, half, depth + 1);
            }
        }
    }

    /// Computes mass and centre-of-mass bottom-up.
    fn summarize(&self, node: &mut Node) {
        fn go(bodies: &[Body], node: &mut Node) -> (f64, f64, f64) {
            match node {
                Node::Empty => (0.0, 0.0, 0.0),
                Node::Leaf(i) => {
                    let b = &bodies[*i];
                    (b.mass, b.x * b.mass, b.y * b.mass)
                }
                Node::Internal {
                    children,
                    mass,
                    cx,
                    cy,
                } => {
                    let mut m = 0.0;
                    let mut sx = 0.0;
                    let mut sy = 0.0;
                    for c in children.iter_mut() {
                        let (cm, cmx, cmy) = go(bodies, c);
                        m += cm;
                        sx += cmx;
                        sy += cmy;
                    }
                    *mass = m;
                    if m > 0.0 {
                        *cx = sx / m;
                        *cy = sy / m;
                    }
                    (m, sx, sy)
                }
            }
        }
        go(self.bodies, node);
    }

    /// Approximate force on body `i` using the θ criterion.
    pub fn force_on(&self, i: usize) -> (f64, f64) {
        fn go(
            bodies: &[Body],
            node: &Node,
            i: usize,
            size: f64,
            fx: &mut f64,
            fy: &mut f64,
        ) {
            let b = &bodies[i];
            match node {
                Node::Empty => {}
                Node::Leaf(j) => {
                    if *j != i {
                        accumulate(b, bodies[*j].x, bodies[*j].y, bodies[*j].mass, fx, fy);
                    }
                }
                Node::Internal {
                    children,
                    mass,
                    cx,
                    cy,
                } => {
                    let dx = cx - b.x;
                    let dy = cy - b.y;
                    let dist = (dx * dx + dy * dy).sqrt().max(SOFTENING);
                    if size / dist < THETA {
                        accumulate(b, *cx, *cy, *mass, fx, fy);
                    } else {
                        for c in children.iter() {
                            go(bodies, c, i, size / 2.0, fx, fy);
                        }
                    }
                }
            }
        }
        let mut fx = 0.0;
        let mut fy = 0.0;
        go(self.bodies, &self.root, i, self.size, &mut fx, &mut fy);
        (fx, fy)
    }
}

fn quadrant(b: &Body, x0: f64, y0: f64, size: f64) -> usize {
    let half = size / 2.0;
    (usize::from(b.x >= x0 + half)) | (usize::from(b.y >= y0 + half) << 1)
}

fn child_origin(q: usize, x0: f64, y0: f64, half: f64) -> (f64, f64) {
    (
        x0 + if q & 1 != 0 { half } else { 0.0 },
        y0 + if q & 2 != 0 { half } else { 0.0 },
    )
}

fn accumulate(b: &Body, x: f64, y: f64, mass: f64, fx: &mut f64, fy: &mut f64) {
    let dx = x - b.x;
    let dy = y - b.y;
    let d2 = (dx * dx + dy * dy).max(SOFTENING * SOFTENING);
    let inv = 1.0 / (d2 * d2.sqrt());
    *fx += mass * b.mass * dx * inv;
    *fy += mass * b.mass * dy * inv;
}

/// Exact O(n²) forces, for validating the approximation.
pub fn direct_force(bodies: &[Body], i: usize) -> (f64, f64) {
    let mut fx = 0.0;
    let mut fy = 0.0;
    for (j, o) in bodies.iter().enumerate() {
        if j != i {
            accumulate(&bodies[i], o.x, o.y, o.mass, &mut fx, &mut fy);
        }
    }
    (fx, fy)
}

/// Advances bodies in `range` one leapfrog step using tree forces.
pub fn step_range(bodies: &mut [Body], range: std::ops::Range<usize>, dt: f64) {
    let forces: Vec<(f64, f64)> = {
        let tree = QuadTree::build(bodies);
        range.clone().map(|i| tree.force_on(i)).collect()
    };
    for (k, i) in range.enumerate() {
        let (fx, fy) = forces[k];
        let b = &mut bodies[i];
        b.vx += fx / b.mass * dt;
        b.vy += fy / b.mass * dt;
        b.x += b.vx * dt;
        b.y += b.vy * dt;
    }
}

/// Generates a deterministic Plummer-ish disc of bodies.
pub fn generate_bodies(n: usize, seed: u64) -> Vec<Body> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            let r = next().sqrt();
            let th = next() * std::f64::consts::TAU;
            Body {
                x: r * th.cos(),
                y: r * th.sin(),
                vx: -th.sin() * r * 0.1,
                vy: th.cos() * r * 0.1,
                mass: 0.5 + next(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_force_approximates_direct() {
        let bodies = generate_bodies(300, 11);
        let tree = QuadTree::build(&bodies);
        let mut worst = 0.0f64;
        for i in (0..300).step_by(17) {
            let (ax, ay) = tree.force_on(i);
            let (ex, ey) = direct_force(&bodies, i);
            let mag = (ex * ex + ey * ey).sqrt().max(1e-12);
            let err = ((ax - ex).powi(2) + (ay - ey).powi(2)).sqrt() / mag;
            worst = worst.max(err);
        }
        assert!(worst < 0.05, "θ=0.5 relative error {worst}");
    }

    #[test]
    fn forces_are_antisymmetric_for_two_bodies() {
        let bodies = vec![
            Body { x: 0.0, y: 0.0, vx: 0.0, vy: 0.0, mass: 2.0 },
            Body { x: 1.0, y: 0.0, vx: 0.0, vy: 0.0, mass: 3.0 },
        ];
        let (f0x, f0y) = direct_force(&bodies, 0);
        let (f1x, f1y) = direct_force(&bodies, 1);
        assert!((f0x + f1x).abs() < 1e-12);
        assert!((f0y + f1y).abs() < 1e-12);
        assert!(f0x > 0.0, "body 0 is pulled toward body 1");
    }

    #[test]
    fn step_is_deterministic_and_conserves_count() {
        let mut a = generate_bodies(100, 3);
        let mut b = generate_bodies(100, 3);
        step_range(&mut a, 0..100, 0.01);
        step_range(&mut b, 0..100, 0.01);
        assert_eq!(a.len(), 100);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn coincident_bodies_do_not_recurse_forever() {
        let bodies = vec![
            Body { x: 0.5, y: 0.5, vx: 0.0, vy: 0.0, mass: 1.0 };
            8
        ];
        let tree = QuadTree::build(&bodies);
        let (fx, fy) = tree.force_on(0);
        assert!(fx.is_finite() && fy.is_finite());
    }
}
