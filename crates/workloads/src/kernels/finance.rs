//! Financial kernels: Black-Scholes option pricing (the Blackscholes
//! benchmark) and a lattice swaption pricer standing in for PARSEC's
//! HJM-based Swaptions — both deterministic, CPU-bound and embarrassingly
//! parallel, exactly the role they play in the paper's evaluation.

/// One European option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Option_ {
    /// Spot price.
    pub spot: f64,
    /// Strike price.
    pub strike: f64,
    /// Risk-free rate.
    pub rate: f64,
    /// Volatility.
    pub vol: f64,
    /// Time to expiry in years.
    pub expiry: f64,
    /// Call (true) or put (false).
    pub call: bool,
}

/// Abramowitz–Stegun cumulative normal distribution (the same approximation
/// PARSEC's blackscholes uses).
pub fn cnd(x: f64) -> f64 {
    let l = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * l);
    let poly = k
        * (0.319381530
            + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    let w = 1.0 - (-l * l / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt() * poly;
    if x < 0.0 {
        1.0 - w
    } else {
        w
    }
}

/// Black-Scholes closed-form price.
///
/// # Examples
/// ```
/// use gprs_workloads::kernels::finance::{black_scholes, Option_};
/// let opt = Option_ { spot: 100.0, strike: 100.0, rate: 0.05,
///                     vol: 0.2, expiry: 1.0, call: true };
/// let price = black_scholes(&opt);
/// assert!((price - 10.45).abs() < 0.01); // the textbook ATM value
/// ```
pub fn black_scholes(o: &Option_) -> f64 {
    let d1 = ((o.spot / o.strike).ln() + (o.rate + o.vol * o.vol / 2.0) * o.expiry)
        / (o.vol * o.expiry.sqrt());
    let d2 = d1 - o.vol * o.expiry.sqrt();
    if o.call {
        o.spot * cnd(d1) - o.strike * (-o.rate * o.expiry).exp() * cnd(d2)
    } else {
        o.strike * (-o.rate * o.expiry).exp() * cnd(-d2) - o.spot * cnd(-d1)
    }
}

/// Generates a deterministic option portfolio.
pub fn generate_options(n: usize, seed: u64) -> Vec<Option_> {
    let mut state = seed | 1;
    let mut next = || {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Option_ {
            spot: 50.0 + 100.0 * next(),
            strike: 50.0 + 100.0 * next(),
            rate: 0.01 + 0.09 * next(),
            vol: 0.1 + 0.5 * next(),
            expiry: 0.25 + 2.0 * next(),
            call: next() > 0.5,
        })
        .collect()
}

/// Prices a slice of options, returning the sum (the checkable result).
pub fn price_portfolio(options: &[Option_]) -> f64 {
    options.iter().map(black_scholes).sum()
}

/// A payer swaption priced on a binomial short-rate lattice — a
/// deterministic, CPU-heavy stand-in for PARSEC's HJM Monte-Carlo pricer
/// (the evaluation only needs "few, very large computations").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Swaption {
    /// Initial short rate.
    pub r0: f64,
    /// Rate volatility per step.
    pub vol: f64,
    /// Fixed strike rate of the underlying swap.
    pub strike: f64,
    /// Lattice steps to option expiry.
    pub expiry_steps: usize,
    /// Payment periods of the underlying swap.
    pub swap_periods: usize,
}

/// Prices a swaption by backward induction on a recombining lattice.
/// `steps` controls the work (quadratic).
pub fn price_swaption(s: &Swaption) -> f64 {
    let n = s.expiry_steps;
    let dt: f64 = 1.0 / 12.0;
    let up = (s.vol * dt.sqrt()).exp();
    // Short rate at node (level i, ups j): r0 * up^(2j - i).
    let rate_at = |i: usize, j: usize| s.r0 * up.powi(2 * j as i32 - i as i32);

    // Value of the underlying swap at expiry node j: sum of discounted
    // (rate - strike) legs under a flat continuation of the node rate.
    let swap_value = |r: f64| -> f64 {
        let mut v = 0.0;
        let mut df = 1.0;
        for _ in 0..s.swap_periods {
            df /= 1.0 + r * dt;
            v += (r - s.strike) * dt * df;
        }
        v
    };

    // Terminal payoff, then discounted expectation backwards (p = 1/2).
    let mut values: Vec<f64> = (0..=n)
        .map(|j| swap_value(rate_at(n, j)).max(0.0))
        .collect();
    for i in (0..n).rev() {
        for j in 0..=i {
            let disc = 1.0 / (1.0 + rate_at(i, j) * dt);
            values[j] = disc * 0.5 * (values[j] + values[j + 1]);
        }
        values.truncate(i + 1);
    }
    values[0]
}

/// Generates deterministic swaptions.
pub fn generate_swaptions(n: usize, steps: usize, seed: u64) -> Vec<Swaption> {
    let mut state = seed | 1;
    let mut next = || {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Swaption {
            r0: 0.02 + 0.04 * next(),
            vol: 0.1 + 0.2 * next(),
            strike: 0.02 + 0.04 * next(),
            expiry_steps: steps,
            swap_periods: 40,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnd_is_a_cdf() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-9);
        assert!(cnd(5.0) > 0.9999);
        assert!(cnd(-5.0) < 0.0001);
        assert!(cnd(1.0) > cnd(0.5));
    }

    #[test]
    fn put_call_parity_holds() {
        let call = Option_ { spot: 90.0, strike: 100.0, rate: 0.03, vol: 0.25, expiry: 0.5, call: true };
        let put = Option_ { call: false, ..call };
        let lhs = black_scholes(&call) - black_scholes(&put);
        let rhs = call.spot - call.strike * (-call.rate * call.expiry).exp();
        assert!((lhs - rhs).abs() < 1e-9, "parity violated: {lhs} vs {rhs}");
    }

    #[test]
    fn portfolio_is_deterministic_and_positive() {
        let a = price_portfolio(&generate_options(500, 3));
        let b = price_portfolio(&generate_options(500, 3));
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn swaption_value_increases_with_vol() {
        let lo = Swaption { r0: 0.03, vol: 0.1, strike: 0.03, expiry_steps: 60, swap_periods: 40 };
        let hi = Swaption { vol: 0.3, ..lo };
        assert!(price_swaption(&hi) > price_swaption(&lo));
        assert!(price_swaption(&lo) >= 0.0);
    }

    #[test]
    fn deep_out_of_the_money_swaption_is_near_zero() {
        let s = Swaption { r0: 0.01, vol: 0.05, strike: 0.20, expiry_steps: 40, swap_periods: 40 };
        assert!(price_swaption(&s) < 1e-4);
    }
}
