//! Host crate for the repository-level integration tests in `/tests`.
//!
//! The test sources live at the workspace root (`tests/*.rs`) per the
//! project layout; this crate wires them into `cargo test --workspace`.
