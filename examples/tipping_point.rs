//! Tipping point: a condensed Figure 11(c) on the virtual-time simulator —
//! find the exception rate beyond which Pbzip2 stops completing, under
//! conventional CPR and under GPRS selective restart, across machine sizes.
//!
//! ```sh
//! cargo run --release -p gprs-workloads --example tipping_point
//! ```

use gprs_sim::costs::secs_to_cycles;
use gprs_sim::free::{run_free, FreeRunConfig};
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_sim::tipping::{find_tipping_rate, TippingScheme};
use gprs_workloads::traces::{pbzip2_with, TraceParams};

fn main() {
    println!("Tipping rates on Pbzip2 (scaled input), CPR vs GPRS\n");
    println!("{:>9}  {:>12}  {:>12}  {:>7}", "contexts", "P-CPR (e/s)", "GPRS (e/s)", "ratio");
    for n in [1u32, 4, 8, 16, 24] {
        let p = TraceParams::paper().scaled(0.1).with_contexts(n);
        let w = pbzip2_with(&p, n.saturating_sub(2).max(1) as usize);
        let cpr_free = run_free(&w, &FreeRunConfig::cpr(n, secs_to_cycles(1.0)));
        let gprs_free = run_gprs(&w, &GprsSimConfig::balance_aware(n));
        let cpr = find_tipping_rate(
            &w,
            &TippingScheme::Cpr(
                FreeRunConfig::cpr(n, secs_to_cycles(1.0))
                    .with_time_cap(cpr_free.finish_cycles.saturating_mul(20)),
            ),
            0.5,
            0.15,
            7,
        );
        let gprs = find_tipping_rate(
            &w,
            &TippingScheme::Gprs(
                GprsSimConfig::balance_aware(n)
                    .with_time_cap(gprs_free.finish_cycles.saturating_mul(20)),
            ),
            0.5,
            0.15,
            7,
        );
        println!(
            "{:>9}  {:>12.2}  {:>12.2}  {:>6.1}x",
            n,
            cpr.estimate(),
            gprs.estimate(),
            gprs.estimate() / cpr.estimate()
        );
    }
    println!(
        "\nThe paper's claim (§2.4, Figure 11): CPR tolerance is flat in the\n\
         machine size (e ≤ 1/t_r) while GPRS selective restart scales with it\n\
         (e ≤ n/t_r) — the shape reproduced above."
    );
}
