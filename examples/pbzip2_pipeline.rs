//! The paper's flagship workload: a Pbzip2-style compression pipeline
//! (read → compress × N → write, Figure 6) running on the real GPRS
//! runtime under fault injection, with byte-exact output verified by
//! decompression — and the same program run on the coordinated-CPR
//! baseline executor for comparison.
//!
//! ```sh
//! cargo run --release -p gprs-workloads --example pbzip2_pipeline
//! ```

use gprs_core::exception::ExceptionKind;
use gprs_runtime::cpr::CprBuilder;
use gprs_runtime::GprsBuilder;
use gprs_workloads::kernels::compress::generate_corpus;
use gprs_workloads::programs::{
    build_pbzip_pipeline, decode_pbzip_output, PbzipCompressor, PbzipReader, PbzipWriter,
};
use std::time::Instant;

const INPUT_BYTES: usize = 4 * 1024 * 1024;
const BLOCK: usize = 4096;
const COMPRESSORS: u64 = 4;

fn main() {
    let input = generate_corpus(INPUT_BYTES, 2024);
    println!("Pbzip2 pipeline: {INPUT_BYTES} bytes, {COMPRESSORS} compressors\n");

    // ---- Fault-free GPRS reference: its retired-order hash is the
    // determinism yardstick the recovered run must reproduce.
    let mut rb = GprsBuilder::new().workers(4);
    build_pbzip_pipeline(&mut rb, input.clone(), BLOCK, COMPRESSORS);
    let reference = rb.build().run().expect("fault-free run completes");

    // ---- GPRS with selective restart under continuous fault injection.
    let mut b = GprsBuilder::new().workers(4);
    let (file, _) = build_pbzip_pipeline(&mut b, input.clone(), BLOCK, COMPRESSORS);
    let gprs = b.build();
    let ctl = gprs.controller();
    let injector = std::thread::spawn(move || {
        let mut n = 0;
        while !ctl.is_finished() {
            if ctl.inject_on_busy(ExceptionKind::VoltageEmergency) {
                n += 1;
            }
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
        n
    });
    let t0 = Instant::now();
    let report = gprs.run().expect("GPRS run completes");
    let gprs_time = t0.elapsed();
    let injected = injector.join().unwrap();
    let compressed = report.file_contents(file.index()).to_vec();
    let decoded = decode_pbzip_output(&compressed).expect("valid archive");
    assert_eq!(decoded, input, "GPRS output must decompress byte-exact");

    println!("GPRS   (selective restart):");
    println!("  wall time:            {gprs_time:?}");
    println!(
        "  compressed:           {} -> {} bytes ({:.1}%)",
        input.len(),
        compressed.len(),
        100.0 * compressed.len() as f64 / input.len() as f64
    );
    println!("  exceptions injected:  {injected}");
    println!("  recoveries:           {}", report.stats.recoveries);
    println!("  sub-threads squashed: {}", report.stats.squashed);
    println!("  sub-threads total:    {}", report.stats.subthreads);
    println!("  ✓ decompressed output identical to input");
    println!(
        "  retired hash:         {:#018x} (fault-free {:#018x})",
        report.telemetry.retired_hash, reference.telemetry.retired_hash
    );
    assert_eq!(
        report.telemetry.retired_hash, reference.telemetry.retired_hash,
        "recovered run must retire in the fault-free order"
    );
    println!("  ✓ retired order identical to the fault-free run\n");

    // ---- The same program on the CPR baseline, same injection pressure.
    let mut cb = CprBuilder::new().workers(4).checkpoint_every(64);
    let raw = cb.channel();
    let packed = cb.channel();
    let cfile = cb.file("pbzip.cpr");
    let reader = PbzipReader::new(input.clone(), BLOCK, raw);
    let blocks = reader.block_count();
    cb.thread(reader, gprs_core::ids::GroupId::new(0), 4);
    let per = blocks / COMPRESSORS;
    let extra = blocks % COMPRESSORS;
    for c in 0..COMPRESSORS {
        cb.thread(
            PbzipCompressor::new(raw, packed, per + u64::from(c < extra)),
            gprs_core::ids::GroupId::new(1),
            4,
        );
    }
    cb.thread(
        PbzipWriter::new(packed, cfile, blocks),
        gprs_core::ids::GroupId::new(2),
        1,
    );
    let cpr = cb.build();
    let cctl = cpr.controller();
    let injector = std::thread::spawn(move || {
        let mut n = 0;
        while !cctl.is_finished() {
            cctl.inject();
            n += 1;
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        n
    });
    let t0 = Instant::now();
    let creport = cpr.run().expect("CPR run completes");
    let cpr_time = t0.elapsed();
    let cinjected = injector.join().unwrap();
    let cdecoded =
        decode_pbzip_output(&creport.files[&cfile.index()].1).expect("valid archive");
    assert_eq!(cdecoded, input, "CPR output must decompress byte-exact");

    println!("P-CPR  (coordinated checkpoint-and-recovery):");
    println!("  wall time:            {cpr_time:?}");
    println!("  exceptions injected:  {cinjected}");
    println!("  global rollbacks:     {}", creport.rollbacks);
    println!("  checkpoints taken:    {}", creport.checkpoints);
    println!("  ✓ decompressed output identical to input\n");

    println!(
        "Note the asymmetry: each CPR exception rolled the WHOLE pipeline back \
         to the last coordinated checkpoint, while each GPRS exception squashed \
         only the affected sub-threads ({} squashed across {} recoveries).",
        report.stats.squashed, report.stats.recoveries
    );
}
