//! Quickstart: run a small parallel word count on the GPRS runtime, inject
//! a discretionary exception mid-run, and watch selective restart deliver
//! the exact same answer.
//!
//! ```sh
//! cargo run --release -p gprs-workloads --example quickstart
//! ```

use gprs_core::exception::ExceptionKind;
use gprs_core::ids::GroupId;
use gprs_runtime::GprsBuilder;
use gprs_workloads::kernels::text::{count_words, generate_text};
use gprs_workloads::programs::WordCountWorker;
use std::collections::BTreeMap;

fn main() {
    // A corpus split across four worker threads.
    let text = generate_text(400_000, 7);
    let serial_reference: u64 = count_words(&text).values().sum();

    let mut builder = GprsBuilder::new().workers(4);
    let accumulator = builder.mutex(BTreeMap::<String, u64>::new());
    let mut shards = Vec::new();
    let mut rest = text.as_str();
    for _ in 0..3 {
        let cut = rest[..rest.len() / 2].rfind(' ').unwrap();
        let (head, tail) = rest.split_at(cut);
        shards.push(head.to_string());
        rest = tail;
    }
    shards.push(rest.to_string());
    let tids: Vec<_> = shards
        .into_iter()
        .map(|s| builder.thread(WordCountWorker::new(s, accumulator), GroupId::new(0), 1))
        .collect();

    let gprs = builder.build();
    let controller = gprs.controller();

    // The paper's "signal thread": raise soft faults while the program runs.
    let injector = std::thread::spawn(move || {
        let mut injected = 0;
        while !controller.is_finished() {
            if controller.inject_on_busy(ExceptionKind::SoftFault) {
                injected += 1;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        injected
    });

    let report = gprs.run().expect("run completes");
    let injected = injector.join().unwrap();

    let parallel_total: u64 = tids.iter().map(|&t| report.output::<u64>(t)).sum();
    println!("GPRS quickstart — globally precise-restartable word count");
    println!("  words counted:        {parallel_total}");
    println!("  serial reference:     {serial_reference}");
    println!("  exceptions injected:  {injected}");
    println!("  recoveries executed:  {}", report.stats.recoveries);
    println!("  sub-threads squashed: {}", report.stats.squashed);
    println!("  sub-threads created:  {}", report.stats.subthreads);
    assert_eq!(
        parallel_total, serial_reference,
        "selective restart must preserve the exact result"
    );
    println!("  ✓ output identical to the fault-free run");
}
