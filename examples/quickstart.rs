//! Quickstart: run a small parallel word count on the GPRS runtime, inject
//! a discretionary exception mid-run, and watch selective restart deliver
//! the exact same answer — with the telemetry subsystem proving it: two
//! fault-free runs produce byte-identical schedule hashes, and the faulty
//! run converges to the fault-free retired-order hash.
//!
//! ```sh
//! cargo run --release -p gprs-workloads --example quickstart
//! ```
//!
//! Writes the faulty run's full JSON telemetry (event trace, counters,
//! determinism hashes) to `artifacts/quickstart.telemetry.json`.

use gprs_core::exception::ExceptionKind;
use gprs_core::ids::GroupId;
use gprs_runtime::report::RunReport;
use gprs_runtime::GprsBuilder;
use gprs_workloads::kernels::text::{count_words, generate_text};
use gprs_workloads::programs::WordCountWorker;
use std::collections::BTreeMap;

/// Builds and runs the word count, optionally under a fault-injection
/// storm. Returns the report, exceptions injected, and the summed count.
fn run_word_count(text: &str, inject: bool) -> (RunReport, u64, u64) {
    // The corpus split across four worker threads.
    let mut builder = GprsBuilder::new().workers(4);
    let accumulator = builder.mutex(BTreeMap::<String, u64>::new());
    let mut shards = Vec::new();
    let mut rest = text;
    for _ in 0..3 {
        let cut = rest[..rest.len() / 2].rfind(' ').unwrap();
        let (head, tail) = rest.split_at(cut);
        shards.push(head.to_string());
        rest = tail;
    }
    shards.push(rest.to_string());
    let tids: Vec<_> = shards
        .into_iter()
        .map(|s| builder.thread(WordCountWorker::new(s, accumulator), GroupId::new(0), 1))
        .collect();

    let gprs = builder.build();

    // The paper's "signal thread": raise soft faults while the program runs.
    // The storm is bounded — past its tipping rate (§2.4) a run recovers
    // slower than it progresses, and an unbounded 100 µs storm tips slow
    // single-context hosts.
    let injector = inject.then(|| {
        let controller = gprs.controller();
        std::thread::spawn(move || {
            let mut injected = 0;
            while !controller.is_finished() && injected < 50 {
                if controller.inject_on_busy(ExceptionKind::SoftFault) {
                    injected += 1;
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            injected
        })
    });

    let report = gprs.run().expect("run completes");
    let injected = injector.map_or(0, |j| j.join().unwrap());
    let total = tids.iter().map(|&t| report.output::<u64>(t)).sum();
    (report, injected, total)
}

fn main() {
    let text = generate_text(400_000, 7);
    let serial_reference: u64 = count_words(&text).values().sum();

    println!("GPRS quickstart — globally precise-restartable word count");

    // Two fault-free runs: the deterministic scheduler grants sub-threads in
    // the same order every time, so the streaming schedule hashes match.
    let (clean_a, _, clean_total) = run_word_count(&text, false);
    let (clean_b, _, _) = run_word_count(&text, false);
    println!("  fault-free schedule hash, run 1: {:#018x}", clean_a.telemetry.schedule_hash);
    println!("  fault-free schedule hash, run 2: {:#018x}", clean_b.telemetry.schedule_hash);
    assert_eq!(
        clean_a.telemetry.schedule_hash, clean_b.telemetry.schedule_hash,
        "same-seed runs must grant in the same order"
    );
    assert_eq!(clean_total, serial_reference);
    println!("  ✓ same-seed runs are schedule-identical");

    // Now the same program under a fault storm.
    let (report, injected, parallel_total) = run_word_count(&text, true);
    println!("  words counted:        {parallel_total}");
    println!("  serial reference:     {serial_reference}");
    println!("  exceptions injected:  {injected}");
    println!("  recoveries executed:  {}", report.stats.recoveries);
    println!("  sub-threads squashed: {}", report.stats.squashed);
    println!("  sub-threads created:  {}", report.stats.subthreads);
    assert_eq!(
        parallel_total, serial_reference,
        "selective restart must preserve the exact result"
    );
    println!("  ✓ output identical to the fault-free run");

    // Retirement order is interleaving-invariant: the recovered run retires
    // each thread's sub-threads in the same sequence as a fault-free run.
    println!("  fault-free retired hash: {:#018x}", clean_a.telemetry.retired_hash);
    println!("  recovered  retired hash: {:#018x}", report.telemetry.retired_hash);
    assert_eq!(
        report.telemetry.retired_hash, clean_a.telemetry.retired_hash,
        "recovery must not change the retired order"
    );
    println!("  ✓ recovered run retired in the fault-free order");

    let dir = std::path::Path::new("artifacts");
    let path = dir.join("quickstart.telemetry.json");
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, report.telemetry.to_json()))
    {
        eprintln!("  telemetry dump failed: {e}");
    } else {
        println!("  telemetry (events, counters, hashes): {}", path.display());
    }
}
