//! Fault storm: drive the same histogram program through escalating
//! exception rates on the GPRS runtime, demonstrating that selective
//! restart keeps results exact while recovery work scales with the storm —
//! the runtime-level analogue of Figure 10.
//!
//! ```sh
//! cargo run --release -p gprs-workloads --example fault_storm
//! ```

use gprs_core::exception::ExceptionKind;
use gprs_core::ids::GroupId;
use gprs_runtime::{GprsBuilder, RecoveryPolicy};
use gprs_workloads::kernels::compress::generate_corpus;
use gprs_workloads::kernels::text::byte_histogram;
use gprs_workloads::programs::HistogramWorker;
use std::time::{Duration, Instant};

const DATA_BYTES: usize = 24 * 1024 * 1024;
const WORKERS: usize = 4;
const CHUNKS: usize = 96;

fn run_storm(period: Option<Duration>, policy: RecoveryPolicy, data: &[u8]) -> (Duration, u64, u64, bool) {
    let mut b = GprsBuilder::new().workers(WORKERS).recovery(policy);
    let acc = b.mutex(vec![0u64; 256]);
    let chunk = DATA_BYTES.div_ceil(CHUNKS);
    for c in data.chunks(chunk) {
        b.thread(HistogramWorker::new(c.to_vec(), acc), GroupId::new(0), 1);
    }
    let gprs = b.build();
    let ctl = gprs.controller();
    let injector = period.map(|p| {
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !ctl.is_finished() {
                if ctl.inject_on_busy(ExceptionKind::SoftFault) {
                    n += 1;
                }
                std::thread::sleep(p);
            }
            n
        })
    });
    let t0 = Instant::now();
    let report = gprs.run().expect("completes");
    let wall = t0.elapsed();
    let injected = injector.map(|j| j.join().unwrap()).unwrap_or(0);
    // Exactness: total chunk bytes reported must equal the input size.
    let total: u64 = report
        .outputs
        .keys()
        .map(|&t| report.output::<u64>(t))
        .sum();
    (wall, injected, report.stats.squashed, total == data.len() as u64)
}

fn main() {
    let data = generate_corpus(DATA_BYTES, 99);
    let reference = byte_histogram(&data);
    println!(
        "Fault storm: {DATA_BYTES}-byte histogram across {CHUNKS} threads on {WORKERS} contexts"
    );
    println!("(reference checksum: {} total bytes)\n", reference.iter().sum::<u64>());
    println!(
        "{:>22}  {:>10}  {:>9}  {:>9}  {:>6}",
        "injection period", "wall time", "injected", "squashed", "exact"
    );
    let storms: [(Option<Duration>, &str); 4] = [
        (None, "none (baseline)"),
        (Some(Duration::from_millis(1)), "1 ms"),
        (Some(Duration::from_micros(200)), "200 us"),
        (Some(Duration::from_micros(50)), "50 us"),
    ];
    for (period, label) in storms {
        let (wall, injected, squashed, exact) =
            run_storm(period, RecoveryPolicy::Selective, &data);
        println!(
            "{:>22}  {:>10.2?}  {:>9}  {:>9}  {:>6}",
            label,
            wall,
            injected,
            squashed,
            if exact { "yes" } else { "NO!" }
        );
        assert!(exact, "results must stay exact under any storm");
    }

    println!("\nSame storm, basic (squash-everything-younger) recovery:");
    let (wall, injected, squashed, exact) = run_storm(
        Some(Duration::from_micros(200)),
        RecoveryPolicy::Basic,
        &data,
    );
    println!(
        "{:>22}  {:>10.2?}  {:>9}  {:>9}  {:>6}",
        "200 us (basic)", wall, injected, squashed, if exact { "yes" } else { "NO!" }
    );
    assert!(exact);
    println!("\n✓ every run produced the exact fault-free histogram");
}
