//! Serving basics: boot a shared 2-worker pool, submit a mixed batch of
//! tenant jobs through the in-process [`ServeHandle`] — one of them with
//! an injected exception plan, one cancelled while still queued — and
//! verify that multi-tenancy is invisible to precision: every completed
//! job's retired hash is bit-identical to the same spec run solo.
//!
//! ```sh
//! cargo run --release -p gprs-serve --example serve_basic
//! ```
//!
//! The socket flavour of the same protocol is the `gprs-serve` binary
//! (`--listen`/`--batch`); see the README quickstart.

use gprs_serve::{build_solo, JobSpec, JobStatus, PoolConfig, ServePool};

fn main() {
    // A pool of two OS workers sharing one FIFO queue. The 16-grant
    // quantum makes larger jobs yield and migrate between workers.
    let pool = ServePool::start(PoolConfig {
        workers: 2,
        quantum: 16,
        ..Default::default()
    });
    let handle = pool.handle();

    // Submit a mixed batch: different workloads, seeds shaping each
    // program, and one tenant running under a seeded fault plan.
    let specs = [
        JobSpec::new("fetchadd", 7),
        JobSpec::new("histogram", 3),
        JobSpec::new("mutex", 5).faults(9),
        JobSpec::new("pbzip", 2),
    ];
    let tickets: Vec<_> = specs
        .iter()
        .map(|s| handle.submit(s.clone()).expect("pool is admitting"))
        .collect();

    // A fifth submission is cancelled immediately — it publishes a
    // `Cancelled` outcome without ever building an engine.
    let doomed = handle.submit(JobSpec::new("pbzip", 40)).unwrap();
    doomed.cancel();
    let doomed = doomed.wait();
    println!(
        "cancelled job {} -> {:?} after {} quanta",
        doomed.job_id,
        doomed.status.as_str(),
        doomed.quanta
    );
    assert_eq!(doomed.status, JobStatus::Cancelled);

    // Await every report and compare against the solo golden twin.
    for (spec, ticket) in specs.iter().zip(tickets) {
        let outcome = ticket.wait();
        assert_eq!(outcome.status, JobStatus::Completed);
        let report = outcome.report.expect("completed jobs carry a report");
        let solo = build_solo(spec)
            .expect("registry workload")
            .run()
            .expect("solo twin completes");
        assert_eq!(
            report.telemetry.retired_hash, solo.telemetry.retired_hash,
            "{spec:?}: tenancy must be invisible to precision"
        );
        println!(
            "job {} ({} seed {}, faults {}) retired {:5} sub-threads over {} quanta, \
             retired_hash {:#018x} == solo",
            outcome.job_id,
            spec.workload,
            spec.seed,
            spec.fault_seed,
            report.telemetry.retired_count,
            outcome.quanta,
            report.telemetry.retired_hash,
        );
    }

    // Graceful shutdown: drains anything still in flight, then reports
    // the pool-level counters.
    let stats = pool.shutdown();
    println!(
        "pool drained: {} submitted, {} completed, {} cancelled, {} quanta ({} yields)",
        stats.submitted, stats.completed, stats.cancelled, stats.quanta, stats.yields
    );
}
